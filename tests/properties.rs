//! Property-based tests over the core invariants: configuration-space
//! encoding round-trips, domain clamping, simulator sanity, and the
//! statistical substrate.

use autotune::core::{ConfigSpace, Objective, ParamSpec, ParamValue};
use autotune::prelude::*;
use autotune::sim::dbms::knobs;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary small configuration space.
fn arb_space() -> impl Strategy<Value = ConfigSpace> {
    // Each knob is one of four shapes with generated bounds.
    let knob = prop_oneof![
        (1i64..1000, 1i64..1000)
            .prop_map(|(a, b)| {
                let (min, max) = (a.min(b), a.max(b));
                (min, max)
            })
            .prop_map(|(min, max)| ("int", min as f64, max as f64)),
        (0.0f64..10.0, 0.1f64..10.0).prop_map(|(min, w)| ("float", min, min + w)),
        Just(("bool", 0.0, 1.0)),
        Just(("cat", 0.0, 2.0)),
    ];
    proptest::collection::vec(knob, 1..6).prop_map(|specs| {
        let params = specs
            .into_iter()
            .enumerate()
            .map(|(i, (kind, lo, hi))| {
                let name = format!("p{i}");
                match kind {
                    "int" => {
                        let (lo, hi) = (lo as i64, hi as i64);
                        ParamSpec::int(&name, lo, hi, lo + (hi - lo) / 2, "")
                    }
                    "float" => ParamSpec::float(&name, lo, hi, (lo + hi) / 2.0, ""),
                    "bool" => ParamSpec::boolean(&name, false, ""),
                    _ => ParamSpec::categorical(&name, &["a", "b", "c"], "b", ""),
                }
            })
            .collect();
        ConfigSpace::new(params)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_roundtrip_random_configs(space in arb_space(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = space.random_config(&mut rng);
        prop_assert!(space.validate_config(&cfg).is_ok());
        let enc = space.encode(&cfg);
        prop_assert_eq!(enc.len(), space.dim());
        for v in &enc {
            prop_assert!((0.0..=1.0).contains(v));
        }
        let back = space.decode(&enc);
        // Round-trip must be the identity on valid configurations, up to
        // float rounding in continuous knobs (encode/decode is affine, so
        // the last ulp may wobble); discrete knobs must be exact.
        for (p, (name, value)) in space.params().iter().zip(back.iter()) {
            assert_eq!(&p.name, name);
            match (value, cfg.get(name).expect("same knobs")) {
                (autotune::core::ParamValue::Float(a), autotune::core::ParamValue::Float(b)) => {
                    prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn decode_is_total_on_unit_cube(space in arb_space(), point in proptest::collection::vec(0.0f64..=1.0, 1..6)) {
        if point.len() == space.dim() {
            let cfg = space.decode(&point);
            prop_assert!(space.validate_config(&cfg).is_ok());
        }
    }

    #[test]
    fn neighbors_stay_valid(space in arb_space(), seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = space.random_config(&mut rng);
        for _ in 0..5 {
            let n = space.neighbor(&base, 0.3, 0.5, &mut rng);
            prop_assert!(space.validate_config(&n).is_ok());
        }
    }

    #[test]
    fn dbms_simulator_is_deterministic_and_positive(seed in 0u64..300) {
        let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.space().random_config(&mut rng);
        let a = sim.simulate(&cfg);
        let b = sim.simulate(&cfg);
        prop_assert!(a.runtime_secs > 0.0);
        prop_assert!((a.runtime_secs - b.runtime_secs).abs() < 1e-9);
        prop_assert_eq!(a.failed, b.failed);
    }

    #[test]
    fn dbms_failures_exactly_when_overcommitted(seed in 0u64..300) {
        let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.space().random_config(&mut rng);
        let run = sim.simulate(&cfg);
        let over = run.metrics["mem_overcommit"];
        prop_assert_eq!(run.failed, over > 1.5, "overcommit={}", over);
    }

    #[test]
    fn hadoop_runtime_scales_with_input(seed in 0u64..100) {
        use autotune::sim::hadoop::{HadoopJob, HadoopSimulator};
        let cluster = ClusterSpec::homogeneous(8, NodeSpec::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let small = HadoopSimulator::new(cluster.clone(), HadoopJob::terasort(4_096.0))
            .with_noise(NoiseModel::none());
        let big = HadoopSimulator::new(cluster, HadoopJob::terasort(32_768.0))
            .with_noise(NoiseModel::none());
        let cfg = small.space().random_config(&mut rng);
        prop_assert!(
            big.simulate(&cfg).runtime_secs >= small.simulate(&cfg).runtime_secs
        );
    }

    #[test]
    fn noise_preserves_scale(base in 1.0f64..1e5, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = NoiseModel::realistic();
        let v = n.apply(base, &mut rng);
        prop_assert!(v > base * 0.5 && v < base * 3.0, "v={} base={}", v, base);
    }

    #[test]
    fn observation_serde_roundtrip(seed in 0u64..200) {
        let mut sim = DbmsSimulator::oltp_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.space().random_config(&mut rng);
        let obs = sim.evaluate(&cfg, &mut rng);
        let json = serde_json::to_string(&obs).expect("serialize");
        let back: autotune::core::Observation = serde_json::from_str(&json).expect("parse");
        // serde_json's default float parser is not bit-exact; compare the
        // unit-cube encodings within 1 ppb instead of bitwise equality.
        let ea = sim.space().encode(&obs.config);
        let eb = sim.space().encode(&back.config);
        for (a, b) in ea.iter().zip(&eb) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let rel = (back.runtime_secs - obs.runtime_secs).abs() / obs.runtime_secs.max(1e-12);
        prop_assert!(rel < 1e-9);
        prop_assert_eq!(back.metrics.len(), obs.metrics.len());
    }
}

#[test]
fn bigger_buffer_pool_never_hurts_within_ram() {
    // Monotonicity on the safe region: growing only shared_buffers while
    // total memory stays under RAM never slows the OLTP workload.
    let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
    let base = sim.space().default_config();
    let mut last = f64::INFINITY;
    for mb in [128, 256, 512, 1024, 2048, 4096, 8192] {
        let mut c = base.clone();
        c.set(knobs::SHARED_BUFFERS_MB, ParamValue::Int(mb));
        let rt = sim.simulate(&c).runtime_secs;
        assert!(rt <= last * 1.001, "regression at {mb} MB: {rt} vs {last}");
        last = rt;
    }
}
