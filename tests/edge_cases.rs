//! Edge-case behaviour across the workspace: zero budgets, degenerate
//! spaces, failure-only histories, and export formats.

use autotune::core::{
    history_to_csv, pareto_front, tune, Budget, ConfigSpace, FunctionObjective, History, Objective,
    Observation, ParamSpec, ParamValue, TuningSession,
};
use autotune::prelude::*;

#[test]
fn zero_budget_session_recommends_defaults() {
    let space = ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")]);
    let mut obj = FunctionObjective::new(space, "f", |x| x[0]);
    let mut tuner = RandomSearchTuner;
    let outcome = TuningSession::new(&mut obj, &mut tuner, Budget::evaluations(0), 1).run();
    assert_eq!(outcome.evaluations, 0);
    assert!(outcome.best.is_none());
    assert_eq!(outcome.recommendation.config, obj.space().default_config());
}

#[test]
fn single_knob_space_tunes_fine() {
    let space = ConfigSpace::new(vec![ParamSpec::int("n", 1, 100, 1, "")]);
    let mut obj = FunctionObjective::new(space, "vee", |x| (x[0] - 0.65).abs() + 0.1);
    let mut tuner = ITunedTuner::new().with_init(4);
    let out = tune(&mut obj, &mut tuner, 15, 3);
    assert!(out.best.unwrap().runtime_secs < 0.2);
}

#[test]
fn failure_only_history_still_produces_a_recommendation() {
    let space = ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")]);
    let mut h = History::new();
    for u in [0.1, 0.5, 0.9] {
        let mut o = Observation::ok(space.decode(&[u]), 100.0 + u);
        o.failed = true;
        h.push(o);
    }
    // best() falls back to the least-bad failure.
    assert!(h.best().is_some());
    assert!((h.best_runtime() - 100.1).abs() < 1e-9);
    // And the Pareto front of an all-failed history is empty.
    assert!(pareto_front(&h).is_empty());
}

#[test]
fn csv_of_empty_history_is_header_only() {
    let space = ConfigSpace::new(vec![ParamSpec::boolean("b", true, "")]);
    let csv = history_to_csv(&History::new(), &space);
    assert_eq!(csv.lines().count(), 1);
    assert!(csv.starts_with("run,b,"));
}

#[test]
fn grid_tuner_handles_high_dimensional_spaces() {
    // 13 knobs would overflow levels^dim; the tuner caps the lattice and
    // falls back to random search rather than panicking.
    let mut sim = SparkSimulator::aggregation_default().with_noise(NoiseModel::none());
    let mut g = GridSearchTuner::new(2);
    let out = tune(&mut sim, &mut g, 10, 1);
    assert_eq!(out.evaluations, 10);
}

#[test]
fn duplicate_heavy_tuners_do_not_rerun_the_system() {
    // Rule-based proposes the same config every time; the session must
    // replay the first observation (same runtime despite noise).
    let mut sim = DbmsSimulator::oltp_default(); // noisy
    let mut rules = RuleBasedTuner::new("rules", dbms_rulebook());
    let out = tune(&mut sim, &mut rules, 8, 5);
    let rts = out.history.runtimes();
    assert!(rts.iter().all(|&r| (r - rts[0]).abs() < 1e-12));
}

#[test]
fn extreme_but_valid_configs_do_not_panic_any_simulator() {
    // Walk the corners of each space (all-low / all-high) through every
    // simulator; corners may fail, but must never panic or return
    // non-finite runtimes.
    let mut objectives: Vec<Box<dyn Objective>> = vec![
        Box::new(DbmsSimulator::oltp_default().with_noise(NoiseModel::none())),
        Box::new(HadoopSimulator::terasort_default().with_noise(NoiseModel::none())),
        Box::new(SparkSimulator::aggregation_default().with_noise(NoiseModel::none())),
    ];
    let mut rng = rand::SeedableRng::seed_from_u64(0);
    for obj in objectives.iter_mut() {
        let dim = obj.space().dim();
        for corner in [0.0, 1.0] {
            let cfg = obj.space().decode(&vec![corner; dim]);
            let obs = obj.evaluate(&cfg, &mut rng);
            assert!(
                obs.runtime_secs.is_finite() && obs.runtime_secs > 0.0,
                "{} corner {corner}: {}",
                obj.name(),
                obs.runtime_secs
            );
        }
    }
}

#[test]
fn configuration_builder_roundtrip() {
    let cfg = autotune::core::Configuration::new()
        .with("a", ParamValue::Int(3))
        .with("b", ParamValue::Str("x".into()));
    assert_eq!(cfg.len(), 2);
    assert_eq!(cfg.i64("a"), 3);
    assert_eq!(cfg.str("b"), "x");
    assert_eq!(format!("{cfg}"), "{a=3, b=x}");
}
