//! Integration across the three target platforms: the same tuner code
//! drives the DBMS, Hadoop, and Spark simulators through the identical
//! `Objective` interface (the tutorial's framing: one problem, three
//! systems).

use autotune::core::{tune, Objective, SystemKind};
use autotune::prelude::*;
use autotune::sim::hadoop::HadoopJob;
use autotune::sim::spark::SparkApp;

fn boxed_objectives() -> Vec<Box<dyn Objective>> {
    vec![
        Box::new(DbmsSimulator::oltp_default().with_noise(NoiseModel::none())),
        Box::new(HadoopSimulator::terasort_default().with_noise(NoiseModel::none())),
        Box::new(SparkSimulator::aggregation_default().with_noise(NoiseModel::none())),
    ]
}

#[test]
fn profiles_report_correct_system_kinds() {
    let kinds: Vec<SystemKind> = boxed_objectives()
        .iter()
        .map(|o| o.profile().system)
        .collect();
    assert_eq!(
        kinds,
        vec![SystemKind::Dbms, SystemKind::Hadoop, SystemKind::Spark]
    );
}

#[test]
fn ituned_improves_all_three_systems() {
    for mut obj in boxed_objectives() {
        let baseline = {
            let cfg = obj.space().default_config();
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            obj.evaluate(&cfg, &mut rng).runtime_secs
        };
        let mut tuner = ITunedTuner::new();
        let out = tune(obj.as_mut(), &mut tuner, 30, 17);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < baseline * 0.7,
            "{}: {baseline} -> {best}",
            obj.name()
        );
    }
}

#[test]
fn rulebooks_match_their_systems() {
    for obj in boxed_objectives() {
        let profile = obj.profile();
        let book = rulebook_for(profile.system);
        let (cfg, applied) = book.apply(obj.space(), &profile);
        assert!(obj.space().validate_config(&cfg).is_ok());
        assert!(
            applied.len() >= 5,
            "{:?}: only {} rules fired",
            profile.system,
            applied.len()
        );
    }
}

#[test]
fn wrong_rulebook_does_nothing() {
    // Spark rules aimed at a DBMS space: no knob names match, nothing
    // fires, configuration stays default — rules don't corrupt foreign
    // systems.
    let db = DbmsSimulator::oltp_default();
    let book = spark_rulebook();
    let (cfg, applied) = book.apply(db.space(), &db.profile());
    assert!(applied.is_empty());
    assert_eq!(cfg, db.space().default_config());
}

#[test]
fn spex_constraints_prevent_failures_on_all_systems() {
    for mut obj in boxed_objectives() {
        let mut spex = SpexTuner::new(obj.space());
        let out = tune(obj.as_mut(), &mut spex, 20, 3);
        let failures = out.history.all().iter().filter(|o| o.failed).count();
        assert_eq!(
            failures,
            0,
            "{}: SPEX-repaired configs must not fail",
            obj.name()
        );
    }
}

#[test]
fn iterative_workloads_reward_caching_knobs() {
    // Spark logistic regression: a tuned storage fraction should appear in
    // iTuned's winning configuration region (cached_fraction > 0 at best).
    let cluster = ClusterSpec::homogeneous(8, NodeSpec::default());
    let mut sim = SparkSimulator::new(cluster, SparkApp::logistic_regression(8_192.0, 10))
        .with_noise(NoiseModel::none());
    let mut tuner = ITunedTuner::new();
    let out = tune(&mut sim, &mut tuner, 35, 23);
    let best = out.best.unwrap();
    assert!(
        best.metrics.get("cached_fraction").copied().unwrap_or(0.0) > 0.2,
        "best iterative config should cache: {:?}",
        best.metrics.get("cached_fraction")
    );
}

#[test]
fn hadoop_tuning_closes_the_parallel_db_gap() {
    // §2.3 claim C2 end-to-end: tuning Hadoop shrinks the gap vs the
    // parallel DB substantially.
    let cluster = ClusterSpec::homogeneous(8, NodeSpec::default());
    let data_mb = 32_768.0;
    let job = HadoopJob::wordcount(data_mb);
    let db = ParallelDbBaseline::new(cluster.clone());
    let task = ParallelDbBaseline::task_for_job(&job);
    let db_rt = db.runtime_secs(task, data_mb);

    let sim = HadoopSimulator::new(cluster.clone(), job.clone()).with_noise(NoiseModel::none());
    let untuned = sim
        .simulate(&autotune::sim::hadoop::benchmark_config(&cluster))
        .runtime_secs;

    // Anchor the design on the operator's rule-of-thumb config; most
    // random Hadoop configs fail outright, so an unseeded small budget
    // can spend itself entirely in failure regions.
    let seed_cfg = autotune::sim::hadoop::benchmark_config(&cluster);
    let mut sim = HadoopSimulator::new(cluster, job).with_noise(NoiseModel::none());
    let mut tuner = ITunedTuner::new().with_seed_config(seed_cfg);
    let out = tune(&mut sim, &mut tuner, 40, 29);
    let tuned = out.best.unwrap().runtime_secs;

    let gap_before = untuned / db_rt;
    let gap_after = tuned / db_rt;
    assert!(
        gap_after < gap_before * 0.6,
        "tuning should close most of the gap: {gap_before:.1}x -> {gap_after:.1}x"
    );
}
