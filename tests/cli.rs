//! End-to-end tests of the `autotune` command-line interface.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_names_systems_and_tuners() {
    let (stdout, _, ok) = run(&["list"]);
    assert!(ok);
    for needle in [
        "dbms-oltp",
        "hadoop-terasort",
        "spark-agg",
        "ituned",
        "ottertune",
        "colt",
    ] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (stdout, _, ok) = run(&[]);
    assert!(!ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn unknown_system_is_an_error() {
    let (_, stderr, ok) = run(&["tune", "--system", "oracle-rac", "--tuner", "ituned"]);
    assert!(!ok);
    assert!(stderr.contains("unknown system"));
}

#[test]
fn tune_runs_end_to_end_and_reports_speedup() {
    let (stdout, _, ok) = run(&[
        "tune",
        "--system",
        "dbms-oltp",
        "--tuner",
        "rules",
        "--budget",
        "2",
        "--noise",
        "none",
        "--show-config",
    ]);
    assert!(ok, "tune failed: {stdout}");
    assert!(stdout.contains("speedup"));
    assert!(
        stdout.contains("shared_buffers_mb ="),
        "config block missing"
    );
    // The DBMS rule book must beat defaults.
    let speedup_line = stdout
        .lines()
        .find(|l| l.starts_with("speedup"))
        .expect("speedup line");
    let value: f64 = speedup_line
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .trim_end_matches('x')
        .parse()
        .unwrap();
    assert!(value > 1.5, "rules should beat defaults: {value}");
}

#[test]
fn csv_export_writes_parseable_file() {
    let dir = std::env::temp_dir().join("autotune-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("history.csv");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = run(&[
        "tune",
        "--system",
        "spark-agg",
        "--tuner",
        "random",
        "--budget",
        "3",
        "--csv",
        path_str,
    ]);
    assert!(ok, "{stderr}");
    let csv = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 4, "header + 3 rows");
    assert!(lines[0].contains("runtime_secs"));
    assert!(lines[0].contains("shuffle_partitions"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn pareto_flag_prints_frontier() {
    let (stdout, _, ok) = run(&[
        "tune",
        "--system",
        "hadoop-terasort",
        "--tuner",
        "random",
        "--budget",
        "5",
        "--noise",
        "none",
        "--pareto",
    ]);
    assert!(ok);
    assert!(stdout.contains("Pareto frontier"));
    assert!(stdout.lines().any(|l| l.trim_start().starts_with("run")));
}
