//! Cross-crate integration: the complete six-family taxonomy of the
//! tutorial, every family exercised end-to-end against the simulated DBMS
//! through the same session machinery.

use autotune::core::{tune, Objective, Tuner, TunerFamily};
use autotune::prelude::*;

/// One representative tuner per family, boxed for uniform driving.
fn representatives() -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(RuleBasedTuner::new("dbms-rules", dbms_rulebook())),
        Box::new(StmmTuner::new()),
        Box::new(AddmTuner::new()),
        Box::new(ITunedTuner::new()),
        Box::new(OtterTuneTuner::new(WorkloadRepository::new())),
        Box::new(ColtTuner::new()),
    ]
}

#[test]
fn all_six_families_are_represented() {
    let families: Vec<TunerFamily> = representatives().iter().map(|t| t.family()).collect();
    for f in TunerFamily::all() {
        assert!(families.contains(&f), "family {f} missing a representative");
    }
}

#[test]
fn every_family_beats_defaults_on_oltp() {
    let baseline = {
        let db = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        db.simulate(&db.space().default_config()).runtime_secs
    };
    for mut tuner in representatives() {
        let mut db = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let outcome = tune(&mut db, tuner.as_mut(), 25, 99);
        let best = outcome.best.expect("ran").runtime_secs;
        assert!(
            best < baseline,
            "{} ({}) failed to beat the default: {best} vs {baseline}",
            tuner.name(),
            tuner.family()
        );
    }
}

#[test]
fn every_family_beats_defaults_on_olap() {
    let baseline = {
        let db = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        db.simulate(&db.space().default_config()).runtime_secs
    };
    for mut tuner in representatives() {
        let mut db = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let outcome = tune(&mut db, tuner.as_mut(), 25, 101);
        let best = outcome.best.expect("ran").runtime_secs;
        assert!(
            best < baseline,
            "{} failed on OLAP: {best} vs {baseline}",
            tuner.name()
        );
    }
}

#[test]
fn recommendations_are_always_valid_configs() {
    for mut tuner in representatives() {
        let mut db = DbmsSimulator::oltp_default();
        let outcome = tune(&mut db, tuner.as_mut(), 12, 5);
        let space = db.space();
        assert!(
            space
                .validate_config(&outcome.recommendation.config)
                .is_ok(),
            "{} produced an invalid recommendation",
            tuner.name()
        );
        assert!(!outcome.recommendation.rationale.is_empty());
    }
}

#[test]
fn sessions_are_deterministic_for_every_family() {
    for make in 0..representatives().len() {
        let run = |seed: u64| {
            let mut tuner = representatives().remove(make);
            let mut db = DbmsSimulator::oltp_default();
            tune(&mut db, tuner.as_mut(), 10, seed)
                .best
                .map(|b| b.runtime_secs)
        };
        assert_eq!(run(123), run(123), "tuner #{make} not deterministic");
    }
}

#[test]
fn tuning_gains_are_order_of_magnitude_with_budget() {
    // §2.1: tuning benefits are "sometimes measured in orders of magnitude
    // of improvement". With a generous budget the best experiment-driven
    // tuner should approach 10x on the badly-defaulted OLTP instance.
    let baseline = {
        let db = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        db.simulate(&db.space().default_config()).runtime_secs
    };
    let mut db = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
    let mut tuner = ITunedTuner::new();
    let outcome = tune(&mut db, &mut tuner, 60, 31);
    let speedup = baseline / outcome.best.unwrap().runtime_secs;
    assert!(speedup > 5.0, "only {speedup:.1}x with 60 experiments");
}
