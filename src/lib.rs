//! # autotune
//!
//! Automatic parameter tuning for databases and big data systems — a full
//! Rust reproduction of the system landscape surveyed in *"Speedup Your
//! Analytics: Automatic Parameter Tuning for Databases and Big Data
//! Systems"* (Lu, Chen, Herodotou & Babu, PVLDB 12(12), 2019).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — knob spaces, objectives, the [`core::Tuner`] trait with
//!   the paper's six-family taxonomy, tuning sessions;
//! * [`sim`] — simulated DBMS / Hadoop MapReduce / Spark targets with
//!   realistic response surfaces, plus cluster and noise models;
//! * [`tuners`] — the six tuning families: rule-based, cost modeling,
//!   simulation-based, experiment-driven, machine learning, adaptive;
//! * [`math`] — the from-scratch numerical substrate (GP regression, LHS,
//!   Plackett–Burman designs, Lasso, PCA, k-means, NNLS, MLP, …).
//!
//! ## Quickstart
//!
//! ```
//! use autotune::prelude::*;
//!
//! // A simulated PostgreSQL-like DBMS serving an OLTP mix.
//! let mut db = DbmsSimulator::oltp_default();
//! let default_cfg = db.space().default_config();
//! let baseline = db.simulate(&default_cfg).runtime_secs;
//!
//! // Tune it with iTuned (LHS + Gaussian process + Expected Improvement)
//! // under a 25-experiment budget.
//! let mut tuner = ITunedTuner::new();
//! let outcome = tune(&mut db, &mut tuner, 25, 42);
//!
//! let best = outcome.best.expect("observations were made");
//! assert!(best.runtime_secs < baseline, "tuning should beat the defaults");
//! println!(
//!     "default {:.0}s -> tuned {:.0}s ({:.1}x)",
//!     baseline,
//!     best.runtime_secs,
//!     baseline / best.runtime_secs
//! );
//! ```

#![warn(missing_docs)]

pub use autotune_core as core;
pub use autotune_math as math;
pub use autotune_sim as sim;
pub use autotune_tuners as tuners;

/// One-stop imports for applications.
pub mod prelude {
    pub use autotune_core::prelude::*;
    pub use autotune_sim::{
        ClusterSpec, DbmsSimulator, HadoopSimulator, MultiTenantDbms, NodeSpec, NoiseModel,
        ParallelDbBaseline, SparkSimulator, TenantSpec,
    };
    pub use autotune_tuners::adaptive::{
        ColtTuner, DynamicPartitionTuner, MrMoulderTuner, OnlineMemoryTuner,
        RecommendationRepository, TempoTuner,
    };
    pub use autotune_tuners::baselines::{DefaultConfigTuner, GridSearchTuner, RandomSearchTuner};
    pub use autotune_tuners::cost::{
        Elastisizer, InstanceType, MrTuner, SparkCostTuner, StmmTuner, WhatIfTuner,
    };
    pub use autotune_tuners::experiment::{
        AdaptiveSamplingTuner, ITunedTuner, RrsTuner, SardTuner,
    };
    pub use autotune_tuners::ml::{
        ErnestTuner, OtterTuneTuner, ParallelismTuner, RoddTuner, WorkloadRepository,
    };
    pub use autotune_tuners::rule::{
        dbms_rulebook, hadoop_rulebook, rulebook_for, spark_rulebook, ConfNavTuner, RuleBasedTuner,
        SpexTuner,
    };
    pub use autotune_tuners::simulation::{AddmTuner, SimulationSearchTuner, TraceReplayPredictor};
}
