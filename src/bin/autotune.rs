//! `autotune` — command-line front end: run any of the surveyed tuners
//! against any of the simulated systems.
//!
//! ```sh
//! autotune list
//! autotune tune --system dbms-oltp --tuner ituned --budget 30 --seed 42
//! autotune tune --system hadoop-terasort --tuner mrtuner --csv out.csv
//! ```

use autotune::core::{config_to_properties, history_to_csv, pareto_front, tune, Objective, Tuner};
use autotune::prelude::*;
use autotune::tuners::cost::MrTuner;
use std::collections::BTreeMap;
use std::process::ExitCode;

const SYSTEMS: &[(&str, &str)] = &[
    ("dbms-oltp", "simulated DBMS serving a TPC-C-like OLTP mix"),
    ("dbms-olap", "simulated DBMS serving a TPC-H-like OLAP mix"),
    ("hadoop-terasort", "8-node Hadoop cluster sorting 32 GB"),
    ("spark-agg", "8-node Spark cluster aggregating 16 GB"),
];

const TUNERS: &[(&str, &str)] = &[
    ("default", "vendor defaults (no tuning)"),
    ("random", "uniform random search"),
    ("rules", "best-practice rule book for the target system"),
    ("spex", "constraint-repaired random search (SPEX)"),
    ("confnav", "one-at-a-time knob navigation (ConfNav)"),
    ("stmm", "cost-benefit memory allocation (STMM; DBMS)"),
    ("whatif", "profile → what-if → recommend (Starfish; Hadoop)"),
    ("mrtuner", "PTC-balanced plan search (MRTuner; Hadoop)"),
    ("spark-cost", "analytic Spark cost model"),
    ("addm", "diagnosis-driven tuning (ADDM; DBMS)"),
    ("sard", "Plackett–Burman screening + search (SARD)"),
    (
        "adaptive-sampling",
        "k-NN exploit / distance explore (HotOS'09)",
    ),
    ("ituned", "LHS + Gaussian process + EI (iTuned)"),
    ("rrs", "recursive random search"),
    ("ottertune", "OtterTune pipeline (cold start)"),
    ("rodd", "neural-network surrogate (Rodd)"),
    (
        "ernest",
        "NNLS scale model for executor sizing (Ernest; Spark)",
    ),
    ("colt", "online cost-vs-gain tuning (COLT)"),
    ("online-memory", "online STMM feedback controller (DBMS)"),
    ("dyn-partition", "dynamic shuffle partitioning (Spark)"),
];

fn make_objective(name: &str, noise: NoiseModel) -> Option<Box<dyn Objective>> {
    Some(match name {
        "dbms-oltp" => Box::new(DbmsSimulator::oltp_default().with_noise(noise)),
        "dbms-olap" => Box::new(DbmsSimulator::olap_default().with_noise(noise)),
        "hadoop-terasort" => Box::new(HadoopSimulator::terasort_default().with_noise(noise)),
        "spark-agg" => Box::new(SparkSimulator::aggregation_default().with_noise(noise)),
        _ => return None,
    })
}

fn make_tuner(name: &str, system: SystemKind) -> Option<Box<dyn Tuner>> {
    use autotune::core::SystemKind;
    Some(match name {
        "default" => Box::new(DefaultConfigTuner),
        "random" => Box::new(RandomSearchTuner),
        "rules" => Box::new(RuleBasedTuner::new("rules", rulebook_for(system))),
        "spex" => {
            // SPEX needs the space; defer by inferring inside propose via a
            // fresh objective of the same kind.
            let obj = match system {
                SystemKind::Dbms => make_objective("dbms-oltp", NoiseModel::none()),
                SystemKind::Hadoop => make_objective("hadoop-terasort", NoiseModel::none()),
                SystemKind::Spark => make_objective("spark-agg", NoiseModel::none()),
                SystemKind::Other => None,
            }?;
            Box::new(SpexTuner::new(obj.space()))
        }
        "confnav" => Box::new(ConfNavTuner::new(4)),
        "stmm" => Box::new(StmmTuner::new()),
        "whatif" => Box::new(WhatIfTuner::new()),
        "mrtuner" => Box::new(MrTuner::new()),
        "spark-cost" => Box::new(SparkCostTuner::new()),
        "addm" => Box::new(AddmTuner::new()),
        "sard" => Box::new(SardTuner::new(4)),
        "adaptive-sampling" => Box::new(AdaptiveSamplingTuner::new()),
        "ituned" => Box::new(ITunedTuner::new()),
        "rrs" => Box::new(RrsTuner::new()),
        "ottertune" => Box::new(OtterTuneTuner::new(WorkloadRepository::new())),
        "rodd" => Box::new(RoddTuner::new()),
        "ernest" => Box::new(ErnestTuner::new()),
        "colt" => Box::new(ColtTuner::new()),
        "online-memory" => Box::new(OnlineMemoryTuner::new()),
        "dyn-partition" => Box::new(DynamicPartitionTuner::new()),
        _ => return None,
    })
}

fn parse_flags(args: &[String]) -> BTreeMap<String, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(key.to_string(), value);
            i += 2;
        } else {
            i += 1;
        }
    }
    flags
}

fn usage() {
    println!("autotune — parameter tuning for databases and big data systems\n");
    println!("USAGE:");
    println!("  autotune list");
    println!("  autotune tune --system <SYSTEM> --tuner <TUNER>");
    println!("                [--budget N] [--seed S] [--noise none|realistic|cloud]");
    println!("                [--csv FILE] [--show-config] [--pareto]\n");
    println!("Run `autotune list` for available systems and tuners.");
}

fn cmd_list() {
    println!("systems:");
    for (n, d) in SYSTEMS {
        println!("  {n:<18} {d}");
    }
    println!("\ntuners:");
    for (n, d) in TUNERS {
        println!("  {n:<18} {d}");
    }
}

fn cmd_tune(flags: &BTreeMap<String, String>) -> ExitCode {
    let system_name = flags
        .get("system")
        .map(String::as_str)
        .unwrap_or("dbms-oltp");
    let tuner_name = flags.get("tuner").map(String::as_str).unwrap_or("ituned");
    let budget: usize = flags
        .get("budget")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let seed: u64 = flags.get("seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let noise = match flags.get("noise").map(String::as_str) {
        Some("none") => NoiseModel::none(),
        Some("cloud") => NoiseModel::noisy_cloud(),
        _ => NoiseModel::realistic(),
    };

    let Some(mut objective) = make_objective(system_name, noise) else {
        eprintln!("unknown system '{system_name}' — try `autotune list`");
        return ExitCode::FAILURE;
    };
    let system = objective.profile().system;
    let Some(mut tuner) = make_tuner(tuner_name, system) else {
        eprintln!("unknown tuner '{tuner_name}' — try `autotune list`");
        return ExitCode::FAILURE;
    };

    let default_cfg = objective.space().default_config();
    let baseline_obs = {
        let mut rng = rand::SeedableRng::seed_from_u64(seed ^ 0xBA5E);
        objective.evaluate(&default_cfg, &mut rng)
    };
    let baseline = baseline_obs.runtime_secs;

    eprintln!("tuning {system_name} with {tuner_name} ({budget} evaluations, seed {seed})…");
    let outcome = tune(objective.as_mut(), tuner.as_mut(), budget, seed);

    println!("system          : {system_name}");
    println!("tuner           : {} ({})", tuner.name(), tuner.family());
    println!("evaluations     : {}", outcome.evaluations);
    println!("default runtime : {baseline:.1} s");
    match &outcome.best {
        Some(best) => {
            println!("best runtime    : {:.1} s", best.runtime_secs);
            println!("speedup         : {:.2}x", baseline / best.runtime_secs);
        }
        None => println!("best runtime    : (no successful runs)"),
    }
    let failures = outcome.history.all().iter().filter(|o| o.failed).count();
    println!("failed runs     : {failures}");
    println!("tuner overhead  : {:.3} s", outcome.tuner_overhead_secs);
    println!("rationale       : {}", outcome.recommendation.rationale);

    if flags.contains_key("show-config") {
        println!("\nrecommended configuration:");
        print!("{}", config_to_properties(&outcome.recommendation.config));
    }
    if flags.contains_key("pareto") {
        println!("\ntime/cost Pareto frontier of the session:");
        // Include the default-config baseline run: it is always feasible,
        // so the frontier is non-empty even when every tuned run failed.
        let n_session = outcome.history.all().len();
        let mut with_baseline = outcome.history.clone();
        with_baseline.push(baseline_obs);
        for p in pareto_front(&with_baseline) {
            let label = if p.index == n_session {
                "def".to_string()
            } else {
                format!("{:>3}", p.index)
            };
            println!(
                "  run {label}: {:>10.1} s  {:>12.1} cost",
                p.runtime_secs, p.cost
            );
        }
    }
    if let Some(path) = flags.get("csv") {
        let csv = history_to_csv(&outcome.history, objective.space());
        match std::fs::write(path, csv) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            cmd_list();
            ExitCode::SUCCESS
        }
        Some("tune") => cmd_tune(&parse_flags(&args[1..])),
        _ => {
            usage();
            ExitCode::FAILURE
        }
    }
}
