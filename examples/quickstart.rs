//! Quickstart: tune a simulated PostgreSQL-like DBMS with iTuned.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autotune::prelude::*;

fn main() {
    // The target: a 16 GB / 8-core box serving a TPC-C-flavoured OLTP mix,
    // with vendor-default knobs (128 MB buffer pool, 4 MB work_mem, …).
    let mut db = DbmsSimulator::oltp_default();
    let space = db.space().clone();
    let default_cfg = space.default_config();
    let baseline = db.simulate(&default_cfg).runtime_secs;

    println!("target        : {}", db.workload.name);
    println!("knobs         : {}", space.dim());
    println!("default run   : {baseline:.0} s");
    println!();

    // iTuned: Latin-hypercube initialization, Gaussian-process response
    // surface, Expected-Improvement experiment selection.
    let budget = 30;
    let mut tuner = ITunedTuner::new();
    let outcome = tune(&mut db, &mut tuner, budget, 42);

    let best = outcome.best.as_ref().expect("runs happened");
    println!("experiments   : {}", outcome.evaluations);
    println!("best runtime  : {:.0} s", best.runtime_secs);
    println!("speedup       : {:.2}x", baseline / best.runtime_secs);
    println!("tuner overhead: {:.2} s", outcome.tuner_overhead_secs);
    println!();
    println!("recommended configuration:");
    for (knob, value) in outcome.recommendation.config.iter() {
        let default = default_cfg.get(knob).expect("same space");
        let marker = if default == value { " " } else { "*" };
        println!("  {marker} {knob:<28} {value}");
    }
    println!("  (* = changed from default)");
    println!();

    // Convergence curve: best-so-far after each experiment.
    println!("convergence (best-so-far):");
    let curve = outcome.history.best_so_far();
    for (i, v) in curve.iter().enumerate() {
        if i % 5 == 0 || i + 1 == curve.len() {
            println!("  run {:>3}: {v:.0} s", i + 1);
        }
    }
}
