//! The tutorial's story in one binary: run a representative of each of the
//! six tuning families against the same simulated DBMS and compare what
//! they achieve, what they cost, and where they fail.
//!
//! ```sh
//! cargo run --release --example compare_families
//! ```

use autotune::core::{tune, Objective, Tuner};
use autotune::prelude::*;

fn main() {
    let budget = 25;
    let seed = 7;

    let baseline = {
        let db = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        db.simulate(&db.space().default_config()).runtime_secs
    };
    println!("OLTP DBMS, default configuration: {baseline:.0} s");
    println!("budget: {budget} evaluations per tuner\n");
    println!(
        "{:<22} {:<18} {:>10} {:>9} {:>7} {:>9}",
        "tuner", "family", "best (s)", "speedup", "fails", "overhead"
    );

    // One representative per family (plus baselines). Each gets a fresh,
    // identically-seeded simulator.
    let mut rows: Vec<(String, String, f64, usize, f64)> = Vec::new();
    let mut run = |name: &str, tuner: &mut dyn Tuner| {
        let mut db = DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic());
        let outcome = tune(&mut db, tuner, budget, seed);
        let best = outcome
            .best
            .as_ref()
            .map(|b| b.runtime_secs)
            .unwrap_or(f64::NAN);
        let fails = outcome.history.all().iter().filter(|o| o.failed).count();
        rows.push((
            name.to_string(),
            tuner.family().to_string(),
            best,
            fails,
            outcome.tuner_overhead_secs,
        ));
    };

    run("default (untuned)", &mut DefaultConfigTuner);
    run(
        "best-practice rules",
        &mut RuleBasedTuner::new("dbms-rules", dbms_rulebook()),
    );
    run("stmm cost model", &mut StmmTuner::new());
    run("addm diagnosis", &mut AddmTuner::new());
    run("ituned (GP+EI)", &mut ITunedTuner::new());
    run("sard screening", &mut SardTuner::new(4));
    run(
        "ottertune (cold)",
        &mut OtterTuneTuner::new(WorkloadRepository::new()),
    );
    run("rodd neural net", &mut RoddTuner::new());
    run("colt adaptive", &mut ColtTuner::new());
    run("random search", &mut RandomSearchTuner);

    for (name, family, best, fails, overhead) in rows {
        println!(
            "{name:<22} {family:<18} {best:>10.0} {:>8.2}x {fails:>7} {overhead:>8.2}s",
            baseline / best
        );
    }

    println!(
        "\nReading guide: rule/cost tuners pay ~zero experiments but plateau;\n\
         experiment-driven and ML tuners keep improving with budget; the\n\
         adaptive tuner never strays far from the incumbent (low risk), and\n\
         random search occasionally lands on the OOM cliff (fails > 0)."
    );
}
