//! The §2.5 multi-tenancy challenge: three tenants with SLOs share one
//! 64 GB node; the Tempo controller (Tan & Babu, PVLDB 2016) shifts
//! memory until the worst SLO ratio equalizes.
//!
//! ```sh
//! cargo run --release --example multitenant_slo
//! ```

use autotune::core::{tune, Objective};
use autotune::prelude::*;

fn main() {
    let mut host = MultiTenantDbms::standard_three_tenants().with_noise(NoiseModel::none());
    let equal = host.space().default_config();
    println!("tenants and SLOs:");
    for (t, rt) in host.tenants.iter().zip(host.tenant_runtimes(&equal)) {
        println!(
            "  {:<6} slo {:>6.0}s   runtime at equal shares {:>7.0}s  ({:.2}x)",
            t.name,
            t.slo_secs,
            rt,
            rt / t.slo_secs
        );
    }
    println!(
        "worst SLO ratio at equal shares: {:.2} (>1 = violation)\n",
        host.worst_violation(&equal)
    );

    let mut tempo = TempoTuner::new();
    let out = tune(&mut host, &mut tempo, 25, 7);
    let final_cfg = &out.recommendation.config;
    println!(
        "after {} Tempo epochs ({}):",
        out.evaluations, out.recommendation.rationale
    );
    for (t, (rt, share)) in host.tenants.iter().zip(
        host.tenant_runtimes(final_cfg)
            .into_iter()
            .zip(host.shares(final_cfg)),
    ) {
        println!(
            "  {:<6} share {:>4.0}%   runtime {:>7.0}s  ({:.2}x of SLO)",
            t.name,
            share * 100.0,
            rt,
            rt / t.slo_secs
        );
    }
    println!(
        "worst SLO ratio after tuning: {:.2}",
        host.worst_violation(final_cfg)
    );
}
