//! The §2.3 Hadoop story: stock defaults are disastrous (one reducer, no
//! compression, 100 MB sort buffer), rule books fix the obvious, and the
//! Starfish-style profile→what-if→recommend pipeline gets close to optimal
//! with a handful of real runs.
//!
//! ```sh
//! cargo run --release --example hadoop_starfish
//! ```

use autotune::core::{tune, Objective};
use autotune::prelude::*;
use autotune::sim::hadoop::HadoopJob;
use autotune::tuners::cost::WhatIfTuner;

fn main() {
    let cluster = ClusterSpec::homogeneous(8, NodeSpec::default());
    println!(
        "cluster: {} nodes x {} cores / {:.0} GB",
        cluster.len(),
        cluster.nodes[0].cores,
        cluster.nodes[0].memory_mb / 1024.0
    );

    for job in [
        HadoopJob::terasort(32_768.0),
        HadoopJob::wordcount(32_768.0),
        HadoopJob::join(32_768.0),
    ] {
        let name = job.name.clone();
        let sim = HadoopSimulator::new(cluster.clone(), job.clone()).with_noise(NoiseModel::none());
        let stock = sim.simulate(&sim.space().default_config()).runtime_secs;

        // Expert rules.
        let mut rules = RuleBasedTuner::new("hadoop-rules", hadoop_rulebook());
        let mut sim_r =
            HadoopSimulator::new(cluster.clone(), job.clone()).with_noise(NoiseModel::none());
        let rules_rt = tune(&mut sim_r, &mut rules, 1, 1)
            .best
            .unwrap()
            .runtime_secs;

        // Starfish what-if: 1 profiling run + 5 validations.
        let mut whatif = WhatIfTuner::new();
        let mut sim_w =
            HadoopSimulator::new(cluster.clone(), job.clone()).with_noise(NoiseModel::none());
        let whatif_out = tune(&mut sim_w, &mut whatif, 6, 1);
        let whatif_rt = whatif_out.best.unwrap().runtime_secs;

        // Experiment-driven (iTuned) with a bigger budget, for reference.
        let mut ituned = ITunedTuner::new();
        let mut sim_i = HadoopSimulator::new(cluster.clone(), job).with_noise(NoiseModel::none());
        let ituned_rt = tune(&mut sim_i, &mut ituned, 30, 1)
            .best
            .unwrap()
            .runtime_secs;

        println!("\njob: {name}");
        println!("  stock defaults   : {stock:>8.0} s   (1 reducer, no compression)");
        println!(
            "  rule book        : {rules_rt:>8.0} s   ({:.1}x, 1 run)",
            stock / rules_rt
        );
        println!(
            "  starfish what-if : {whatif_rt:>8.0} s   ({:.1}x, 6 runs)",
            stock / whatif_rt
        );
        println!(
            "  ituned 30 runs   : {ituned_rt:>8.0} s   ({:.1}x, 30 runs)",
            stock / ituned_rt
        );
    }

    // The parallel-DB comparison (Pavlo et al. reproduction).
    println!("\nparallel DBMS baseline vs as-benchmarked Hadoop (32 GB):");
    let db = ParallelDbBaseline::new(cluster.clone());
    for job in HadoopJob::analytical_suite(32_768.0) {
        let task = ParallelDbBaseline::task_for_job(&job);
        let sim = HadoopSimulator::new(cluster.clone(), job.clone()).with_noise(NoiseModel::none());
        let h = sim
            .simulate(&autotune::sim::hadoop::benchmark_config(&cluster))
            .runtime_secs;
        let d = db.runtime_secs(task, 32_768.0);
        println!(
            "  {:<10} parallel-db {d:>6.0} s   hadoop {h:>6.0} s   gap {:.1}x",
            job.name,
            h / d
        );
    }
}
