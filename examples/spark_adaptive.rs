//! Spark tuning two ways (§2.4): offline experiment-driven search for a
//! batch aggregation, and online dynamic partitioning (Gounaris et al.)
//! for a streaming pipeline where every micro-batch is a chance to adapt.
//!
//! ```sh
//! cargo run --release --example spark_adaptive
//! ```

use autotune::core::{tune, Objective};
use autotune::prelude::*;
use autotune::sim::spark::SparkApp;

fn main() {
    let cluster = ClusterSpec::homogeneous(8, NodeSpec::default());

    // ---- batch: offline tuning --------------------------------------------
    let mut batch = SparkSimulator::new(cluster.clone(), SparkApp::aggregation(16_384.0));
    let default_rt = batch.simulate(&batch.space().default_config()).runtime_secs;
    println!("batch aggregation (16 GB), default config: {default_rt:.0} s");

    let mut rules = RuleBasedTuner::new("spark-rules", spark_rulebook());
    let rules_rt = tune(&mut batch, &mut rules, 1, 3)
        .best
        .unwrap()
        .runtime_secs;
    println!(
        "  spark tuning-guide rules : {rules_rt:.0} s ({:.1}x)",
        default_rt / rules_rt
    );

    let mut ituned = ITunedTuner::new();
    let mut batch2 = SparkSimulator::new(cluster.clone(), SparkApp::aggregation(16_384.0));
    let out = tune(&mut batch2, &mut ituned, 30, 3);
    let tuned_rt = out.best.unwrap().runtime_secs;
    println!(
        "  ituned, 30 experiments   : {tuned_rt:.0} s ({:.1}x)",
        default_rt / tuned_rt
    );

    // ---- iterative ML: Ernest right-sizes the executors --------------------
    let mut lr = SparkSimulator::new(
        ClusterSpec::homogeneous(16, NodeSpec::default()),
        SparkApp::logistic_regression(8_192.0, 10),
    );
    let lr_default = lr.simulate(&lr.space().default_config()).runtime_secs;
    let mut ernest = ErnestTuner::new();
    let ernest_out = tune(&mut lr, &mut ernest, 6, 5);
    println!(
        "\nlogistic regression (10 iters): default {lr_default:.0} s -> ernest-sized {:.0} s",
        ernest_out.best.unwrap().runtime_secs
    );
    println!("  {}", ernest_out.recommendation.rationale);

    // ---- streaming: online adaptation ---------------------------------------
    println!("\nstreaming micro-batches (64 MB each), adapting partitions online:");
    let mut stream = SparkSimulator::new(
        ClusterSpec::homogeneous(4, NodeSpec::default()),
        SparkApp::streaming(64.0, 20),
    );
    let stream_default = stream
        .simulate(&stream.space().default_config())
        .runtime_secs;
    let mut dyn_part = DynamicPartitionTuner::new();
    let out = tune(&mut stream, &mut dyn_part, 15, 9);
    println!("  default (200 partitions) : {stream_default:.0} s per window");
    for (i, obs) in out.history.all().iter().enumerate() {
        if i % 3 == 0 {
            println!(
                "  round {:>2}: partitions={:<5} runtime={:.0} s",
                i + 1,
                obs.config.i64("shuffle_partitions"),
                obs.runtime_secs
            );
        }
    }
    println!(
        "  adjustments applied: {:?}",
        &dyn_part.actions[..dyn_part.actions.len().min(4)]
    );
}
