//! The OtterTune workflow (§2.2, Table 2): reuse tuning experience across
//! workloads. A repository is built by tuning three reference workloads;
//! a *new* workload is then tuned with workload mapping, which should
//! out-pace a cold-start tuner at small budgets.
//!
//! ```sh
//! cargo run --release --example ottertune_repository
//! ```

use autotune::core::{tune, Objective};
use autotune::prelude::*;
use autotune::sim::dbms::DbmsWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- build the repository ----------------------------------------------
    println!("building repository from 3 past workloads (25 runs each)…");
    let mut repo = WorkloadRepository::new();
    let mut rng = StdRng::seed_from_u64(1);
    for (id, wl) in [
        ("tenant-a-oltp", DbmsWorkload::oltp()),
        ("tenant-b-olap", DbmsWorkload::olap()),
        ("tenant-c-mixed", DbmsWorkload::mixed()),
    ] {
        let mut sim = DbmsSimulator::new(NodeSpec::default(), wl);
        let mut obs = vec![sim.evaluate(&sim.space().default_config(), &mut rng)];
        for _ in 0..24 {
            let c = sim.space().random_config(&mut rng);
            obs.push(sim.evaluate(&c, &mut rng));
        }
        println!("  stored {id} ({} observations)", obs.len());
        repo.add(id, obs);
    }

    // ---- tune a brand-new workload -------------------------------------------
    // The new tenant runs an OLTP-like mix with a different working set.
    let mut new_workload = DbmsWorkload::oltp();
    new_workload.name = "tenant-d-new".into();
    new_workload.working_set_mb = 3_072.0;
    new_workload.concurrency = 48;

    let baseline = {
        let sim = DbmsSimulator::new(NodeSpec::default(), new_workload.clone())
            .with_noise(NoiseModel::none());
        sim.simulate(&sim.space().default_config()).runtime_secs
    };
    println!(
        "\nnew workload {}: default = {baseline:.0} s",
        new_workload.name
    );

    let budget = 15; // deliberately small: this is where mapping pays off
    let mut with_repo = OtterTuneTuner::new(repo);
    let mut sim = DbmsSimulator::new(NodeSpec::default(), new_workload.clone());
    let warm = tune(&mut sim, &mut with_repo, budget, 11);
    println!(
        "  ottertune + repository : best {:.0} s ({:.2}x) — mapped to {}",
        warm.best.as_ref().unwrap().runtime_secs,
        baseline / warm.best.as_ref().unwrap().runtime_secs,
        with_repo.mapped_workload.as_deref().unwrap_or("?")
    );
    println!(
        "  pruned metrics kept    : {:?}",
        with_repo.pruned_metrics()
    );

    let mut cold = OtterTuneTuner::new(WorkloadRepository::new());
    let mut sim = DbmsSimulator::new(NodeSpec::default(), new_workload.clone());
    let cold_out = tune(&mut sim, &mut cold, budget, 11);
    println!(
        "  ottertune cold start   : best {:.0} s ({:.2}x)",
        cold_out.best.as_ref().unwrap().runtime_secs,
        baseline / cold_out.best.as_ref().unwrap().runtime_secs,
    );

    let mut random = RandomSearchTuner;
    let mut sim = DbmsSimulator::new(NodeSpec::default(), new_workload);
    let rand_out = tune(&mut sim, &mut random, budget, 11);
    println!(
        "  random search          : best {:.0} s ({:.2}x)",
        rand_out.best.as_ref().unwrap().runtime_secs,
        baseline / rand_out.best.as_ref().unwrap().runtime_secs,
    );
}
