//! The §2.5 "cloud computing" open challenge end-to-end: profile a job
//! once, then answer provisioning what-ifs — which instance type, how
//! many nodes, what does a deadline cost — from the analytic model, and
//! cross-check a couple of frontier plans against the "real" simulator.
//!
//! ```sh
//! cargo run --release --example cloud_provisioning
//! ```

use autotune::core::Objective;
use autotune::prelude::*;
use autotune::sim::cluster::ClusterSpec;
use autotune::sim::hadoop::{benchmark_config, HadoopJob, HadoopSimulator};
use autotune::tuners::cost::{Elastisizer, InstanceType, JobProfile};

fn main() {
    // Profile TeraSort once on the current 8-node cluster.
    let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
    let default = sim.space().default_config();
    let run = sim.simulate(&default);
    let obs = autotune::core::Observation {
        config: default,
        runtime_secs: run.runtime_secs,
        cost: run.runtime_secs,
        metrics: run.metrics,
        failed: false,
    };
    let job = JobProfile::estimate(&obs, &sim.profile());
    println!(
        "profiled job: {:.0} MB input, output ratio {:.2}, map cpu {:.1} ms/MB",
        job.input_mb, job.map_output_ratio, job.map_cpu_ms_per_mb
    );

    let engine = Elastisizer::new(job, benchmark_config(&sim.cluster));
    let plans = engine.enumerate(&InstanceType::catalogue(), &[2, 4, 8, 16, 32]);
    println!("\ntime/cost Pareto frontier:");
    for p in plans.iter().filter(|p| p.pareto_optimal) {
        println!(
            "  {:<8} x{:<3} predicted {:>5.0} s for {:>5.1} cents",
            p.instance, p.nodes, p.predicted_secs, p.predicted_cents
        );
    }

    // Cross-validate two frontier plans against the full simulator.
    println!("\ncross-check (model vs full simulator):");
    for p in plans.iter().filter(|p| p.pareto_optimal).take(2) {
        let inst = InstanceType::catalogue()
            .into_iter()
            .find(|i| i.name == p.instance)
            .expect("catalogue entry");
        let node = NodeSpec {
            cores: inst.cores,
            core_speed: 1.0,
            memory_mb: inst.memory_mb,
            disk_mbps: inst.disk_mbps,
            disk_iops: inst.disk_mbps * 3.0,
            network_mbps: inst.network_mbps,
        };
        let cluster = ClusterSpec::homogeneous(p.nodes, node);
        let check = HadoopSimulator::new(cluster.clone(), HadoopJob::terasort(32_768.0))
            .with_noise(NoiseModel::none());
        let actual = check.simulate(&benchmark_config(&cluster)).runtime_secs;
        println!(
            "  {:<8} x{:<3} model {:>6.0} s   simulator {:>6.0} s   ({:+.0}% error)",
            p.instance,
            p.nodes,
            p.predicted_secs,
            actual,
            (p.predicted_secs - actual) / actual * 100.0
        );
    }
}
