#!/usr/bin/env bash
# Smoke test for the autotune-serve daemon: boot on a random port, drive a
# full tuning session and an adaptive drift-detecting session over HTTP,
# check /metrics and CSV export, then verify graceful SIGTERM shutdown and
# crash-free recovery (including the drift epoch) on restart.
#
# Usage: scripts/serve_smoke.sh [path-to-autotune-serve-binary]
set -euo pipefail

BIN="${1:-}"
if [[ -z "$BIN" ]]; then
    cargo build --release -p autotune-serve
    BIN="target/release/autotune-serve"
fi

WORK="$(mktemp -d)"
LOG="$WORK/daemon.log"
DATA="$WORK/data"
DAEMON_PID=""

cleanup() {
    if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

start_daemon() {
    # fsync durability engages the group-commit journal (group is the
    # default WAL mode but only batches when syncs are actually demanded),
    # so /metrics exposes non-null group_commit counters to assert on.
    "$BIN" --addr 127.0.0.1:0 --data-dir "$DATA" --workers 1 --shards 2 \
        --durability fsync >"$LOG" 2>&1 &
    DAEMON_PID=$!
    # main.rs prints "listening on http://HOST:PORT" once the socket is bound.
    for _ in $(seq 1 100); do
        if grep -q "listening on http://" "$LOG"; then
            break
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon exited before binding"
        sleep 0.1
    done
    ADDR="$(grep -o 'listening on http://[0-9.:]*' "$LOG" | head -1 | sed 's|listening on http://||')"
    [[ -n "$ADDR" ]] || fail "could not parse listen address from daemon log"
}

start_daemon
echo "daemon up at $ADDR (pid $DAEMON_PID)"

curl -fsS "http://$ADDR/healthz" >/dev/null || fail "healthz not ok"

SPEC='{"system":"dbms-oltp","tuner":"ituned","seed":42,"budget":6,"noise":"none","warm_start":false}'
CREATE="$(curl -fsS -X POST "http://$ADDR/sessions" -d "$SPEC")"
echo "create: $CREATE"
SID="$(echo "$CREATE" | grep -o 's-[0-9]*' | head -1)"
[[ -n "$SID" ]] || fail "create response carried no session id: $CREATE"

ADVANCE="$(curl -fsS -X POST "http://$ADDR/sessions/$SID/advance" -d '{"steps":6}')"
echo "advance: $ADVANCE"
echo "$ADVANCE" | grep -q '"finished"' || fail "session did not finish: $ADVANCE"

METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "metrics: $METRICS"
echo "$METRICS" | grep -q '"evaluations": *6' || fail "metrics missing 6 evaluations: $METRICS"
echo "$METRICS" | grep -q '"queue_depth"' || fail "metrics missing queue_depth: $METRICS"
echo "$METRICS" | grep -q '"wal_bytes_total"' || fail "metrics missing wal_bytes_total: $METRICS"
echo "$METRICS" | grep -q '"shards": *2' || fail "metrics missing shards=2: $METRICS"
echo "$METRICS" | grep -q '"shard_queue_depths"' || fail "metrics missing shard_queue_depths: $METRICS"
echo "$METRICS" | grep -q '"durability": *"fsync"' || fail "metrics missing durability=fsync: $METRICS"
# Per-endpoint latency histograms: create + advance were both served.
echo "$METRICS" | grep -q '"endpoint": *"create"' || fail "metrics missing create endpoint histogram: $METRICS"
echo "$METRICS" | grep -q '"endpoint": *"advance"' || fail "metrics missing advance endpoint histogram: $METRICS"
# Group commit ran (fsync mode): at least one batch was synced.
echo "$METRICS" | grep -q '"group_commit": *{' || fail "metrics missing group_commit stats: $METRICS"
echo "$METRICS" | grep -q '"batches": *[1-9]' || fail "group_commit reported zero batches: $METRICS"

CSV="$(curl -fsS "http://$ADDR/sessions/$SID/csv")"
[[ "$(echo "$CSV" | head -1)" == run,* ]] || fail "CSV export missing header: $CSV"
# Header + baseline probe + 6 tuner evaluations.
LINES="$(echo "$CSV" | grep -c .)"
[[ "$LINES" -eq 8 ]] || fail "CSV expected 8 lines, got $LINES"

# Adaptive session with drift detection: a COLT tuner on a workload that
# flips at evaluation 12. Canary probes run every 10 evaluations with no
# noise, so the post-flip canary at 20 trips Page-Hinkley deterministically
# and the session opens epoch 1 before finishing within its budget.
ADAPTIVE_SPEC='{"system":"dbms-flip@12","tuner":"colt","seed":7,"budget":24,"noise":"none","warm_start":false,"drift":{"detector":"ph","threshold":0.05,"delta":0.01,"min_obs":1,"probe_every":10}}'
ACREATE="$(curl -fsS -X POST "http://$ADDR/sessions" -d "$ADAPTIVE_SPEC")"
echo "adaptive create: $ACREATE"
ASID="$(echo "$ACREATE" | grep -o 's-[0-9]*' | head -1)"
[[ -n "$ASID" ]] || fail "adaptive create carried no session id: $ACREATE"

AADVANCE="$(curl -fsS -X POST "http://$ADDR/sessions/$ASID/advance" -d '{"steps":24}')"
echo "adaptive advance: $AADVANCE"
echo "$AADVANCE" | grep -q '"finished"' || fail "adaptive session did not finish: $AADVANCE"

ADETAIL="$(curl -fsS "http://$ADDR/sessions/$ASID")"
echo "$ADETAIL" | grep -q '"epoch": *1' || fail "adaptive session never left epoch 0: $ADETAIL"
echo "$ADETAIL" | grep -q '"drift_events": *\[ *{' || fail "adaptive session recorded no drift events: $ADETAIL"

METRICS="$(curl -fsS "http://$ADDR/metrics")"
echo "$METRICS" | grep -q '"drifts_total": *[1-9]' || fail "metrics missing detected drift: $METRICS"

kill -TERM "$DAEMON_PID"
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$DAEMON_PID" 2>/dev/null && fail "daemon did not exit within 10s of SIGTERM"
wait "$DAEMON_PID" 2>/dev/null || true
grep -q "shutdown complete" "$LOG" || fail "daemon did not shut down gracefully"
DAEMON_PID=""

# Restart on the same data dir: both finished sessions must recover from
# disk, and the adaptive one must replay its drift event into epoch 1.
start_daemon
LIST="$(curl -fsS "http://$ADDR/sessions")"
echo "recovered: $LIST"
echo "$LIST" | grep -q "$SID" || fail "restart lost session $SID: $LIST"
echo "$LIST" | grep -q '"finished"' || fail "recovered session not finished: $LIST"
echo "$LIST" | grep -q "$ASID" || fail "restart lost adaptive session $ASID: $LIST"
ADETAIL="$(curl -fsS "http://$ADDR/sessions/$ASID")"
echo "$ADETAIL" | grep -q '"epoch": *1' || fail "recovered adaptive session lost its drift epoch: $ADETAIL"
curl -fsS -X POST "http://$ADDR/shutdown" >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$DAEMON_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$DAEMON_PID" 2>/dev/null && fail "daemon did not exit after POST /shutdown"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "serve smoke test passed"
