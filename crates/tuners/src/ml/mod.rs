//! **Category 5 — Machine-learning tuning** (§2.1): black-box models
//! learned from observations. [`ottertune`] reproduces the full OtterTune
//! pipeline (metric pruning, Lasso knob ranking, workload mapping, GP
//! recommendation); [`rodd`] the neural-network tuner; [`ernest`] the
//! NNLS performance-at-scale model; [`parallelism`] the cross-application
//! parallelism regressor of Hernández et al.

pub mod ernest;
pub mod ottertune;
pub mod parallelism;
pub mod rodd;

pub use ernest::{ErnestModel, ErnestTuner, ScaleSample};
pub use ottertune::{
    map_workload, prune_metrics, rank_knobs, OtterTuneTuner, RepoWorkload, WorkloadRepository,
};
pub use parallelism::{ParallelismModel, ParallelismTuner};
pub use rodd::RoddTuner;
