//! Neural-network tuning in the spirit of Rodd & Kulkarni (IJCSIS 2010,
//! "Adaptive Tuning Algorithm for Performance Tuning of Database
//! Management System") — the Table 2 "Neural Networks / Memory
//! parameters" row.
//!
//! A small MLP learns (configuration → log runtime) from the observations
//! made so far; each round it is retrained and the next experiment is the
//! candidate the network predicts fastest, with ε-greedy exploration.

use crate::util::{best_anchors, candidate_pool, log_runtimes};
use autotune_core::{Configuration, History, Recommendation, Tuner, TunerFamily, TuningContext};
use autotune_math::mlp::{Activation, Mlp, TrainConfig};
use autotune_math::stats::{mean, std_dev};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The neural-network tuner.
#[derive(Debug)]
pub struct RoddTuner {
    /// Random bootstrap samples before the network is trusted.
    pub bootstrap: usize,
    /// Exploration probability.
    pub epsilon: f64,
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs per round.
    pub epochs: usize,
}

impl Default for RoddTuner {
    fn default() -> Self {
        RoddTuner {
            bootstrap: 10,
            epsilon: 0.1,
            hidden: 16,
            epochs: 200,
        }
    }
}

impl RoddTuner {
    /// Creates the tuner with default settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tuner for RoddTuner {
    fn name(&self) -> &str {
        "rodd-nn"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::MachineLearning
    }

    fn min_history(&self) -> usize {
        self.bootstrap
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        if history.len() < self.bootstrap {
            if history.is_empty() {
                return ctx.space.default_config();
            }
            return ctx.space.random_config(rng);
        }
        if rng.random_range(0.0..1.0) < self.epsilon {
            return ctx.space.random_config(rng);
        }

        // Train the network on standardized log runtimes. The network's
        // own RNG is derived from the session RNG so runs are reproducible.
        let (xs, _) = history.training_set(&ctx.space);
        let ys_raw = log_runtimes(history);
        let m = mean(&ys_raw);
        let s = std_dev(&ys_raw).max(1e-6);
        let ys: Vec<Vec<f64>> = ys_raw.iter().map(|y| vec![(y - m) / s]).collect();
        let mut net_rng = StdRng::seed_from_u64(rng.random_range(0..u64::MAX));
        let mut net = Mlp::new(
            &[dim, self.hidden, self.hidden, 1],
            Activation::Relu,
            &mut net_rng,
        );
        let cfg = TrainConfig {
            learning_rate: 0.02,
            epochs: self.epochs,
            batch_size: 16,
            weight_decay: 1e-4,
        };
        net.train(&xs, &ys, &cfg, &mut net_rng);

        // Propose the candidate the network likes best.
        let anchors = best_anchors(history, &ctx.space, 3);
        let pool = candidate_pool(dim, 400, &anchors, 30, 0.12, rng);
        let mut best = None;
        let mut best_pred = f64::INFINITY;
        for p in pool {
            let pred = net.predict_scalar(&p);
            if pred < best_pred {
                best_pred = pred;
                best = Some(p);
            }
        }
        match best {
            Some(p) => ctx.space.decode(&p),
            None => ctx.space.random_config(rng),
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: "neural-network surrogate with ε-greedy exploration".into(),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no observations".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearchTuner;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, ParamSpec};

    fn bowl() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(
            (0..4)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.9, ""))
                .collect(),
        );
        FunctionObjective::new(space, "bowl", |x| {
            x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>() + 1.0
        })
    }

    #[test]
    fn nn_tuner_beats_random_on_average() {
        let mut wins = 0;
        for seed in 0..5 {
            let mut obj = bowl();
            let mut nn = RoddTuner::new();
            let ours = tune(&mut obj, &mut nn, 35, seed).best.unwrap().runtime_secs;
            let mut obj = bowl();
            let mut r = RandomSearchTuner;
            let theirs = tune(&mut obj, &mut r, 35, seed).best.unwrap().runtime_secs;
            if ours <= theirs * 1.02 {
                wins += 1;
            }
        }
        assert!(wins >= 3, "NN tuner won only {wins}/5");
    }

    #[test]
    fn bootstrap_phase_is_random_then_model() {
        let mut obj = bowl();
        let mut nn = RoddTuner {
            bootstrap: 5,
            epsilon: 0.0,
            ..RoddTuner::new()
        };
        let out = tune(&mut obj, &mut nn, 12, 1);
        assert_eq!(out.history.len(), 12);
        // The model phase should land close to the optimum basin.
        let best = out.best.unwrap().runtime_secs;
        assert!(best < 1.3, "best={best}");
    }

    #[test]
    fn tunes_memory_knobs_on_dbms() {
        use autotune_core::Objective;
        use autotune_sim::noise::NoiseModel;
        use autotune_sim::DbmsSimulator;
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut nn = RoddTuner::new();
        let out = tune(&mut sim, &mut nn, 30, 2);
        let best = out.best.unwrap().runtime_secs;
        assert!(best < default_rt * 0.7, "default={default_rt} nn={best}");
    }
}
