//! Ernest: efficient performance prediction for large-scale advanced
//! analytics (Venkataraman et al., NSDI 2016).
//!
//! Ernest predicts the runtime of an analytics job at *full* cluster scale
//! from a handful of cheap runs on *small* samples, by fitting a
//! non-negative least squares model over interpretable scale features:
//!
//! `t(s, m) = θ₀ + θ₁·(s/m) + θ₂·log(m) + θ₃·m`
//!
//! (serial term, per-machine parallel work, tree-aggregation depth,
//! all-to-all communication). Non-negativity keeps every term physically
//! meaningful. [`ErnestTuner`] applies the model to right-size
//! `executor_instances` for a Spark application.

use autotune_core::{
    Configuration, History, ParamValue, Recommendation, Tuner, TunerFamily, TuningContext,
};
use autotune_math::linreg::{mape, nnls, LinearFit};
use autotune_math::matrix::Matrix;
use rand::rngs::StdRng;

/// One training sample: data scale, machine count, measured runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSample {
    /// Fraction of the full input (0, 1].
    pub data_scale: f64,
    /// Machines (executors) used.
    pub machines: f64,
    /// Measured runtime, seconds.
    pub runtime_secs: f64,
}

/// The fitted Ernest model.
#[derive(Debug, Clone)]
pub struct ErnestModel {
    fit: LinearFit,
}

impl ErnestModel {
    /// Feature map `[1, s/m, log2(m), m]`.
    pub fn features(data_scale: f64, machines: f64) -> Vec<f64> {
        let m = machines.max(1.0);
        vec![1.0, data_scale / m, m.log2().max(0.0), m]
    }

    /// Fits the NNLS model to samples.
    ///
    /// # Panics
    /// Panics if fewer than 4 samples are provided (underdetermined).
    pub fn fit(samples: &[ScaleSample]) -> Self {
        assert!(samples.len() >= 4, "Ernest needs at least 4 samples");
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| Self::features(s.data_scale, s.machines))
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<f64> = samples.iter().map(|s| s.runtime_secs).collect();
        ErnestModel {
            fit: nnls(&x, &y, 50_000, 1e-10),
        }
    }

    /// Model coefficients `[θ₀, θ₁, θ₂, θ₃]`.
    pub fn coefficients(&self) -> &[f64] {
        &self.fit.weights
    }

    /// Predicted runtime at a scale/machine point.
    pub fn predict(&self, data_scale: f64, machines: f64) -> f64 {
        self.fit.predict(&Self::features(data_scale, machines))
    }

    /// Machine count minimizing predicted runtime at full scale, within
    /// `[1, max_machines]`.
    pub fn best_machines(&self, max_machines: usize) -> usize {
        (1..=max_machines.max(1))
            .min_by(|&a, &b| {
                self.predict(1.0, a as f64)
                    .total_cmp(&self.predict(1.0, b as f64))
            })
            .unwrap_or(1)
    }

    /// Machine count minimizing predicted *cost* (machines × runtime) while
    /// staying within `slowdown_tolerance` of the fastest predicted
    /// runtime — Ernest's cloud-provisioning use case.
    pub fn cheapest_machines(&self, max_machines: usize, slowdown_tolerance: f64) -> usize {
        let best = self.best_machines(max_machines);
        let best_rt = self.predict(1.0, best as f64);
        (1..=max_machines.max(1))
            .filter(|&m| self.predict(1.0, m as f64) <= best_rt * slowdown_tolerance)
            .min_by(|&a, &b| {
                let ca = a as f64 * self.predict(1.0, a as f64);
                let cb = b as f64 * self.predict(1.0, b as f64);
                ca.total_cmp(&cb)
            })
            .unwrap_or(best)
    }

    /// MAPE of the model on hold-out samples.
    pub fn validation_error(&self, samples: &[ScaleSample]) -> f64 {
        let pred: Vec<f64> = samples
            .iter()
            .map(|s| self.predict(s.data_scale, s.machines))
            .collect();
        let actual: Vec<f64> = samples.iter().map(|s| s.runtime_secs).collect();
        mape(&pred, &actual)
    }
}

/// Tuner that right-sizes `executor_instances` with an Ernest model built
/// from a short sweep over machine counts.
#[derive(Debug)]
pub struct ErnestTuner {
    /// Machine counts probed during training.
    pub probe_machines: Vec<i64>,
    model: Option<ErnestModel>,
}

impl Default for ErnestTuner {
    fn default() -> Self {
        ErnestTuner {
            probe_machines: vec![1, 2, 4, 8],
            model: None,
        }
    }
}

impl ErnestTuner {
    /// Creates the tuner with the default probe schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted model, once probing is done.
    pub fn model(&self) -> Option<&ErnestModel> {
        self.model.as_ref()
    }
}

impl Tuner for ErnestTuner {
    fn name(&self) -> &str {
        "ernest"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::MachineLearning
    }

    fn min_history(&self) -> usize {
        self.probe_machines.len()
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        let step = history.len();
        let base = ctx.space.default_config();
        if step < self.probe_machines.len() {
            let mut c = base;
            c.set(
                "executor_instances",
                ParamValue::Int(self.probe_machines[step]),
            );
            return c;
        }
        if self.model.is_none() {
            let samples: Vec<ScaleSample> = history.all()[..self.probe_machines.len()]
                .iter()
                .zip(&self.probe_machines)
                .map(|(o, &m)| ScaleSample {
                    data_scale: 1.0,
                    machines: m as f64,
                    runtime_secs: o.runtime_secs,
                })
                .collect();
            self.model = Some(ErnestModel::fit(&samples));
        }
        let Some(model) = self.model.as_ref() else {
            return base; // unreachable: fitted above
        };
        let max_m = ctx
            .space
            .spec("executor_instances")
            .and_then(|s| match s.domain {
                autotune_core::ParamDomain::Int { max, .. } => Some(max as usize),
                _ => None,
            })
            .unwrap_or(32);
        let best = model.best_machines(max_m);
        let mut c = ctx.space.default_config();
        c.set("executor_instances", ParamValue::Int(best as i64));
        c
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: match &self.model {
                    Some(m) => format!(
                        "Ernest NNLS scale model θ = {:?}",
                        m.coefficients()
                            .iter()
                            .map(|c| (c * 100.0).round() / 100.0)
                            .collect::<Vec<_>>()
                    ),
                    None => "probing incomplete".into(),
                },
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no runs".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::cluster::{ClusterSpec, NodeSpec};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::spark::{SparkApp, SparkSimulator};

    /// Generates scale samples from the Spark simulator by varying the
    /// executor count and input fraction.
    fn spark_samples(scales: &[f64], machines: &[i64]) -> Vec<ScaleSample> {
        let cluster = ClusterSpec::homogeneous(16, NodeSpec::default());
        let mut out = Vec::new();
        for &s in scales {
            let sim = SparkSimulator::new(cluster.clone(), SparkApp::aggregation(32_768.0 * s))
                .with_noise(NoiseModel::none());
            for &m in machines {
                let mut c = sim.space().default_config();
                c.set("executor_instances", ParamValue::Int(m));
                c.set("executor_cores", ParamValue::Int(2));
                let rt = sim.simulate(&c).runtime_secs;
                out.push(ScaleSample {
                    data_scale: s,
                    machines: m as f64,
                    runtime_secs: rt,
                });
            }
        }
        out
    }

    #[test]
    fn model_extrapolates_to_full_scale() {
        // Train on small scales / few machines; validate at full scale.
        let train = spark_samples(&[0.05, 0.1, 0.2], &[1, 2, 4]);
        let model = ErnestModel::fit(&train);
        let test = spark_samples(&[1.0], &[8, 12]);
        let err = model.validation_error(&test);
        assert!(err < 40.0, "extrapolation MAPE too high: {err}%");
    }

    #[test]
    fn coefficients_nonnegative() {
        let train = spark_samples(&[0.1, 0.3], &[1, 2, 4, 8]);
        let model = ErnestModel::fit(&train);
        for c in model.coefficients() {
            assert!(*c >= 0.0);
        }
    }

    #[test]
    fn best_machines_balances_parallelism_and_overhead() {
        // Synthetic truth: t = 10 + 100/m + 0.5*m → optimum near m = 14.
        let samples: Vec<ScaleSample> = (1..=10)
            .map(|m| ScaleSample {
                data_scale: 1.0,
                machines: m as f64,
                runtime_secs: 10.0 + 100.0 / m as f64 + 0.5 * m as f64,
            })
            .collect();
        let model = ErnestModel::fit(&samples);
        let best = model.best_machines(32);
        assert!((10..=20).contains(&best), "best={best}");
        // Cheapest within 20% slowdown should use fewer machines.
        let cheap = model.cheapest_machines(32, 1.2);
        assert!(cheap <= best);
    }

    #[test]
    fn ernest_tuner_picks_good_executor_count() {
        let cluster = ClusterSpec::homogeneous(16, NodeSpec::default());
        let mut sim = SparkSimulator::new(cluster, SparkApp::aggregation(32_768.0))
            .with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = ErnestTuner::new();
        let out = tune(&mut sim, &mut tuner, 6, 1);
        let best = out.best.unwrap().runtime_secs;
        assert!(best < default_rt, "default={default_rt} ernest={best}");
        assert!(tuner.model().is_some());
    }

    #[test]
    #[should_panic(expected = "at least 4 samples")]
    fn too_few_samples_rejected() {
        let _ = ErnestModel::fit(&[ScaleSample {
            data_scale: 1.0,
            machines: 1.0,
            runtime_secs: 1.0,
        }]);
    }
}
