//! OtterTune: automatic DBMS tuning through large-scale machine learning
//! (Van Aken, Pavlo, Gordon & Zhang, SIGMOD 2017; demo PVLDB 2018).
//!
//! The pipeline, reproduced stage by stage:
//!
//! 1. **Metric pruning** — factor-analyse the runtime metrics gathered
//!    across all past workloads (PCA here), cluster metrics by their
//!    factor loadings (k-means), keep one representative per cluster.
//! 2. **Knob ranking** — Lasso path over (knob settings → runtime): knobs
//!    entering the path first matter most.
//! 3. **Workload mapping** — match the target workload to the most similar
//!    past workload by distance in pruned-metric space at comparable
//!    configurations.
//! 4. **Recommendation** — Gaussian process over the mapped workload's
//!    data plus the target's own observations, Expected Improvement on the
//!    top-ranked knobs.

use crate::util::{
    argmax_ei, best_anchors, candidate_pool, log_runtimes, GpCache, SearchConstraints,
};
use autotune_core::{
    ConfigSpace, Configuration, History, KnobRanking, Metrics, Observation, Recommendation,
    SurrogateStats, Tuner, TunerFamily, TuningContext,
};
use autotune_math::gp::KernelKind;
use autotune_math::kmeans::{kmeans, representatives};
use autotune_math::lasso::rank_by_path;
use autotune_math::lhs::maximin_lhs;
use autotune_math::matrix::{dist2, Matrix};
use autotune_math::pca::Pca;
use autotune_math::stats::{mean, standardize, std_dev};
use autotune_math::surrogate::{SurrogateConfig, SurrogateModel};
use rand::rngs::StdRng;

/// A past workload stored in the tuning repository.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RepoWorkload {
    /// Workload identifier.
    pub id: String,
    /// Observations gathered while tuning it.
    pub observations: Vec<Observation>,
}

/// The repository of previously tuned workloads.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct WorkloadRepository {
    /// Stored workloads.
    pub workloads: Vec<RepoWorkload>,
}

impl WorkloadRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a workload's observation log.
    pub fn add(&mut self, id: &str, observations: Vec<Observation>) {
        self.workloads.push(RepoWorkload {
            id: id.to_string(),
            observations,
        });
    }

    /// Total observations across workloads.
    pub fn total_observations(&self) -> usize {
        self.workloads.iter().map(|w| w.observations.len()).sum()
    }

    /// All observations flattened.
    pub fn all_observations(&self) -> impl Iterator<Item = &Observation> {
        self.workloads.iter().flat_map(|w| w.observations.iter())
    }

    /// Serializes the repository to JSON (for persistence across tuning
    /// services — OtterTune's repository is its long-term asset).
    pub fn to_json(&self) -> String {
        // lint:allow(unwrap) serializing a plain in-memory data struct cannot fail
        serde_json::to_string(self).expect("repository serializes")
    }

    /// Restores a repository from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Stage 1: metric pruning. Returns the names of the retained metrics.
pub fn prune_metrics(
    repo: &WorkloadRepository,
    max_clusters: usize,
    rng: &mut StdRng,
) -> Vec<String> {
    // Metric matrix over every repo observation.
    let mut names: Vec<String> = repo
        .all_observations()
        .flat_map(|o| o.metrics.keys().cloned())
        .collect();
    names.sort();
    names.dedup();
    if names.is_empty() {
        return names;
    }
    let rows: Vec<Vec<f64>> = repo
        .all_observations()
        .map(|o| {
            names
                .iter()
                .map(|n| o.metrics.get(n).copied().unwrap_or(0.0))
                .collect()
        })
        .collect();
    if rows.len() < 3 {
        return names;
    }
    // Standardize each metric column, then treat each METRIC as a point
    // whose coordinates are its (standardized) values across observations,
    // compressed by PCA to a handful of factors.
    let n = rows.len();
    let p = names.len();
    let mut by_metric: Vec<Vec<f64>> = vec![vec![0.0; n]; p];
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            by_metric[j][i] = v;
        }
    }
    for col in by_metric.iter_mut() {
        *col = standardize(col);
    }
    let metric_matrix = Matrix::from_rows(&by_metric);
    let factors = 5.min(n.saturating_sub(1)).max(1);
    let Ok(pca) = Pca::fit(&metric_matrix, factors.min(metric_matrix.cols())) else {
        return names;
    };
    let points: Vec<Vec<f64>> = (0..p)
        .map(|j| pca.transform_row(metric_matrix.row(j)))
        .collect();
    let k = max_clusters.min(p).max(1);
    let result = kmeans(&points, k, 4, 60, rng);
    let reps = representatives(&points, &result);
    let mut kept: Vec<String> = reps.into_iter().map(|i| names[i].clone()).collect();
    kept.sort();
    kept.dedup();
    kept
}

/// Stage 2: knob ranking by Lasso path order.
pub fn rank_knobs(space: &ConfigSpace, observations: &[&Observation]) -> KnobRanking {
    let rows: Vec<Vec<f64>> = observations
        .iter()
        .map(|o| space.encode(&o.config))
        .collect();
    if rows.len() < 4 {
        return KnobRanking::new(
            space
                .params()
                .iter()
                .map(|p| (p.name.clone(), 0.0))
                .collect(),
        );
    }
    let x = Matrix::from_rows(&rows);
    let y: Vec<f64> = observations
        .iter()
        .map(|o| o.runtime_secs.max(1e-9).ln())
        .collect();
    let order = rank_by_path(&x, &y);
    let p = order.len();
    KnobRanking::new(
        order
            .into_iter()
            .enumerate()
            .map(|(rank, idx)| {
                (
                    space.params()[idx].name.clone(),
                    (p - rank) as f64 / p as f64,
                )
            })
            .collect(),
    )
}

/// Distance between the target history and one repo workload in pruned
/// metric space: for every target observation, find the repo observation
/// with the nearest *configuration* and accumulate metric distance.
fn workload_distance(
    space: &ConfigSpace,
    target: &History,
    candidate: &RepoWorkload,
    pruned: &[String],
    scale: &Metrics,
) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for t in target.all() {
        let tx = space.encode(&t.config);
        let nearest = candidate.observations.iter().min_by(|a, b| {
            let da = dist2(&space.encode(&a.config), &tx);
            let db = dist2(&space.encode(&b.config), &tx);
            da.total_cmp(&db)
        });
        let Some(near) = nearest else { continue };
        let mut d = 0.0;
        for m in pruned {
            let s = scale.get(m).copied().unwrap_or(1.0).max(1e-9);
            let a = t.metrics.get(m).copied().unwrap_or(0.0) / s;
            let b = near.metrics.get(m).copied().unwrap_or(0.0) / s;
            d += (a - b) * (a - b);
        }
        total += d;
        count += 1;
    }
    if count == 0 {
        f64::INFINITY
    } else {
        total / count as f64
    }
}

/// Stage 3: workload mapping. Returns the index of the most similar repo
/// workload, or `None` for an empty repository.
pub fn map_workload(
    space: &ConfigSpace,
    target: &History,
    repo: &WorkloadRepository,
    pruned: &[String],
) -> Option<usize> {
    if repo.workloads.is_empty() || target.is_empty() {
        return None;
    }
    // Per-metric scale over the repo for normalized distance.
    let mut scale = Metrics::new();
    for m in pruned {
        let vals: Vec<f64> = repo
            .all_observations()
            .map(|o| o.metrics.get(m).copied().unwrap_or(0.0))
            .collect();
        scale.insert(m.clone(), std_dev(&vals).max(1e-9));
    }
    let mut best = None;
    let mut best_d = f64::INFINITY;
    for (i, w) in repo.workloads.iter().enumerate() {
        let d = workload_distance(space, target, w, pruned, &scale);
        if d < best_d {
            best_d = d;
            best = Some(i);
        }
    }
    best
}

/// The OtterTune tuner.
pub struct OtterTuneTuner {
    /// Repository of past workloads (may be empty — cold start).
    pub repository: WorkloadRepository,
    /// LHS bootstrap size on the target workload.
    pub init_samples: usize,
    /// Knobs searched by the GP (the Lasso top-k).
    pub top_knobs: usize,
    /// Metric clusters kept in pruning.
    pub metric_clusters: usize,
    /// EI exploration jitter.
    pub xi: f64,
    /// Kernel hyper-parameter re-search period; between searches, new
    /// target observations extend the cached GP incrementally.
    pub hyper_interval: usize,
    /// Surrogate backend policy (`exact | sod | nystrom | auto`); the
    /// default `auto` keeps the exact GP below its threshold, preserving
    /// historical trajectories, and goes Nyström for large mapped
    /// repositories.
    pub surrogate: SurrogateConfig,
    /// Static knob knowledge from the lint-compiled constraint artifact.
    /// `None` (the default) leaves trajectories bit-identical to the
    /// unconstrained tuner.
    pub constraints: Option<SearchConstraints>,
    init_plan: Vec<Vec<f64>>,
    planned: bool,
    pruned_metrics: Vec<String>,
    /// Mapped repo workload id (after mapping happens).
    pub mapped_workload: Option<String>,
    cache: Option<OtterCache>,
}

/// The incremental surrogate plus the context it was built under: reusing
/// the factor is only sound while the mapped workload (and hence the fixed
/// transferred prefix of the training set) stays the same.
struct OtterCache {
    inner: GpCache,
    mapped: Option<String>,
    n_mapped: usize,
}

impl OtterTuneTuner {
    /// Creates an OtterTune tuner backed by a repository.
    pub fn new(repository: WorkloadRepository) -> Self {
        OtterTuneTuner {
            repository,
            init_samples: 5,
            top_knobs: 6,
            metric_clusters: 8,
            xi: 0.01,
            hyper_interval: 5,
            surrogate: SurrogateConfig::default(),
            constraints: None,
            init_plan: Vec::new(),
            planned: false,
            pruned_metrics: Vec::new(),
            mapped_workload: None,
            cache: None,
        }
    }

    /// Retained metrics after pruning (populated lazily).
    pub fn pruned_metrics(&self) -> &[String] {
        &self.pruned_metrics
    }

    /// Adds a past session's observation log to the repository under `id` —
    /// the warm-start entry point for persistent session stores: workload
    /// mapping will consider the transferred log like any other repository
    /// workload, and its best configurations become EI anchors.
    pub fn with_transfer(mut self, id: &str, observations: Vec<Observation>) -> Self {
        self.repository.add(id, observations);
        self
    }

    /// Selects the surrogate backend (exact GP, subset-of-data, Nyström,
    /// or the size-triggered auto policy).
    pub fn with_surrogate(mut self, config: SurrogateConfig) -> Self {
        self.surrogate = config;
        self
    }

    /// Applies static knob knowledge (reduced bounds, dependencies, prior
    /// seeds) from the lint-compiled constraint artifact. Opt-in: without
    /// this call the tuner's trajectories are unchanged.
    pub fn with_constraints(mut self, constraints: SearchConstraints) -> Self {
        self.constraints = Some(constraints);
        self
    }
}

impl Tuner for OtterTuneTuner {
    fn name(&self) -> &str {
        "ottertune"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::MachineLearning
    }

    fn min_history(&self) -> usize {
        self.init_samples
    }

    fn surrogate_stats(&self) -> Option<SurrogateStats> {
        self.cache.as_ref().map(|c| c.inner.stats())
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        if !self.planned {
            self.init_plan = maximin_lhs(self.init_samples.max(2), dim, 8, rng);
            if let Some(first) = self.init_plan.first_mut() {
                *first = ctx.space.encode(&ctx.space.default_config());
            }
            if let Some(cons) = &self.constraints {
                // Prior seed configs fill the slots after the default
                // (capped so they don't displace the space-filling rows);
                // all initial points are pulled into the reduced boxes and
                // projected onto the dependency-feasible region.
                for (i, seed) in cons.seeds().iter().take(2).enumerate() {
                    let Some(slot) = self.init_plan.get_mut(1 + i) else {
                        break;
                    };
                    *slot = ctx.space.encode(seed);
                }
                for p in self.init_plan.iter_mut() {
                    cons.clamp_point(p);
                    cons.repair_point(&ctx.space, p);
                }
            }
            self.pruned_metrics = prune_metrics(&self.repository, self.metric_clusters, rng);
            self.planned = true;
        }
        let step = history.len();
        if step < self.init_plan.len() {
            return ctx.space.decode(&self.init_plan[step]);
        }

        // Map the target onto the repository.
        let mapped = map_workload(&ctx.space, history, &self.repository, &self.pruned_metrics);
        self.mapped_workload = mapped.map(|i| self.repository.workloads[i].id.clone());

        // Assemble training data: calibrated mapped data first, then the
        // target history. Mapped-first ordering makes every new target
        // observation an *append*, which the incremental GP cache turns
        // into a rank-1 Cholesky extension instead of a refit.
        let (target_xs, _) = history.training_set(&ctx.space);
        let target_ys = log_runtimes(history);
        let target_mean = mean(&target_ys);
        let target_sd = std_dev(&target_ys).max(1e-6);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        if let Some(mi) = mapped {
            let mapped_obs = &self.repository.workloads[mi].observations;
            let mapped_ys: Vec<f64> = mapped_obs
                .iter()
                .map(|o| o.runtime_secs.max(1e-9).ln())
                .collect();
            let m_mean = mean(&mapped_ys);
            let m_sd = std_dev(&mapped_ys).max(1e-6);
            for (o, my) in mapped_obs.iter().zip(&mapped_ys) {
                xs.push(ctx.space.encode(&o.config));
                // Decile-style calibration: shift the mapped workload's
                // response distribution onto the target's.
                ys.push((my - m_mean) / m_sd * target_sd + target_mean);
            }
        }
        let n_mapped = xs.len();
        xs.extend(target_xs);
        ys.extend(target_ys.iter().copied());

        // Knob ranking over everything we know.
        let all_obs: Vec<&Observation> = history
            .all()
            .iter()
            .chain(
                mapped
                    .map(|mi| self.repository.workloads[mi].observations.iter())
                    .into_iter()
                    .flatten(),
            )
            .collect();
        let ranking = rank_knobs(&ctx.space, &all_obs);
        let top: Vec<usize> = ranking
            .top_k(self.top_knobs)
            .into_iter()
            .filter_map(|n| ctx.space.index_of(n))
            .collect();

        // Surrogate: reuse the cached GP when the mapped workload hasn't
        // changed and the re-search interval hasn't elapsed. The mapped
        // prefix's calibration shifts with every target observation, so the
        // targets are refreshed against the reused factor each step.
        let n = xs.len();
        let cache_ok = match &mut self.cache {
            Some(c) if c.mapped == self.mapped_workload && c.n_mapped == n_mapped => c
                .inner
                .try_advance(&self.surrogate, &xs, &ys, self.hyper_interval),
            _ => false,
        };
        if cache_ok {
            if let Some(c) = self.cache.as_mut() {
                c.inner.gp.refresh_targets(&ys);
            }
        } else {
            let fits = self.cache.as_ref().map_or(0, |c| c.inner.fits) + 1;
            match SurrogateModel::fit_auto(&self.surrogate, KernelKind::Matern52, false, xs, &ys) {
                Ok(gp) => {
                    self.cache = Some(OtterCache {
                        inner: GpCache::new(gp, n, fits),
                        mapped: self.mapped_workload.clone(),
                        n_mapped,
                    })
                }
                Err(_) => return ctx.space.random_config(rng),
            }
        }
        let Some(cache) = self.cache.as_ref() else {
            return ctx.space.random_config(rng); // unreachable: ensured above
        };
        let gp = &cache.inner.gp;
        let y_best = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        // Candidate pool: (a) random points varying only the top knobs
        // (others pinned to the incumbent), and (b) unpinned perturbations
        // of the incumbent AND of the mapped workload's best configurations
        // — the transferred knowledge must stay reachable even when it
        // differs from the incumbent in low-ranked knobs.
        let base = best_anchors(history, &ctx.space, 1)
            .pop()
            .unwrap_or_else(|| vec![0.5; dim]);
        let mut anchors = vec![base.clone()];
        if let Some(mi) = mapped {
            let mut obs: Vec<&Observation> =
                self.repository.workloads[mi].observations.iter().collect();
            obs.sort_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
            for o in obs.iter().take(3) {
                anchors.push(ctx.space.encode(&o.config));
            }
        }
        let mut pool = Vec::new();
        for mut p in candidate_pool(dim, 400, &[], 0, 0.1, rng) {
            for d in 0..dim {
                if !top.contains(&d) {
                    p[d] = base[d];
                }
            }
            pool.push(p);
        }
        pool.extend(candidate_pool(dim, 0, &anchors, 40, 0.08, rng));
        // The transferred configurations themselves are candidates too.
        pool.extend(anchors.iter().skip(1).cloned());
        let pool = match &self.constraints {
            Some(cons) => cons.apply_to_pool(&ctx.space, pool),
            None => pool,
        };

        // Batched EI over the whole pool (bit-identical to the old
        // per-point loop, first index winning ties).
        match argmax_ei(gp, &pool, y_best, self.xi) {
            Some(j) => ctx.space.decode(&pool[j]),
            None => ctx.space.random_config(rng),
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: format!(
                    "OtterTune pipeline; mapped workload: {}; pruned metrics: {}",
                    self.mapped_workload
                        .as_deref()
                        .unwrap_or("none (cold start)"),
                    self.pruned_metrics.len()
                ),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no observations".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::dbms::DbmsWorkload;
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::{DbmsSimulator, NodeSpec};
    use rand::SeedableRng;

    /// Builds a repository by random-sampling some DBMS workloads.
    fn build_repo(per_workload: usize, seed: u64) -> WorkloadRepository {
        let mut repo = WorkloadRepository::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for (id, wl) in [
            ("oltp-like", DbmsWorkload::oltp()),
            ("olap-like", DbmsWorkload::olap()),
            ("mixed-like", DbmsWorkload::mixed()),
        ] {
            let mut sim =
                DbmsSimulator::new(NodeSpec::default(), wl).with_noise(NoiseModel::none());
            let mut obs = Vec::new();
            // Include the default so workload mapping has an anchor.
            let d = sim.space().default_config();
            obs.push(sim.evaluate(&d, &mut rng));
            for _ in 0..per_workload.saturating_sub(1) {
                let c = sim.space().random_config(&mut rng);
                obs.push(sim.evaluate(&c, &mut rng));
            }
            repo.add(id, obs);
        }
        repo
    }

    #[test]
    fn metric_pruning_reduces_dimensionality() {
        let repo = build_repo(15, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let pruned = prune_metrics(&repo, 6, &mut rng);
        let all: usize = {
            let mut names: Vec<String> = repo
                .all_observations()
                .flat_map(|o| o.metrics.keys().cloned())
                .collect();
            names.sort();
            names.dedup();
            names.len()
        };
        assert!(!pruned.is_empty());
        assert!(pruned.len() <= 6);
        assert!(
            pruned.len() < all,
            "pruning should drop metrics ({all} total)"
        );
    }

    #[test]
    fn knob_ranking_finds_memory_knobs_for_olap() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let mut obs = Vec::new();
        for _ in 0..60 {
            let c = sim.space().random_config(&mut rng);
            obs.push(sim.evaluate(&c, &mut rng));
        }
        let refs: Vec<&Observation> = obs.iter().collect();
        let ranking = rank_knobs(sim.space(), &refs);
        let top5 = ranking.top_k(5);
        assert!(
            top5.contains(&"work_mem_mb") || top5.contains(&"shared_buffers_mb"),
            "top5={top5:?}"
        );
    }

    #[test]
    fn workload_mapping_picks_the_right_twin() {
        let repo = build_repo(12, 4);
        // Target = a fresh OLTP instance; its metric signature should map
        // to "oltp-like", not "olap-like".
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut rng = StdRng::seed_from_u64(5);
        let mut history = History::new();
        let d = sim.space().default_config();
        history.push(sim.evaluate(&d, &mut rng));
        for _ in 0..4 {
            let c = sim.space().random_config(&mut rng);
            history.push(sim.evaluate(&c, &mut rng));
        }
        let mut rng2 = StdRng::seed_from_u64(6);
        let pruned = prune_metrics(&repo, 8, &mut rng2);
        let mapped = map_workload(sim.space(), &history, &repo, &pruned).unwrap();
        // The OLTP target must map to a transactional twin (oltp-like or
        // the 75%-point-select mixed workload), never the analytical one.
        assert_ne!(repo.workloads[mapped].id, "olap-like");
    }

    #[test]
    fn ottertune_with_repo_beats_defaults_quickly() {
        let repo = build_repo(20, 7);
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = OtterTuneTuner::new(repo);
        let out = tune(&mut sim, &mut tuner, 20, 8);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < default_rt * 0.6,
            "default={default_rt} ottertune={best}"
        );
        assert!(tuner.mapped_workload.is_some());
    }

    #[test]
    fn repository_roundtrips_through_json() {
        let repo = build_repo(6, 21);
        let json = repo.to_json();
        let back = WorkloadRepository::from_json(&json).unwrap();
        assert_eq!(back.workloads.len(), repo.workloads.len());
        assert_eq!(back.total_observations(), repo.total_observations());
        assert_eq!(back.workloads[0].id, repo.workloads[0].id);
        assert_eq!(
            back.workloads[0].observations[0].config,
            repo.workloads[0].observations[0].config
        );
    }

    #[test]
    fn cold_start_still_works() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = OtterTuneTuner::new(WorkloadRepository::new());
        let out = tune(&mut sim, &mut tuner, 18, 9);
        let best = out.best.unwrap().runtime_secs;
        assert!(best < default_rt, "default={default_rt} cold={best}");
        assert!(tuner.mapped_workload.is_none());
    }
}
