//! ML-based parallelism optimization in the spirit of Hernández, Pérez,
//! Gupta & Muntés-Mulero (FGCS 2018, "Using Machine Learning to Optimize
//! Parallelism in Big Data Applications" — reference \[11\] of the
//! tutorial).
//!
//! Their system learns, across *many* applications, the mapping from
//! cheap application features (input size, shuffle ratio, iteration
//! count, cluster shape) to the best parallelism settings (executors,
//! cores, partitions), then predicts good settings for an unseen
//! application without tuning it. This module reproduces the workflow
//! with a ridge-regression model per parallelism knob over engineered
//! features.

use autotune_core::{
    ConfigSpace, Configuration, History, Observation, ParamValue, Recommendation, SystemProfile,
    Tuner, TunerFamily, TuningContext,
};
use autotune_math::linreg::{ridge, LinearFit};
use autotune_math::matrix::Matrix;
use rand::rngs::StdRng;

/// The parallelism knobs the model predicts (log2 targets).
const TARGET_KNOBS: [&str; 3] = ["executor_instances", "executor_cores", "shuffle_partitions"];

/// One training example: app features + the parallelism settings that won.
#[derive(Debug, Clone)]
pub struct ParallelismExample {
    /// Feature vector (see [`app_features`]).
    pub features: Vec<f64>,
    /// log2 of the winning value per target knob.
    pub targets: [f64; 3],
}

/// Engineered application features: `[1, log2(input), shuffle_ratio,
/// iterations, log2(total cores), log2(total mem)]`.
pub fn app_features(profile: &SystemProfile, probe: Option<&Observation>) -> Vec<f64> {
    let shuffle_ratio = probe
        .and_then(|o| o.metrics.get("shuffle_mb"))
        .map(|s| (s / profile.input_mb.max(1.0)).min(5.0))
        .unwrap_or(0.5);
    vec![
        1.0,
        profile.input_mb.max(1.0).log2(),
        shuffle_ratio,
        1.0, // iterations unknown pre-run; the probe-free estimate
        (profile.total_cores().max(1) as f64).log2(),
        profile.total_memory_mb().max(1.0).log2(),
    ]
}

/// Cross-application parallelism model: one ridge regressor per knob.
#[derive(Debug, Clone)]
pub struct ParallelismModel {
    fits: Vec<LinearFit>,
}

impl ParallelismModel {
    /// Trains from examples gathered over past applications.
    ///
    /// # Panics
    /// Panics with fewer than 4 examples.
    pub fn train(examples: &[ParallelismExample]) -> Self {
        assert!(examples.len() >= 4, "need at least 4 training apps");
        let x = Matrix::from_rows(
            &examples
                .iter()
                .map(|e| e.features.clone())
                .collect::<Vec<_>>(),
        );
        let fits = (0..TARGET_KNOBS.len())
            .map(|k| {
                let y: Vec<f64> = examples.iter().map(|e| e.targets[k]).collect();
                // lint:allow(unwrap) the 1e-3 ridge jitter keeps the normal equations SPD
                ridge(&x, &y, 1e-3).expect("ridge solvable with jitter")
            })
            .collect();
        ParallelismModel { fits }
    }

    /// Predicts the parallelism settings for an application, clamped into
    /// the knob domains of `space`.
    pub fn predict(
        &self,
        space: &ConfigSpace,
        profile: &SystemProfile,
        probe: Option<&Observation>,
    ) -> Configuration {
        let features = app_features(profile, probe);
        let mut config = space.default_config();
        for (k, knob) in TARGET_KNOBS.iter().enumerate() {
            let Some(spec) = space.spec(knob) else {
                continue;
            };
            if let autotune_core::ParamDomain::Int { min, max, .. } = spec.domain {
                let log2 = self.fits[k].predict(&features);
                let value = (log2.exp2().round() as i64).clamp(min, max);
                config.set(knob, ParamValue::Int(value));
            }
        }
        config
    }

    /// Builds a training example from a tuned session: features of the
    /// app + the best configuration found.
    pub fn example_from_session(
        profile: &SystemProfile,
        history: &History,
    ) -> Option<ParallelismExample> {
        let best = history.best()?;
        let probe = history.all().first();
        let mut targets = [0.0; 3];
        for (k, knob) in TARGET_KNOBS.iter().enumerate() {
            targets[k] = best.config.get(knob)?.as_f64()?.max(1.0).log2();
        }
        Some(ParallelismExample {
            features: app_features(profile, probe),
            targets,
        })
    }
}

/// Tuner wrapper: predicts parallelism from the trained model, leaves
/// everything else at defaults, and (like the paper's system) needs *no*
/// tuning runs on the new application.
#[derive(Debug)]
pub struct ParallelismTuner {
    /// The trained cross-application model.
    pub model: ParallelismModel,
}

impl ParallelismTuner {
    /// Wraps a trained model.
    pub fn new(model: ParallelismModel) -> Self {
        ParallelismTuner { model }
    }
}

impl Tuner for ParallelismTuner {
    fn name(&self) -> &str {
        "ml-parallelism"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::MachineLearning
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        self.model
            .predict(&ctx.space, &ctx.profile, history.all().first())
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let config = self
            .model
            .predict(&ctx.space, &ctx.profile, history.all().first());
        Recommendation {
            expected_runtime: history
                .all()
                .iter()
                .find(|o| o.config == config)
                .map(|o| o.runtime_secs),
            config,
            rationale: "parallelism predicted by cross-application regression".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ITunedTuner;
    use autotune_core::{tune, Objective};
    use autotune_sim::cluster::{ClusterSpec, NodeSpec};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::spark::{SparkApp, SparkSimulator};

    /// Builds training examples by tuning several Spark apps of different
    /// sizes with iTuned, exactly how the original system gathers data.
    fn training_corpus() -> Vec<ParallelismExample> {
        let mut out = Vec::new();
        for (i, input_mb) in [2_048.0, 4_096.0, 8_192.0, 16_384.0, 32_768.0]
            .into_iter()
            .enumerate()
        {
            let mut sim = SparkSimulator::new(
                ClusterSpec::homogeneous(8, NodeSpec::default()),
                SparkApp::aggregation(input_mb),
            )
            .with_noise(NoiseModel::none());
            let mut tuner = ITunedTuner::new();
            let outcome = tune(&mut sim, &mut tuner, 25, i as u64);
            if let Some(ex) =
                ParallelismModel::example_from_session(&sim.profile(), &outcome.history)
            {
                out.push(ex);
            }
        }
        out
    }

    #[test]
    fn model_transfers_to_unseen_app_size() {
        let corpus = training_corpus();
        assert!(corpus.len() >= 4);
        let model = ParallelismModel::train(&corpus);

        // An input size never seen during training.
        let mut sim = SparkSimulator::new(
            ClusterSpec::homogeneous(8, NodeSpec::default()),
            SparkApp::aggregation(12_288.0),
        )
        .with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = ParallelismTuner::new(model);
        let out = tune(&mut sim, &mut tuner, 1, 9);
        let predicted_rt = out.best.unwrap().runtime_secs;
        assert!(
            predicted_rt < default_rt * 0.7,
            "zero-shot prediction should beat defaults: {default_rt} -> {predicted_rt}"
        );
    }

    #[test]
    fn predictions_respect_domains() {
        let corpus = training_corpus();
        let model = ParallelismModel::train(&corpus);
        let sim = SparkSimulator::aggregation_default();
        let cfg = model.predict(sim.space(), &sim.profile(), None);
        assert!(sim.space().validate_config(&cfg).is_ok());
        assert!(cfg.i64("executor_instances") >= 1);
    }

    #[test]
    fn features_scale_with_profile() {
        let small = SystemProfile {
            input_mb: 1_024.0,
            ..SystemProfile::default()
        };
        let big = SystemProfile {
            input_mb: 65_536.0,
            nodes: 16,
            ..SystemProfile::default()
        };
        let fs = app_features(&small, None);
        let fb = app_features(&big, None);
        assert!(fb[1] > fs[1], "input feature grows");
        assert!(fb[4] > fs[4], "core feature grows");
    }

    #[test]
    #[should_panic(expected = "at least 4 training apps")]
    fn tiny_corpus_rejected() {
        let _ = ParallelismModel::train(&[]);
    }
}
