//! Warm-starting tuners from past sessions.
//!
//! OtterTune's defining advantage (§2.2 of the tutorial) is its repository
//! of past tuning sessions: a new session on a familiar workload starts
//! from transferred knowledge instead of a blank slate. This module holds
//! the transfer primitives shared by the GP-based tuners and the
//! `autotune-serve` session repository:
//!
//! * [`best_k_configs`] distils a past observation log into its k best
//!   distinct configurations — seed material for
//!   [`ITunedTuner::with_seed_configs`](crate::experiment::ITunedTuner::with_seed_configs).
//! * [`warm_started_ituned`] / [`warm_started_ottertune`] build the two
//!   GP tuners pre-loaded with a past session's log.

use crate::experiment::ITunedTuner;
use crate::ml::{OtterTuneTuner, WorkloadRepository};
use autotune_core::{Configuration, Observation};

/// The `k` best (lowest-runtime, non-failed) *distinct* configurations of
/// a past observation log, best first. Failed runs never seed a new
/// session; duplicates (re-evaluations of the same point) are collapsed.
pub fn best_k_configs(observations: &[Observation], k: usize) -> Vec<Configuration> {
    let mut ranked: Vec<&Observation> = observations.iter().filter(|o| !o.failed).collect();
    ranked.sort_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
    let mut out: Vec<Configuration> = Vec::new();
    for o in ranked {
        if out.len() >= k {
            break;
        }
        if !out.contains(&o.config) {
            out.push(o.config.clone());
        }
    }
    out
}

/// An iTuned tuner seeded with the best configurations of a past session:
/// the transferred configs join the initial design right after the vendor
/// default, so the new session re-measures proven settings within its
/// first few evaluations.
pub fn warm_started_ituned(past: &[Observation], seeds: usize) -> ITunedTuner {
    ITunedTuner::new().with_seed_configs(best_k_configs(past, seeds))
}

/// An OtterTune tuner whose repository is pre-loaded with a past session's
/// log under `source_id`: workload mapping finds it immediately, and its
/// observations calibrate the GP from the first model-phase proposal.
pub fn warm_started_ottertune(source_id: &str, past: &[Observation]) -> OtterTuneTuner {
    OtterTuneTuner::new(WorkloadRepository::new()).with_transfer(source_id, past.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective, ParamValue};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn past_log(n: usize, seed: u64) -> Vec<Observation> {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut obs = vec![sim.evaluate(&sim.space().default_config(), &mut rng)];
        for _ in 1..n {
            let c = sim.space().random_config(&mut rng);
            obs.push(sim.evaluate(&c, &mut rng));
        }
        obs
    }

    #[test]
    fn best_k_skips_failed_and_duplicates() {
        let mut obs = past_log(6, 1);
        obs[0].failed = true;
        obs[0].runtime_secs = 0.0001; // looks unbeatable but failed
        let dup = obs[1].clone();
        obs.push(dup);
        let best = best_k_configs(&obs, 3);
        assert_eq!(best.len(), 3);
        assert!(!best.contains(&obs[0].config), "failed run must not seed");
        let mut distinct = best.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), best.len());
    }

    #[test]
    fn best_k_handles_small_logs() {
        assert!(best_k_configs(&[], 3).is_empty());
        let obs = past_log(2, 2);
        assert_eq!(best_k_configs(&obs, 5).len(), 2);
    }

    #[test]
    fn warm_ituned_reaches_past_best_faster_than_cold() {
        // Seed session: a generous budget finds a good OLTP config.
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let seed_out = tune(&mut sim, &mut ITunedTuner::new(), 25, 11);
        let target = seed_out.best.as_ref().unwrap().runtime_secs * 1.05;
        let evals_to_target = |history: &autotune_core::History| {
            history
                .best_so_far()
                .iter()
                .position(|&r| r <= target)
                .map(|i| i + 1)
        };

        // Warm restart on the same workload.
        let mut sim2 = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut warm = warm_started_ituned(seed_out.history.all(), 2);
        let warm_out = tune(&mut sim2, &mut warm, 12, 12);
        let warm_evals = evals_to_target(&warm_out.history);
        assert!(
            warm_evals.is_some_and(|e| e <= 3),
            "warm start should re-measure the transferred best within the \
             first evaluations; took {warm_evals:?}"
        );
    }

    #[test]
    fn warm_ottertune_maps_to_the_transferred_session() {
        let past = past_log(12, 3);
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic());
        let mut tuner = warm_started_ottertune("seed-session", &past);
        let out = tune(&mut sim, &mut tuner, 10, 4);
        assert_eq!(tuner.mapped_workload.as_deref(), Some("seed-session"));
        assert!(out.best.is_some());
    }

    #[test]
    fn seed_configs_survive_builder_composition() {
        let cfg = autotune_core::Configuration::new().with("x", ParamValue::Int(1));
        let t = ITunedTuner::new()
            .with_seed_configs([cfg.clone()])
            .with_seed_config(cfg.clone());
        assert_eq!(t.seed_configs.len(), 2);
    }
}
