//! **Category 6 — Adaptive tuning** (§2.1): adjust parameters while the
//! application runs. [`colt`] reproduces COLT's cost-vs-gain online
//! tuning; [`online_memory`] the online STMM feedback controller;
//! [`partition`] Gounaris et al.'s dynamic Spark partitioning;
//! [`mrmoulder`] recommendation-based adaptive tuning (Cai et al.);
//! [`tempo`] SLO-driven multi-tenant resource management (Tan & Babu).

pub mod colt;
pub mod mrmoulder;
pub mod online_memory;
pub mod partition;
pub mod tempo;

pub use colt::ColtTuner;
pub use mrmoulder::{JobSignature, MrMoulderTuner, RecommendationRepository};
pub use online_memory::OnlineMemoryTuner;
pub use partition::DynamicPartitionTuner;
pub use tempo::TempoTuner;
