//! COLT-style continuous online tuning (Schnaitter, Abiteboul, Milo &
//! Polyzotis, SIGMOD 2006 demo).
//!
//! COLT tunes *while the workload runs*: it observes execution in epochs,
//! estimates the benefit of a candidate change, and applies it only when
//! the expected gain outweighs the cost of reconfiguring. This
//! generalized implementation walks the knobs round-robin, trials a
//! one-knob perturbation per epoch, and adopts it only if the measured
//! gain beats the configured reconfiguration cost — otherwise it reverts.
//! Because it never strays far from the incumbent, its *cumulative* cost
//! on an ad-hoc workload stays low (the Table 1 "adaptive" strength
//! quantified by experiment C5).

use autotune_core::{
    Configuration, History, Observation, Recommendation, Tuner, TunerFamily, TuningContext,
};
use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Debug, Clone, PartialEq)]
enum Mode {
    /// Measuring the incumbent configuration.
    Baseline,
    /// Trialling a candidate change.
    Trial {
        candidate: Configuration,
        knob: usize,
    },
}

/// The COLT online tuner.
#[derive(Debug)]
pub struct ColtTuner {
    /// Seconds one reconfiguration costs (gain must exceed this).
    pub reconfig_cost_secs: f64,
    /// Perturbation radius in unit-cube coordinates.
    pub step: f64,
    current: Option<Configuration>,
    current_runtime: Option<f64>,
    mode: Mode,
    knob_cursor: usize,
    /// Number of adopted changes (for reporting).
    pub adopted: usize,
    /// Number of reverted trials.
    pub reverted: usize,
}

impl Default for ColtTuner {
    fn default() -> Self {
        ColtTuner {
            reconfig_cost_secs: 0.0,
            step: 0.25,
            current: None,
            current_runtime: None,
            mode: Mode::Baseline,
            knob_cursor: 0,
            adopted: 0,
            reverted: 0,
        }
    }
}

impl ColtTuner {
    /// Creates the tuner with zero reconfiguration cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the reconfiguration cost (builder style).
    pub fn with_reconfig_cost(mut self, secs: f64) -> Self {
        self.reconfig_cost_secs = secs;
        self
    }

    /// Sets the perturbation radius in unit-cube coordinates (builder
    /// style).
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step;
        self
    }
}

impl Tuner for ColtTuner {
    fn name(&self) -> &str {
        "colt"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::Adaptive
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let current = self
            .current
            .get_or_insert_with(|| ctx.space.default_config())
            .clone();
        match (&self.mode, self.current_runtime) {
            (Mode::Baseline, None) => current, // measure the incumbent first
            (Mode::Baseline, Some(_)) => {
                // Build a one-knob candidate.
                let dim = ctx.space.dim();
                let knob = self.knob_cursor % dim;
                self.knob_cursor += 1;
                let mut point = ctx.space.encode(&current);
                let delta = if rng.random_range(0.0..1.0) < 0.5 {
                    self.step
                } else {
                    -self.step
                };
                point[knob] = (point[knob] + delta).clamp(0.0, 1.0);
                let candidate = ctx.space.decode(&point);
                self.mode = Mode::Trial {
                    candidate: candidate.clone(),
                    knob,
                };
                candidate
            }
            (Mode::Trial { candidate, .. }, _) => candidate.clone(),
        }
    }

    fn observe(&mut self, obs: &Observation) {
        match &self.mode {
            Mode::Baseline => {
                self.current_runtime = Some(obs.runtime_secs);
            }
            Mode::Trial { candidate, .. } => {
                let baseline = self.current_runtime.unwrap_or(f64::INFINITY);
                let gain = baseline - obs.runtime_secs;
                if !obs.failed && gain > self.reconfig_cost_secs {
                    self.current = Some(candidate.clone());
                    self.current_runtime = Some(obs.runtime_secs);
                    self.adopted += 1;
                } else {
                    self.reverted += 1;
                }
                self.mode = Mode::Baseline;
            }
        }
    }

    fn recommend(&self, ctx: &TuningContext, _history: &History) -> Recommendation {
        let config = self
            .current
            .clone()
            .unwrap_or_else(|| ctx.space.default_config());
        Recommendation {
            config,
            expected_runtime: self.current_runtime,
            rationale: format!(
                "online cost-vs-gain tuning: {} changes adopted, {} reverted",
                self.adopted, self.reverted
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, Objective, ParamSpec};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;

    fn bowl() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(
            (0..3)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.95, ""))
                .collect(),
        );
        FunctionObjective::new(space, "bowl", |x| {
            x.iter().map(|v| (v - 0.2) * (v - 0.2)).sum::<f64>() + 1.0
        })
    }

    #[test]
    fn walks_downhill_online() {
        let mut obj = bowl();
        let mut t = ColtTuner::new();
        let out = tune(&mut obj, &mut t, 60, 1);
        assert!(t.adopted > 3, "adopted={}", t.adopted);
        let first = out.history.all()[0].runtime_secs;
        let last_avg: f64 = out.history.all()[50..]
            .iter()
            .map(|o| o.runtime_secs)
            .sum::<f64>()
            / 10.0;
        assert!(last_avg < first * 0.8, "first={first} last_avg={last_avg}");
    }

    #[test]
    fn cumulative_cost_stays_near_incumbent() {
        // The adaptive property: even during tuning, runs are never much
        // worse than the starting configuration (compare to random search,
        // which routinely samples catastrophic configs).
        let mut obj = bowl();
        let mut t = ColtTuner::new();
        let out = tune(&mut obj, &mut t, 40, 2);
        let first = out.history.all()[0].runtime_secs;
        let worst = out
            .history
            .runtimes()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max);
        assert!(
            worst < first * 1.25,
            "online trial strayed too far: worst={worst} first={first}"
        );
    }

    #[test]
    fn reconfig_cost_gates_adoption() {
        let mut obj = bowl();
        // Gains on the bowl are < 0.5 per step; a huge cost blocks all.
        let mut t = ColtTuner::new().with_reconfig_cost(10.0);
        let _ = tune(&mut obj, &mut t, 30, 3);
        assert_eq!(t.adopted, 0);
        assert!(t.reverted > 0);
    }

    #[test]
    fn improves_dbms_online() {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut t = ColtTuner::new();
        let out = tune(&mut sim, &mut t, 50, 4);
        let rec = out.recommendation;
        let final_rt = sim.simulate(&rec.config).runtime_secs;
        assert!(
            final_rt < default_rt,
            "default={default_rt} colt={final_rt}"
        );
    }

    #[test]
    fn failed_trials_never_adopted() {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut t = ColtTuner {
            step: 0.6, // aggressive steps that can hit the OOM cliff
            ..ColtTuner::new()
        };
        let out = tune(&mut sim, &mut t, 40, 5);
        // The incumbent must always be a non-failing configuration.
        let rec = out.recommendation;
        assert!(!sim.simulate(&rec.config).failed);
    }
}
