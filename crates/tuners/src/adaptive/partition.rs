//! Dynamic configuration of partitioning in Spark applications
//! (Gounaris, Kougka, Tous, Montes & Torres, IEEE TPDS 2017).
//!
//! Their observation: `spark.sql.shuffle.partitions` (and
//! `default.parallelism`) is the knob that matters most *per stage*, and
//! the right value can be found online by reacting to spill volume and
//! scheduling overhead between consecutive runs/batches of the same
//! application — no model required.

use autotune_core::{
    Configuration, History, Observation, ParamValue, Recommendation, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// Online shuffle-partition controller for Spark.
#[derive(Debug)]
pub struct DynamicPartitionTuner {
    /// Grow factor when spills are observed.
    pub grow: f64,
    /// Shrink factor when scheduling overhead dominates.
    pub shrink: f64,
    /// Fraction of runtime spent on task overhead that triggers shrinking.
    pub overhead_threshold: f64,
    current: Option<Configuration>,
    last: Option<Observation>,
    /// Adjustment log.
    pub actions: Vec<String>,
}

impl Default for DynamicPartitionTuner {
    fn default() -> Self {
        DynamicPartitionTuner {
            grow: 1.5,
            shrink: 0.6,
            overhead_threshold: 0.15,
            current: None,
            last: None,
            actions: Vec::new(),
        }
    }
}

impl DynamicPartitionTuner {
    /// Creates the controller.
    pub fn new() -> Self {
        Self::default()
    }

    fn scale_partitions(
        space: &autotune_core::ConfigSpace,
        config: &mut Configuration,
        factor: f64,
    ) {
        for knob in ["shuffle_partitions", "default_parallelism"] {
            if let (Some(ParamValue::Int(v)), Some(spec)) =
                (config.get(knob).cloned(), space.spec(knob))
            {
                if let autotune_core::ParamDomain::Int { min, max, .. } = spec.domain {
                    config.set(
                        knob,
                        ParamValue::Int(((v as f64 * factor).round() as i64).clamp(min, max)),
                    );
                }
            }
        }
    }
}

impl Tuner for DynamicPartitionTuner {
    fn name(&self) -> &str {
        "dynamic-partitioning"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::Adaptive
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        let mut config = self
            .current
            .clone()
            .unwrap_or_else(|| ctx.space.default_config());
        if let Some(last) = &self.last {
            let spilled = last.metrics.get("spilled_mb").copied().unwrap_or(0.0);
            let overhead = last
                .metrics
                .get("task_overhead_secs")
                .copied()
                .unwrap_or(0.0);
            let overhead_frac = overhead / last.runtime_secs.max(1e-9);
            if spilled > 1.0 {
                Self::scale_partitions(&ctx.space, &mut config, self.grow);
                self.actions
                    .push(format!("grow partitions: {spilled:.0} MB spilled"));
            } else if overhead_frac > self.overhead_threshold {
                Self::scale_partitions(&ctx.space, &mut config, self.shrink);
                self.actions.push(format!(
                    "shrink partitions: {:.0}% scheduling overhead",
                    overhead_frac * 100.0
                ));
            }
        }
        self.current = Some(config.clone());
        config
    }

    fn observe(&mut self, obs: &Observation) {
        // Revert on regression.
        if let Some(prev) = &self.last {
            if obs.failed || obs.runtime_secs > prev.runtime_secs * 1.15 {
                self.current = Some(prev.config.clone());
                self.actions.push("rollback".into());
                return;
            }
        }
        self.last = Some(obs.clone());
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        Recommendation {
            config: self
                .current
                .clone()
                .unwrap_or_else(|| ctx.space.default_config()),
            expected_runtime: history.best().map(|o| o.runtime_secs),
            rationale: format!("dynamic partitioning: {} adjustments", self.actions.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::cluster::{ClusterSpec, NodeSpec};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::spark::{SparkApp, SparkSimulator};

    fn streaming_sim() -> SparkSimulator {
        SparkSimulator::new(
            ClusterSpec::homogeneous(4, NodeSpec::default()),
            SparkApp::streaming(64.0, 20),
        )
        .with_noise(NoiseModel::none())
    }

    #[test]
    fn shrinks_partitions_for_tiny_batches() {
        // Streaming micro-batches with the 200-partition default: task
        // overhead dominates, the controller should shrink.
        let mut sim = streaming_sim();
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut t = DynamicPartitionTuner::new();
        let out = tune(&mut sim, &mut t, 12, 1);
        let final_cfg = &out.recommendation.config;
        assert!(
            final_cfg.i64("shuffle_partitions") < 200,
            "should shrink from 200: {}",
            final_cfg.i64("shuffle_partitions")
        );
        let final_rt = sim.simulate(final_cfg).runtime_secs;
        assert!(
            final_rt < default_rt,
            "default={default_rt} tuned={final_rt}"
        );
        assert!(t.actions.iter().any(|a| a.contains("shrink")));
    }

    #[test]
    fn grows_partitions_when_spilling() {
        // Big sort with few partitions on small executors → spills.
        let mut sim = SparkSimulator::new(
            ClusterSpec::homogeneous(8, NodeSpec::default()),
            SparkApp::sort(65_536.0),
        )
        .with_noise(NoiseModel::none());
        let mut start = sim.space().default_config();
        start.set("shuffle_partitions", ParamValue::Int(8));
        let spilling = sim.simulate(&start);
        assert!(spilling.metrics["spilled_mb"] > 0.0, "premise: spills");

        let mut t = DynamicPartitionTuner::new();
        t.current = Some(start.clone());
        let out = tune(&mut sim, &mut t, 10, 2);
        let final_cfg = &out.recommendation.config;
        assert!(
            final_cfg.i64("shuffle_partitions") > 8,
            "should grow from 8: {}",
            final_cfg.i64("shuffle_partitions")
        );
        assert!(t.actions.iter().any(|a| a.contains("grow")));
    }

    #[test]
    fn stabilizes_rather_than_oscillating() {
        let mut sim = streaming_sim();
        let mut t = DynamicPartitionTuner::new();
        let out = tune(&mut sim, &mut t, 25, 3);
        // The last few configs should be identical (converged).
        let tail: Vec<i64> = out.history.all()[20..]
            .iter()
            .map(|o| o.config.i64("shuffle_partitions"))
            .collect();
        let first = tail[0];
        assert!(
            tail.iter().all(|&v| (v - first).abs() <= first / 3 + 1),
            "still oscillating: {tail:?}"
        );
    }
}
