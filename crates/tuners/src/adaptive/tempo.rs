//! Tempo-style robust, self-tuning resource management for multi-tenant
//! databases (Tan & Babu, PVLDB 9(10), 2016 — reference \[23\]).
//!
//! Tempo's contract: given per-tenant SLOs, continuously shift the shared
//! resource (memory here) toward the tenant with the worst normalized SLO
//! ratio, taking it from the tenant with the most headroom — a max-min
//! feedback controller that provably converges to the fair point and, by
//! moving in small verified steps, never makes a configuration *much*
//! worse than the incumbent (the "robust" part: it avoids the error-prone
//! settings §2.2(i) warns about).

use autotune_core::{
    Configuration, History, Observation, ParamValue, Recommendation, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// The Tempo controller over `mem_share_*` knobs.
#[derive(Debug)]
pub struct TempoTuner {
    /// Fraction of the donor's share moved per epoch.
    pub step: f64,
    current: Option<Configuration>,
    last: Option<Observation>,
    /// Number of reallocations performed.
    pub reallocations: usize,
}

impl Default for TempoTuner {
    fn default() -> Self {
        TempoTuner {
            step: 0.25,
            current: None,
            last: None,
            reallocations: 0,
        }
    }
}

impl TempoTuner {
    /// Creates the controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the fraction of the donor's share moved per epoch (builder
    /// style).
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step;
        self
    }

    /// The `slo_ratio_*` metrics of an observation as (tenant, ratio).
    fn ratios(obs: &Observation) -> Vec<(String, f64)> {
        obs.metrics
            .iter()
            .filter_map(|(k, v)| k.strip_prefix("slo_ratio_").map(|t| (t.to_string(), *v)))
            .collect()
    }
}

impl Tuner for TempoTuner {
    fn name(&self) -> &str {
        "tempo"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::Adaptive
    }

    fn min_history(&self) -> usize {
        1
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        let mut config = self
            .current
            .clone()
            .unwrap_or_else(|| ctx.space.default_config());
        let Some(last) = &self.last else {
            self.current = Some(config.clone());
            return config; // epoch 0: observe the status quo
        };
        let ratios = Self::ratios(last);
        if ratios.len() < 2 {
            return config; // not a multi-tenant objective
        }
        let Some((needy, needy_ratio)) = ratios.iter().max_by(|a, b| a.1.total_cmp(&b.1)).cloned()
        else {
            return config;
        };
        let Some((donor, donor_ratio)) = ratios.iter().min_by(|a, b| a.1.total_cmp(&b.1)).cloned()
        else {
            return config;
        };
        // Converged: everyone within 5% of the same normalized ratio.
        if needy_ratio <= donor_ratio * 1.05 {
            self.current = Some(config.clone());
            return config;
        }
        let donor_knob = format!("mem_share_{donor}");
        let needy_knob = format!("mem_share_{needy}");
        let donor_share = config.f64(&donor_knob);
        let needy_share = config.f64(&needy_knob);
        let moved = donor_share * self.step;
        let clamp = |v: f64| v.clamp(0.05, 1.0);
        config.set(&donor_knob, ParamValue::Float(clamp(donor_share - moved)));
        config.set(&needy_knob, ParamValue::Float(clamp(needy_share + moved)));
        self.reallocations += 1;
        self.current = Some(config.clone());
        config
    }

    fn observe(&mut self, obs: &Observation) {
        // Robustness: revert the move if the worst ratio got worse.
        if let Some(prev) = &self.last {
            let prev_worst = prev.metrics.get("worst_slo_ratio").copied();
            let new_worst = obs.metrics.get("worst_slo_ratio").copied();
            if let (Some(p), Some(n)) = (prev_worst, new_worst) {
                if n > p * 1.02 {
                    self.current = Some(prev.config.clone());
                    return;
                }
            }
        }
        self.last = Some(obs.clone());
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        Recommendation {
            config: self
                .current
                .clone()
                .unwrap_or_else(|| ctx.space.default_config()),
            expected_runtime: history.best().map(|o| o.runtime_secs),
            rationale: format!("max-min SLO feedback: {} reallocations", self.reallocations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::multitenant::MultiTenantDbms;
    use autotune_sim::NoiseModel;

    fn host() -> MultiTenantDbms {
        MultiTenantDbms::standard_three_tenants().with_noise(NoiseModel::none())
    }

    #[test]
    fn tempo_meets_slos_that_equal_shares_miss() {
        let mut mt = host();
        let equal_violation = mt.worst_violation(&mt.space().default_config());
        assert!(equal_violation > 1.0, "premise: equal shares infeasible");
        let mut tempo = TempoTuner::new();
        let out = tune(&mut mt, &mut tempo, 25, 1);
        let final_violation = mt.worst_violation(&out.recommendation.config);
        assert!(
            final_violation < 1.0,
            "Tempo should reach SLO feasibility: {equal_violation:.2} -> {final_violation:.2}"
        );
        assert!(tempo.reallocations > 0);
    }

    #[test]
    fn tempo_beats_random_search_at_equal_budget() {
        let budget = 20;
        let mut mt = host();
        let mut tempo = TempoTuner::new();
        let t = tune(&mut mt, &mut tempo, budget, 2);
        let tempo_v = host().worst_violation(&t.recommendation.config);

        let mut mt = host();
        let mut random = crate::baselines::RandomSearchTuner;
        let r = tune(&mut mt, &mut random, budget, 2);
        let rand_v = host().worst_violation(&r.best.unwrap().config);
        assert!(
            tempo_v <= rand_v * 1.05,
            "tempo {tempo_v:.3} vs random {rand_v:.3}"
        );
    }

    #[test]
    fn converges_and_stops_reallocating() {
        let mut mt = host();
        let mut tempo = TempoTuner::new();
        let _ = tune(&mut mt, &mut tempo, 40, 3);
        let after_long = tempo.reallocations;
        // Reallocation count must be well below the epoch count once the
        // ratios equalize (it stops moving memory at the fixed point).
        assert!(
            after_long < 35,
            "still reallocating every epoch: {after_long}"
        );
    }

    #[test]
    fn noop_on_single_objective_systems() {
        use autotune_sim::DbmsSimulator;
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut tempo = TempoTuner::new();
        let out = tune(&mut sim, &mut tempo, 5, 4);
        // No slo_ratio metrics → Tempo holds the defaults.
        assert_eq!(out.recommendation.config, sim.space().default_config());
    }
}
