//! Online adaptive memory management — STMM's *online* mode: react to the
//! live metric feed (hit ratios, spills, overcommit) each epoch instead of
//! planning from a model. The feedback rules mirror what DB2's memory
//! tuner does between intervals.

use autotune_core::{
    Configuration, History, Observation, ParamValue, Recommendation, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// Feedback-driven memory controller for the simulated DBMS.
#[derive(Debug, Default)]
pub struct OnlineMemoryTuner {
    current: Option<Configuration>,
    last: Option<Observation>,
    /// Adjustment log for reporting.
    pub actions: Vec<String>,
}

impl OnlineMemoryTuner {
    /// Creates the controller.
    pub fn new() -> Self {
        Self::default()
    }

    fn scale_knob(
        space: &autotune_core::ConfigSpace,
        config: &mut Configuration,
        knob: &str,
        factor: f64,
    ) {
        if let (Some(ParamValue::Int(v)), Some(spec)) =
            (config.get(knob).cloned(), space.spec(knob))
        {
            if let autotune_core::ParamDomain::Int { min, max, .. } = spec.domain {
                config.set(
                    knob,
                    ParamValue::Int(((v as f64 * factor).round() as i64).clamp(min, max)),
                );
            }
        }
    }
}

impl Tuner for OnlineMemoryTuner {
    fn name(&self) -> &str {
        "online-memory"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::Adaptive
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        let mut config = self
            .current
            .clone()
            .unwrap_or_else(|| ctx.space.default_config());
        let Some(last) = &self.last else {
            self.current = Some(config.clone());
            return config; // first epoch: observe the status quo
        };
        let get = |k: &str| last.metrics.get(k).copied().unwrap_or(0.0);

        // Priority 1: never swap. Shrink the biggest consumers.
        if get("mem_overcommit") > 0.95 {
            Self::scale_knob(&ctx.space, &mut config, "shared_buffers_mb", 0.7);
            Self::scale_knob(&ctx.space, &mut config, "work_mem_mb", 0.7);
            self.actions.push("shrink: near overcommit".into());
        } else if get("sort_spills") + get("hash_spills") > 0.0 {
            // Priority 2: stop spilling.
            Self::scale_knob(&ctx.space, &mut config, "work_mem_mb", 2.0);
            self.actions.push("grow work_mem: spills observed".into());
        } else if get("buffer_hit_ratio") < 0.97 {
            // Priority 3: feed the buffer pool.
            Self::scale_knob(&ctx.space, &mut config, "shared_buffers_mb", 1.5);
            self.actions.push("grow shared_buffers: misses".into());
        } else if get("checkpoint_burst_secs") > last.runtime_secs * 0.01 {
            Self::scale_knob(&ctx.space, &mut config, "checkpoint_timeout_s", 1.5);
            self.actions.push("stretch checkpoints: bursts".into());
        }
        self.current = Some(config.clone());
        config
    }

    fn observe(&mut self, obs: &Observation) {
        // Roll back if the last adjustment made things worse or failed.
        if let Some(prev) = &self.last {
            if obs.failed || obs.runtime_secs > prev.runtime_secs * 1.1 {
                self.current = Some(prev.config.clone());
                self.actions.push("rollback".into());
                return; // keep prev as the reference epoch
            }
        }
        self.last = Some(obs.clone());
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let config = self
            .current
            .clone()
            .unwrap_or_else(|| ctx.space.default_config());
        Recommendation {
            config,
            expected_runtime: history.best().map(|o| o.runtime_secs),
            rationale: format!("online memory feedback: {} actions", self.actions.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;

    #[test]
    fn converges_to_faster_memory_config() {
        for mk in [DbmsSimulator::oltp_default, DbmsSimulator::olap_default] {
            let mut sim = mk().with_noise(NoiseModel::none());
            let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
            let mut t = OnlineMemoryTuner::new();
            let out = tune(&mut sim, &mut t, 15, 1);
            let final_rt = sim.simulate(&out.recommendation.config).runtime_secs;
            assert!(
                final_rt < default_rt * 0.75,
                "{}: default={default_rt} online={final_rt}",
                sim.workload.name
            );
        }
    }

    #[test]
    fn never_ends_in_overcommit() {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut t = OnlineMemoryTuner::new();
        let out = tune(&mut sim, &mut t, 25, 2);
        let run = sim.simulate(&out.recommendation.config);
        assert!(!run.failed);
        assert!(run.metrics["mem_overcommit"] < 1.05);
    }

    #[test]
    fn actions_are_recorded() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let mut t = OnlineMemoryTuner::new();
        let _ = tune(&mut sim, &mut t, 10, 3);
        assert!(!t.actions.is_empty());
        assert!(t.actions.iter().any(|a| a.contains("work_mem")));
    }
}
