//! mrMoulder-style recommendation-based adaptive tuning (Cai, Qi, Wei, Wu
//! & Li, FGCS 2019 — reference \[4\] of the tutorial).
//!
//! mrMoulder keeps a repository of previously tuned jobs keyed by a cheap
//! *job signature*; a new job starts from the recommendation of its most
//! similar predecessor (instead of vendor defaults) and then refines the
//! configuration adaptively with low-risk one-knob trials while the job
//! stream runs. After the session the refined configuration is folded
//! back into the repository — the system "moulds" itself to the site's
//! workload mix over time.

use autotune_core::{
    Configuration, History, Observation, Recommendation, SystemProfile, Tuner, TunerFamily,
    TuningContext,
};
use autotune_math::matrix::dist2;
use rand::rngs::StdRng;
use rand::RngExt;

/// A cheap workload fingerprint computed from the deployment profile and
/// the first probe run's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSignature(Vec<f64>);

impl JobSignature {
    /// Builds a signature from the profile and an optional probe run.
    pub fn new(profile: &SystemProfile, probe: Option<&Observation>) -> Self {
        let mut v = vec![
            (profile.input_mb.max(1.0)).log10(),
            profile.nodes as f64,
            profile.cores_per_node as f64,
        ];
        if let Some(obs) = probe {
            let m = |k: &str| obs.metrics.get(k).copied().unwrap_or(0.0);
            // Normalized data-flow shape, robust across systems.
            v.push((m("shuffle_mb") / profile.input_mb.max(1.0)).min(5.0));
            v.push(m("skew_factor").min(5.0));
            v.push((obs.runtime_secs.max(1.0)).log10());
        } else {
            v.extend([0.0, 0.0, 0.0]);
        }
        JobSignature(v)
    }

    /// Squared distance to another signature.
    pub fn distance2(&self, other: &JobSignature) -> f64 {
        dist2(&self.0, &other.0)
    }
}

/// A remembered tuning outcome.
#[derive(Debug, Clone)]
pub struct RepositoryEntry {
    /// Job signature.
    pub signature: JobSignature,
    /// The configuration that worked.
    pub config: Configuration,
}

/// Shared recommendation repository (persisted across sessions by the
/// caller).
#[derive(Debug, Clone, Default)]
pub struct RecommendationRepository {
    entries: Vec<RepositoryEntry>,
}

impl RecommendationRepository {
    /// Empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an outcome.
    pub fn remember(&mut self, signature: JobSignature, config: Configuration) {
        self.entries.push(RepositoryEntry { signature, config });
    }

    /// Number of remembered jobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Nearest remembered configuration, if any.
    pub fn recommend(&self, signature: &JobSignature) -> Option<&Configuration> {
        self.entries
            .iter()
            .min_by(|a, b| {
                a.signature
                    .distance2(signature)
                    .total_cmp(&b.signature.distance2(signature))
            })
            .map(|e| &e.config)
    }
}

#[derive(Debug, PartialEq)]
enum Phase {
    Probe,
    Adopt,
    Refine,
}

/// The mrMoulder tuner.
#[derive(Debug)]
pub struct MrMoulderTuner {
    /// Recommendation repository (pass a shared one between sessions).
    pub repository: RecommendationRepository,
    /// Refinement step size in unit-cube coordinates.
    pub step: f64,
    phase: Phase,
    signature: Option<JobSignature>,
    current: Option<Configuration>,
    current_runtime: Option<f64>,
    trial: Option<Configuration>,
    knob_cursor: usize,
    /// Whether the recommendation came from the repository.
    pub recommended_from_repo: bool,
}

impl MrMoulderTuner {
    /// Creates the tuner over a repository.
    pub fn new(repository: RecommendationRepository) -> Self {
        MrMoulderTuner {
            repository,
            step: 0.15,
            phase: Phase::Probe,
            signature: None,
            current: None,
            current_runtime: None,
            trial: None,
            knob_cursor: 0,
            recommended_from_repo: false,
        }
    }

    /// The session's signature + refined config, for folding back into a
    /// shared repository.
    pub fn export(&self) -> Option<(JobSignature, Configuration)> {
        match (&self.signature, &self.current) {
            (Some(s), Some(c)) => Some((s.clone(), c.clone())),
            _ => None,
        }
    }
}

impl Tuner for MrMoulderTuner {
    fn name(&self) -> &str {
        "mrmoulder"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::Adaptive
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        match self.phase {
            Phase::Probe => {
                // Capture the profile half of the signature now; the probe
                // half is appended when the run's metrics arrive.
                self.signature = Some(JobSignature::new(&ctx.profile, None));
                ctx.space.default_config()
            }
            Phase::Adopt => {
                let sig = self
                    .signature
                    .clone()
                    .unwrap_or_else(|| JobSignature::new(&ctx.profile, None));
                let rec = self.repository.recommend(&sig).cloned();
                self.recommended_from_repo = rec.is_some();
                let config = rec
                    .map(|c| ctx.space.complete_with_defaults(&c))
                    .unwrap_or_else(|| ctx.space.default_config());
                self.current = Some(config.clone());
                config
            }
            Phase::Refine => {
                let current = self
                    .current
                    .clone()
                    .unwrap_or_else(|| ctx.space.default_config());
                let dim = ctx.space.dim();
                let knob = self.knob_cursor % dim;
                self.knob_cursor += 1;
                let mut point = ctx.space.encode(&current);
                let delta = if rng.random_range(0.0..1.0) < 0.5 {
                    self.step
                } else {
                    -self.step
                };
                point[knob] = (point[knob] + delta).clamp(0.0, 1.0);
                let trial = ctx.space.decode(&point);
                self.trial = Some(trial.clone());
                trial
            }
        }
    }

    fn observe(&mut self, obs: &Observation) {
        match self.phase {
            Phase::Probe => {
                // Signature needs the probe metrics; profile fields are
                // folded in at propose time via the stored profile-free
                // constructor (we only have the observation here, which is
                // sufficient: the profile part was already appended).
                self.signature = Some(JobSignature(
                    self.signature
                        .take()
                        .map(|s| s.0)
                        .unwrap_or_else(|| vec![0.0; 3])
                        .into_iter()
                        .take(3)
                        .chain([
                            obs.metrics
                                .get("shuffle_mb")
                                .copied()
                                .unwrap_or(0.0)
                                .min(5.0e6)
                                .log10()
                                .max(0.0)
                                / 7.0,
                            obs.metrics
                                .get("skew_factor")
                                .copied()
                                .unwrap_or(0.0)
                                .min(5.0),
                            obs.runtime_secs.max(1.0).log10(),
                        ])
                        .collect(),
                ));
                self.phase = Phase::Adopt;
            }
            Phase::Adopt => {
                self.current_runtime = Some(obs.runtime_secs);
                self.phase = Phase::Refine;
            }
            Phase::Refine => {
                let baseline = self.current_runtime.unwrap_or(f64::INFINITY);
                if !obs.failed && obs.runtime_secs < baseline {
                    self.current = self.trial.take();
                    self.current_runtime = Some(obs.runtime_secs);
                } else {
                    self.trial = None;
                }
            }
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        Recommendation {
            config: self
                .current
                .clone()
                .unwrap_or_else(|| ctx.space.default_config()),
            expected_runtime: self
                .current_runtime
                .or(history.best().map(|o| o.runtime_secs)),
            rationale: format!(
                "recommendation {} + {} refinement epochs",
                if self.recommended_from_repo {
                    "from repository twin"
                } else {
                    "unavailable (cold start: defaults)"
                },
                history.len().saturating_sub(2)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::tune;
    use autotune_sim::cluster::ClusterSpec;
    use autotune_sim::hadoop::{HadoopJob, HadoopSimulator};
    use autotune_sim::noise::NoiseModel;

    fn sim(input_mb: f64) -> HadoopSimulator {
        HadoopSimulator::new(
            ClusterSpec::homogeneous(8, autotune_sim::NodeSpec::default()),
            HadoopJob::terasort(input_mb),
        )
        .with_noise(NoiseModel::none())
    }

    /// Runs one session and folds the outcome into the repository.
    fn session(
        repo: RecommendationRepository,
        input_mb: f64,
        budget: usize,
    ) -> (f64, RecommendationRepository, bool) {
        let mut s = sim(input_mb);
        let mut t = MrMoulderTuner::new(repo);
        let out = tune(&mut s, &mut t, budget, 3);
        let final_rt = s.simulate(&out.recommendation.config).runtime_secs;
        let mut repo = t.repository.clone();
        if let Some((sig, cfg)) = t.export() {
            repo.remember(sig, cfg);
        }
        (final_rt, repo, t.recommended_from_repo)
    }

    #[test]
    fn repository_transfer_beats_cold_start_at_tiny_budget() {
        // Session 1 (cold, generous budget) seeds the repository.
        let (_, repo, from_repo) = session(RecommendationRepository::new(), 32_768.0, 40);
        assert!(!from_repo, "first session has nothing to recommend");
        assert_eq!(repo.len(), 1);

        // Session 2: similar job, tiny budget, warm repository.
        let (warm_rt, _, used_repo) = session(repo, 24_576.0, 4);
        assert!(used_repo);

        // Control: same tiny budget, cold.
        let (cold_rt, _, _) = session(RecommendationRepository::new(), 24_576.0, 4);
        assert!(
            warm_rt < cold_rt * 0.6,
            "warm start {warm_rt}s should crush cold start {cold_rt}s"
        );
    }

    #[test]
    fn refinement_never_regresses_the_incumbent() {
        let (_, repo, _) = session(RecommendationRepository::new(), 32_768.0, 30);
        let mut s = sim(32_768.0);
        let mut t = MrMoulderTuner::new(repo);
        let out = tune(&mut s, &mut t, 20, 9);
        let adopted_rt = out.history.all()[1].runtime_secs; // adoption epoch
        let final_rt = s.simulate(&out.recommendation.config).runtime_secs;
        assert!(final_rt <= adopted_rt * 1.001);
    }

    #[test]
    fn signature_distance_orders_similarity() {
        let p1 = SystemProfile {
            input_mb: 32_768.0,
            ..SystemProfile::default()
        };
        let p2 = SystemProfile {
            input_mb: 40_000.0,
            ..SystemProfile::default()
        };
        let p3 = SystemProfile {
            input_mb: 1_000.0,
            nodes: 32,
            ..SystemProfile::default()
        };
        let s1 = JobSignature::new(&p1, None);
        let s2 = JobSignature::new(&p2, None);
        let s3 = JobSignature::new(&p3, None);
        assert!(s1.distance2(&s2) < s1.distance2(&s3));
    }

    #[test]
    fn empty_repository_recommends_nothing() {
        let repo = RecommendationRepository::new();
        assert!(repo.is_empty());
        let sig = JobSignature::new(&SystemProfile::default(), None);
        assert!(repo.recommend(&sig).is_none());
    }
}
