//! Shared helpers for tuner implementations: candidate-pool generation,
//! penalized objective extraction from history, and the incremental
//! Gaussian-process surrogate cache shared by iTuned and OtterTune.

use autotune_core::{ConfigSpace, History, SurrogateStats};
use autotune_math::batch::{argmax_first, chunked_scores};
use autotune_math::surrogate::{Surrogate, SurrogateConfig, SurrogateModel};
use rand::rngs::StdRng;
use rand::RngExt;

/// A Gaussian-process surrogate kept alive across proposals.
///
/// Refitting the model from scratch costs a full hyper-parameter search
/// per proposal. The cache instead re-searches hyper-parameters only every
/// `hyper_interval` observations and folds intermediate observations in
/// with [`SurrogateModel::update`] (rank-1 Cholesky extension for the
/// exact/SoD backends, a rank-1 `A`-update for Nyström).
#[derive(Debug)]
pub struct GpCache {
    /// The live surrogate (exact, subset-of-data, or Nyström).
    pub gp: SurrogateModel,
    /// Training-set size the last full hyper-parameter search saw.
    pub last_search: usize,
    /// Full hyper-parameter-search fits performed over the tuner's
    /// lifetime (carried across cache replacements for observability).
    pub fits: u64,
}

impl GpCache {
    /// Wraps a freshly fitted surrogate whose hyper-parameters were
    /// searched over `n` observations; `fits` is the lifetime full-fit
    /// count including this one.
    pub fn new(gp: SurrogateModel, n: usize, fits: u64) -> Self {
        GpCache {
            gp,
            last_search: n,
            fits,
        }
    }

    /// Tries to bring the cached surrogate up to date with an append-only
    /// training set of `xs.len()` rows by incremental updates alone.
    /// Returns `false` when a full hyper-parameter re-search is due
    /// instead: the training set shrank or changed shape (new session),
    /// the re-search interval elapsed, the configured backend changed
    /// (the `auto` policy crossing its threshold), or a
    /// numerically-degenerate update failed.
    pub fn try_advance(
        &mut self,
        config: &SurrogateConfig,
        xs: &[Vec<f64>],
        ys: &[f64],
        hyper_interval: usize,
    ) -> bool {
        let n = xs.len();
        let m = self.gp.observed_inputs().len();
        if m > n || n - self.last_search >= hyper_interval.max(1) {
            return false;
        }
        if !self.gp.matches(config, n) {
            return false;
        }
        if self.gp.observed_inputs().first().map(Vec::len) != xs.first().map(Vec::len) {
            return false;
        }
        // Append-only sanity check: the latest row the cache has seen must
        // still be where it was (a reused tuner on a fresh history refits).
        if m > 0 && self.gp.observed_inputs()[m - 1] != xs[m - 1] {
            return false;
        }
        for i in m..n {
            if self.gp.update(xs[i].clone(), ys[i]).is_err() {
                return false;
            }
        }
        true
    }

    /// Observability snapshot of the cached surrogate.
    pub fn stats(&self) -> SurrogateStats {
        SurrogateStats {
            kind: self.gp.kind_label().to_string(),
            observed: self.gp.observed_len(),
            active: self.gp.active_len(),
            fits: self.fits,
        }
    }
}

/// Scores a candidate pool with batched Expected Improvement and returns
/// the index of the best candidate (first index wins ties), or `None` for
/// an empty pool.
///
/// The pool goes through [`Surrogate::expected_improvement_batch`] in
/// fixed-size chunks — one cross-covariance and one multi-RHS solve per
/// chunk instead of a triangular solve per point — optionally spread over
/// worker threads per `AUTOTUNE_THREADS` (see `autotune_math::batch`).
/// For the exact backend, scores and pick are bit-identical to the
/// historical per-point `expected_improvement` loop at any thread count.
pub fn argmax_ei<S: Surrogate + Sync>(
    gp: &S,
    pool: &[Vec<f64>],
    y_best: f64,
    xi: f64,
) -> Option<usize> {
    let scores = chunked_scores(pool, |chunk| {
        gp.expected_improvement_batch(chunk, y_best, xi)
    });
    argmax_first(&scores)
}

/// Generates a candidate pool in the unit cube: uniform random points plus
/// Gaussian-ish perturbations of `anchors` (typically the best configs so
/// far). Standard acquisition-maximization pool for iTuned/OtterTune.
pub fn candidate_pool(
    dim: usize,
    n_random: usize,
    anchors: &[Vec<f64>],
    per_anchor: usize,
    radius: f64,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut pool = Vec::with_capacity(n_random + anchors.len() * per_anchor);
    for _ in 0..n_random {
        pool.push((0..dim).map(|_| rng.random_range(0.0..1.0)).collect());
    }
    for anchor in anchors {
        for _ in 0..per_anchor {
            pool.push(
                anchor
                    .iter()
                    .map(|&v| (v + rng.random_range(-radius..radius)).clamp(0.0, 1.0))
                    .collect(),
            );
        }
    }
    pool
}

/// Unit-cube encodings of the `k` best (lowest-runtime) observations.
pub fn best_anchors(history: &History, space: &ConfigSpace, k: usize) -> Vec<Vec<f64>> {
    let mut obs: Vec<_> = history.all().iter().collect();
    obs.sort_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
    obs.iter()
        .take(k)
        .map(|o| space.encode(&o.config))
        .collect()
}

/// Runtimes with failures inflated so models learn to avoid them
/// (a failed run's measured runtime already includes the penalty, but we
/// additionally guard against zero-runtime artifacts).
pub fn penalized_runtimes(history: &History) -> Vec<f64> {
    history
        .all()
        .iter()
        .map(|o| {
            if o.failed {
                o.runtime_secs.max(1e-6) * 1.5
            } else {
                o.runtime_secs.max(1e-6)
            }
        })
        .collect()
}

/// Log-transformed penalized runtimes — GP/Lasso targets are far better
/// behaved in log space because runtimes span orders of magnitude.
pub fn log_runtimes(history: &History) -> Vec<f64> {
    penalized_runtimes(history)
        .into_iter()
        .map(|r| r.ln())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{Observation, ParamSpec};
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::float("x", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("y", 0.0, 1.0, 0.5, ""),
        ])
    }

    #[test]
    fn pool_size_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let anchors = vec![vec![0.9, 0.1]];
        let pool = candidate_pool(2, 10, &anchors, 5, 0.2, &mut rng);
        assert_eq!(pool.len(), 15);
        for p in &pool {
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn anchors_are_best_observations() {
        let s = space();
        let mut h = History::new();
        for (u, rt) in [(0.1, 5.0), (0.5, 1.0), (0.9, 3.0)] {
            h.push(Observation::ok(s.decode(&[u, u]), rt));
        }
        let anchors = best_anchors(&h, &s, 2);
        assert_eq!(anchors.len(), 2);
        assert!((anchors[0][0] - 0.5).abs() < 1e-9);
        assert!((anchors[1][0] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn failures_are_penalized() {
        let s = space();
        let mut h = History::new();
        let mut bad = Observation::ok(s.decode(&[0.5, 0.5]), 10.0);
        bad.failed = true;
        h.push(bad);
        h.push(Observation::ok(s.decode(&[0.2, 0.2]), 10.0));
        let rts = penalized_runtimes(&h);
        assert!(rts[0] > rts[1]);
        let lrts = log_runtimes(&h);
        assert!((lrts[1] - 10.0f64.ln()).abs() < 1e-12);
    }
}
