//! Shared helpers for tuner implementations: candidate-pool generation,
//! penalized objective extraction from history, and the incremental
//! Gaussian-process surrogate cache shared by iTuned and OtterTune.

use autotune_core::{
    ConfigSpace, Configuration, Dependency, History, ParamDomain, ParamValue, SurrogateStats,
    SystemConstraints,
};
use autotune_math::batch::{argmax_first, chunked_scores};
use autotune_math::surrogate::{Surrogate, SurrogateConfig, SurrogateModel};
use rand::rngs::StdRng;
use rand::RngExt;

/// A Gaussian-process surrogate kept alive across proposals.
///
/// Refitting the model from scratch costs a full hyper-parameter search
/// per proposal. The cache instead re-searches hyper-parameters only every
/// `hyper_interval` observations and folds intermediate observations in
/// with [`SurrogateModel::update`] (rank-1 Cholesky extension for the
/// exact/SoD backends, a rank-1 `A`-update for Nyström).
#[derive(Debug)]
pub struct GpCache {
    /// The live surrogate (exact, subset-of-data, or Nyström).
    pub gp: SurrogateModel,
    /// Training-set size the last full hyper-parameter search saw.
    pub last_search: usize,
    /// Full hyper-parameter-search fits performed over the tuner's
    /// lifetime (carried across cache replacements for observability).
    pub fits: u64,
}

impl GpCache {
    /// Wraps a freshly fitted surrogate whose hyper-parameters were
    /// searched over `n` observations; `fits` is the lifetime full-fit
    /// count including this one.
    pub fn new(gp: SurrogateModel, n: usize, fits: u64) -> Self {
        GpCache {
            gp,
            last_search: n,
            fits,
        }
    }

    /// Tries to bring the cached surrogate up to date with an append-only
    /// training set of `xs.len()` rows by incremental updates alone.
    /// Returns `false` when a full hyper-parameter re-search is due
    /// instead: the training set shrank or changed shape (new session),
    /// the re-search interval elapsed, the configured backend changed
    /// (the `auto` policy crossing its threshold), or a
    /// numerically-degenerate update failed.
    pub fn try_advance(
        &mut self,
        config: &SurrogateConfig,
        xs: &[Vec<f64>],
        ys: &[f64],
        hyper_interval: usize,
    ) -> bool {
        let n = xs.len();
        let m = self.gp.observed_inputs().len();
        if m > n || n - self.last_search >= hyper_interval.max(1) {
            return false;
        }
        if !self.gp.matches(config, n) {
            return false;
        }
        if self.gp.observed_inputs().first().map(Vec::len) != xs.first().map(Vec::len) {
            return false;
        }
        // Append-only sanity check: the latest row the cache has seen must
        // still be where it was (a reused tuner on a fresh history refits).
        if m > 0 && self.gp.observed_inputs()[m - 1] != xs[m - 1] {
            return false;
        }
        for i in m..n {
            if self.gp.update(xs[i].clone(), ys[i]).is_err() {
                return false;
            }
        }
        true
    }

    /// Observability snapshot of the cached surrogate.
    pub fn stats(&self) -> SurrogateStats {
        SurrogateStats {
            kind: self.gp.kind_label().to_string(),
            observed: self.gp.observed_len(),
            active: self.gp.active_len(),
            fits: self.fits,
        }
    }
}

/// Scores a candidate pool with batched Expected Improvement and returns
/// the index of the best candidate (first index wins ties), or `None` for
/// an empty pool.
///
/// The pool goes through [`Surrogate::expected_improvement_batch`] in
/// fixed-size chunks — one cross-covariance and one multi-RHS solve per
/// chunk instead of a triangular solve per point — optionally spread over
/// worker threads per `AUTOTUNE_THREADS` (see `autotune_math::batch`).
/// For the exact backend, scores and pick are bit-identical to the
/// historical per-point `expected_improvement` loop at any thread count.
pub fn argmax_ei<S: Surrogate + Sync>(
    gp: &S,
    pool: &[Vec<f64>],
    y_best: f64,
    xi: f64,
) -> Option<usize> {
    let scores = chunked_scores(pool, |chunk| {
        gp.expected_improvement_batch(chunk, y_best, xi)
    });
    argmax_first(&scores)
}

/// Generates a candidate pool in the unit cube: uniform random points plus
/// Gaussian-ish perturbations of `anchors` (typically the best configs so
/// far). Standard acquisition-maximization pool for iTuned/OtterTune.
pub fn candidate_pool(
    dim: usize,
    n_random: usize,
    anchors: &[Vec<f64>],
    per_anchor: usize,
    radius: f64,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut pool = Vec::with_capacity(n_random + anchors.len() * per_anchor);
    for _ in 0..n_random {
        pool.push((0..dim).map(|_| rng.random_range(0.0..1.0)).collect());
    }
    for anchor in anchors {
        for _ in 0..per_anchor {
            pool.push(
                anchor
                    .iter()
                    .map(|&v| (v + rng.random_range(-radius..radius)).clamp(0.0, 1.0))
                    .collect(),
            );
        }
    }
    pool
}

/// A pairwise/linear dependency with knob names resolved to dimension
/// indices of one concrete space.
#[derive(Debug, Clone)]
enum ResolvedDep {
    /// `raw[a] <= factor * raw[b]`.
    LeFactor { a: usize, b: usize, factor: f64 },
    /// `Π raw[i]^1 * weight_i ... <= limit` (weights multiply each term).
    ProductLe {
        terms: Vec<(usize, f64)>,
        limit: f64,
    },
    /// `Σ weight_i * raw[i] <= limit`.
    SumLe {
        terms: Vec<(usize, f64)>,
        limit: f64,
    },
}

/// Static knowledge from the knob-constraint artifact
/// (`bench_results/knob_constraints.json`), compiled by `autotune-lint
/// --emit-constraints` and resolved against one configuration space.
///
/// Consumers are strictly opt-in: a tuner without constraints follows the
/// exact historical code path, so seeded trajectories stay bit-identical.
/// With constraints, candidate generation is clamped into per-knob reduced
/// boxes (widened to keep the vendor default reachable), dependency-violating
/// candidates are filtered out (failing open when the filter would empty the
/// pool), and rule-derived priors become seed configurations for the
/// initial design.
#[derive(Debug, Clone)]
pub struct SearchConstraints {
    /// Per-dimension unit-cube boxes `[lo, hi]`.
    boxes: Vec<(f64, f64)>,
    deps: Vec<ResolvedDep>,
    seeds: Vec<Configuration>,
}

/// Unit-cube coordinate of a raw numeric value under a domain (clamped;
/// categorical raw values are choice indices).
fn unit_of(domain: &ParamDomain, raw: f64) -> f64 {
    let lerp = |lo: f64, hi: f64, v: f64| {
        if hi > lo {
            ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    };
    match domain {
        ParamDomain::Int { min, max, log } => {
            let v = raw.clamp(*min as f64, *max as f64);
            if *log {
                lerp((*min as f64).ln(), (*max as f64).ln(), v.ln())
            } else {
                lerp(*min as f64, *max as f64, v)
            }
        }
        ParamDomain::Float { min, max, log } => {
            let v = raw.clamp(*min, *max);
            if *log {
                lerp(min.ln(), max.ln(), v.ln())
            } else {
                lerp(*min, *max, v)
            }
        }
        ParamDomain::Bool => raw.clamp(0.0, 1.0),
        ParamDomain::Categorical { choices } => {
            lerp(0.0, choices.len().saturating_sub(1) as f64, raw)
        }
    }
}

/// Raw numeric value of a parameter decoded from a unit coordinate
/// (categoricals map to their choice index).
fn raw_of(domain: &ParamDomain, u: f64) -> f64 {
    match (domain, domain.decode(u)) {
        (ParamDomain::Categorical { choices }, ParamValue::Str(s)) => {
            choices.iter().position(|c| c == &s).unwrap_or(0) as f64
        }
        (_, v) => v.as_f64().unwrap_or(0.0),
    }
}

/// A raw numeric value turned back into a domain-typed `ParamValue`.
fn value_of(domain: &ParamDomain, raw: f64) -> ParamValue {
    match domain {
        ParamDomain::Int { min, max, .. } => {
            ParamValue::Int((raw.round() as i64).clamp(*min, *max))
        }
        ParamDomain::Float { min, max, .. } => ParamValue::Float(raw.clamp(*min, *max)),
        ParamDomain::Bool => ParamValue::Bool(raw >= 0.5),
        ParamDomain::Categorical { choices } => {
            let i = (raw.round() as usize).min(choices.len().saturating_sub(1));
            ParamValue::Str(choices[i].clone())
        }
    }
}

impl SearchConstraints {
    /// Resolves one system's artifact entry against a concrete space.
    /// Knobs or dependencies naming parameters the space does not have are
    /// dropped (fail open), never invented.
    pub fn from_artifact(sys: &SystemConstraints, space: &ConfigSpace) -> Self {
        let default_point = space.encode(&space.default_config());
        let mut boxes = Vec::with_capacity(space.dim());
        for (i, spec) in space.params().iter().enumerate() {
            let boxed = sys.knobs.get(&spec.name).map(|k| {
                let lo = unit_of(&spec.domain, k.reduced_lo);
                let hi = unit_of(&spec.domain, k.reduced_hi);
                // The vendor default must stay reachable: the default config
                // anchors every initial design.
                let d = default_point.get(i).copied().unwrap_or(0.5);
                (lo.min(d), hi.max(d))
            });
            boxes.push(match boxed {
                Some((lo, hi)) if lo <= hi => (lo, hi),
                _ => (0.0, 1.0),
            });
        }

        let resolve = |name: &str| space.index_of(name);
        let mut deps = Vec::new();
        for d in &sys.deps {
            let resolved = match d {
                Dependency::LeFactor { a, b, factor, .. } => {
                    resolve(a)
                        .zip(resolve(b))
                        .map(|(a, b)| ResolvedDep::LeFactor {
                            a,
                            b,
                            factor: *factor,
                        })
                }
                Dependency::ProductLe { terms, limit, .. } => terms
                    .iter()
                    .map(|(n, w)| resolve(n).map(|i| (i, *w)))
                    .collect::<Option<Vec<_>>>()
                    .map(|terms| ResolvedDep::ProductLe {
                        terms,
                        limit: *limit,
                    }),
                Dependency::SumLe { terms, limit, .. } => terms
                    .iter()
                    .map(|(n, w)| resolve(n).map(|i| (i, *w)))
                    .collect::<Option<Vec<_>>>()
                    .map(|terms| ResolvedDep::SumLe {
                        terms,
                        limit: *limit,
                    }),
            };
            if let Some(r) = resolved {
                deps.push(r);
            }
        }

        // Seed configurations: first the combined rule-of-thumb config
        // (every knob at its strongest prior), then one config per knob
        // that moves only that knob — the iTuned "use available
        // information" designs.
        let mut seeds = Vec::new();
        let mut combined = space.default_config();
        let mut singles = Vec::new();
        for spec in space.params() {
            let Some(k) = sys.knobs.get(&spec.name) else {
                continue;
            };
            let Some(best) = k
                .priors
                .iter()
                .filter(|p| p.weight >= 1.0)
                .max_by(|a, b| a.weight.total_cmp(&b.weight))
            else {
                continue;
            };
            let value = value_of(&spec.domain, best.value);
            combined.set(&spec.name, value.clone());
            let mut single = space.default_config();
            single.set(&spec.name, value);
            singles.push(single);
        }
        if !singles.is_empty() {
            seeds.push(combined);
            seeds.extend(singles);
        }

        SearchConstraints { boxes, deps, seeds }
    }

    /// Loads the committed artifact and resolves the named system.
    /// `Err` carries a human-readable reason (missing file, bad version,
    /// unknown system).
    pub fn load(path: &std::path::Path, system: &str, space: &ConfigSpace) -> Result<Self, String> {
        let artifact = autotune_core::KnobConstraints::load(path)?;
        let sys = artifact
            .system(system)
            .ok_or_else(|| format!("no system `{system}` in {}", path.display()))?;
        Ok(Self::from_artifact(sys, space))
    }

    /// Prior-derived seed configurations (combined rule-of-thumb first).
    pub fn seeds(&self) -> &[Configuration] {
        &self.seeds
    }

    /// Clamps a unit-cube point into the per-knob reduced boxes.
    pub fn clamp_point(&self, point: &mut [f64]) {
        for (v, &(lo, hi)) in point.iter_mut().zip(&self.boxes) {
            *v = v.clamp(lo, hi);
        }
    }

    /// Whether a unit-cube point satisfies every resolved dependency.
    pub fn satisfies(&self, space: &ConfigSpace, point: &[f64]) -> bool {
        if self.deps.is_empty() {
            return true;
        }
        let raw: Vec<f64> = space
            .params()
            .iter()
            .zip(point)
            .map(|(spec, &u)| raw_of(&spec.domain, u))
            .collect();
        self.deps.iter().all(|d| match d {
            ResolvedDep::LeFactor { a, b, factor } => raw[*a] <= factor * raw[*b] + 1e-9,
            ResolvedDep::ProductLe { terms, limit } => {
                terms.iter().map(|&(i, w)| raw[i] * w).product::<f64>() <= limit + 1e-9
            }
            ResolvedDep::SumLe { terms, limit } => {
                terms.iter().map(|&(i, w)| raw[i] * w).sum::<f64>() <= limit + 1e-9
            }
        })
    }

    /// Projects a unit-cube point onto the dependency-feasible region by
    /// scaling violating terms down in raw space (the standard repair for
    /// budget-style constraints: a product or sum over the limit shrinks
    /// multiplicatively toward the feasible surface; `a ≤ f·b` clamps
    /// `a`). Domain minima are respected, so a contradictory dependency
    /// leaves the point where the domain floor forces it — repair is best
    /// effort, never a panic.
    pub fn repair_point(&self, space: &ConfigSpace, point: &mut [f64]) {
        if self.deps.is_empty() {
            return;
        }
        let mut raw: Vec<f64> = space
            .params()
            .iter()
            .zip(point.iter())
            .map(|(spec, &u)| raw_of(&spec.domain, u))
            .collect();
        let floor = |spec: &autotune_core::ParamSpec, v: f64| match &spec.domain {
            ParamDomain::Int { min, .. } => v.max(*min as f64),
            ParamDomain::Float { min, .. } => v.max(*min),
            _ => v,
        };
        let mut changed = false;
        for d in &self.deps {
            match d {
                ResolvedDep::LeFactor { a, b, factor } => {
                    let cap = factor * raw[*b];
                    if raw[*a] > cap + 1e-9 {
                        raw[*a] = floor(&space.params()[*a], cap);
                        changed = true;
                    }
                }
                ResolvedDep::ProductLe { terms, limit } => {
                    let p: f64 = terms.iter().map(|&(i, w)| raw[i] * w).product();
                    if p > *limit + 1e-9 && p > 0.0 && *limit > 0.0 {
                        let s = (limit / p).powf(1.0 / terms.len() as f64);
                        for &(i, _) in terms {
                            raw[i] = floor(&space.params()[i], raw[i] * s);
                        }
                        changed = true;
                    }
                }
                ResolvedDep::SumLe { terms, limit } => {
                    let s: f64 = terms.iter().map(|&(i, w)| raw[i] * w).sum();
                    if s > *limit + 1e-9 && s > 0.0 && *limit > 0.0 {
                        let scale = limit / s;
                        for &(i, _) in terms {
                            raw[i] = floor(&space.params()[i], raw[i] * scale);
                        }
                        changed = true;
                    }
                }
            }
        }
        if changed {
            for (i, spec) in space.params().iter().enumerate() {
                point[i] = unit_of(&spec.domain, raw[i]);
            }
            self.clamp_point(point);
        }
    }

    /// Applies the constraints to a candidate pool: every point is clamped
    /// into the reduced boxes and projected onto the dependency-feasible
    /// region. Projection (rather than rejection) keeps the pool's size
    /// and diversity even when the feasible region is a sliver of the
    /// declared space, and a contradictory dependency degrades to the
    /// clamped pool — constraints never empty a search.
    pub fn apply_to_pool(&self, space: &ConfigSpace, mut pool: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        for p in pool.iter_mut() {
            self.clamp_point(p);
            self.repair_point(space, p);
        }
        pool
    }
}

/// Unit-cube encodings of the `k` best (lowest-runtime) observations.
pub fn best_anchors(history: &History, space: &ConfigSpace, k: usize) -> Vec<Vec<f64>> {
    let mut obs: Vec<_> = history.all().iter().collect();
    obs.sort_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
    obs.iter()
        .take(k)
        .map(|o| space.encode(&o.config))
        .collect()
}

/// Runtimes with failures inflated so models learn to avoid them
/// (a failed run's measured runtime already includes the penalty, but we
/// additionally guard against zero-runtime artifacts).
pub fn penalized_runtimes(history: &History) -> Vec<f64> {
    history
        .all()
        .iter()
        .map(|o| {
            if o.failed {
                o.runtime_secs.max(1e-6) * 1.5
            } else {
                o.runtime_secs.max(1e-6)
            }
        })
        .collect()
}

/// Log-transformed penalized runtimes — GP/Lasso targets are far better
/// behaved in log space because runtimes span orders of magnitude.
pub fn log_runtimes(history: &History) -> Vec<f64> {
    penalized_runtimes(history)
        .into_iter()
        .map(|r| r.ln())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{Observation, ParamSpec};
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::float("x", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("y", 0.0, 1.0, 0.5, ""),
        ])
    }

    #[test]
    fn pool_size_and_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let anchors = vec![vec![0.9, 0.1]];
        let pool = candidate_pool(2, 10, &anchors, 5, 0.2, &mut rng);
        assert_eq!(pool.len(), 15);
        for p in &pool {
            assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn anchors_are_best_observations() {
        let s = space();
        let mut h = History::new();
        for (u, rt) in [(0.1, 5.0), (0.5, 1.0), (0.9, 3.0)] {
            h.push(Observation::ok(s.decode(&[u, u]), rt));
        }
        let anchors = best_anchors(&h, &s, 2);
        assert_eq!(anchors.len(), 2);
        assert!((anchors[0][0] - 0.5).abs() < 1e-9);
        assert!((anchors[1][0] - 0.9).abs() < 1e-9);
    }

    fn artifact() -> SystemConstraints {
        use autotune_core::{KnobConstraint, Prior};
        let mut knobs = std::collections::BTreeMap::new();
        knobs.insert(
            "x".to_string(),
            KnobConstraint {
                declared_lo: 0.0,
                declared_hi: 1.0,
                reduced_lo: 0.25,
                reduced_hi: 0.75,
                log_scale: false,
                default: Some(0.5),
                unit: None,
                priors: vec![Prior {
                    value: 0.7,
                    weight: 1.0,
                    source: "bestpractice:test".into(),
                }],
                sources: vec![],
            },
        );
        SystemConstraints {
            knobs,
            deps: vec![Dependency::SumLe {
                terms: vec![("x".into(), 1.0), ("y".into(), 1.0)],
                limit: 1.2,
                source: "spex:test".into(),
            }],
        }
    }

    #[test]
    fn constraints_clamp_into_reduced_boxes() {
        let s = space();
        let c = SearchConstraints::from_artifact(&artifact(), &s);
        let mut p = vec![0.9, 0.9];
        c.clamp_point(&mut p);
        assert_eq!(p, vec![0.75, 0.9]); // y unnamed → full box
                                        // The default (0.5) stays reachable even if reduction excluded it.
        let mut q = vec![0.5, 0.5];
        c.clamp_point(&mut q);
        assert_eq!(q, vec![0.5, 0.5]);
    }

    #[test]
    fn dependencies_project_instead_of_rejecting() {
        let s = space();
        let c = SearchConstraints::from_artifact(&artifact(), &s);
        // x + y <= 1.2: a satisfying point is untouched, a violator is
        // scaled down onto the feasible surface — never dropped.
        assert!(c.satisfies(&s, &[0.3, 0.3]));
        assert!(!c.satisfies(&s, &[0.7, 0.9]));
        let pool = vec![vec![0.3, 0.3], vec![0.7, 0.9]];
        let out = c.apply_to_pool(&s, pool);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![0.3, 0.3]);
        assert!(c.satisfies(&s, &out[1]), "violator projected to feasible");
        let sum: f64 = out[1].iter().sum();
        assert!((sum - 1.2).abs() < 1e-6, "lands on the surface, got {sum}");
        // A contradictory dependency (limit below any reachable value)
        // cannot be repaired — the point degrades to clamped, unfiltered.
        let mut sys = artifact();
        sys.deps = vec![Dependency::SumLe {
            terms: vec![("x".into(), 1.0), ("y".into(), 1.0)],
            limit: -1.0,
            source: "test".into(),
        }];
        let c = SearchConstraints::from_artifact(&sys, &s);
        let out = c.apply_to_pool(&s, vec![vec![0.3, 0.3], vec![0.9, 0.9]]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[1], vec![0.75, 0.9]); // still clamped
    }

    #[test]
    fn prior_seeds_include_combined_config() {
        let s = space();
        let c = SearchConstraints::from_artifact(&artifact(), &s);
        let seeds = c.seeds();
        assert_eq!(seeds.len(), 2); // combined + one single-knob seed
        let enc = s.encode(&seeds[0]);
        assert!((enc[0] - 0.7).abs() < 1e-9);
        assert!((enc[1] - 0.5).abs() < 1e-9); // y stays at default
    }

    #[test]
    fn unknown_knobs_and_deps_are_dropped() {
        let s = space();
        let mut sys = artifact();
        sys.deps = vec![Dependency::LeFactor {
            a: "x".into(),
            b: "not_a_knob".into(),
            factor: 1.0,
            source: "test".into(),
        }];
        let c = SearchConstraints::from_artifact(&sys, &s);
        // Unresolvable dependency dropped → everything satisfies.
        assert!(c.satisfies(&s, &[0.9, 0.9]));
    }

    #[test]
    fn failures_are_penalized() {
        let s = space();
        let mut h = History::new();
        let mut bad = Observation::ok(s.decode(&[0.5, 0.5]), 10.0);
        bad.failed = true;
        h.push(bad);
        h.push(Observation::ok(s.decode(&[0.2, 0.2]), 10.0));
        let rts = penalized_runtimes(&h);
        assert!(rts[0] > rts[1]);
        let lrts = log_runtimes(&h);
        assert!((lrts[1] - 10.0f64.ln()).abs() < 1e-12);
    }
}
