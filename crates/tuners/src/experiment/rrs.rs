//! Recursive Random Search as an incremental tuner — the strong
//! assumption-free experiment-driven baseline from the network/Hadoop
//! tuning literature (Ye & Kalyanaraman), restructured as a
//! propose/observe state machine so it plugs into [`autotune_core`]
//! sessions.

use autotune_core::{
    Configuration, History, Observation, Recommendation, Tuner, TunerFamily, TuningContext,
};
use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Explore { taken: usize },
    Exploit { radius: f64, fails: usize },
}

/// Incremental Recursive Random Search.
#[derive(Debug)]
pub struct RrsTuner {
    /// Samples per explore phase.
    pub explore_samples: usize,
    /// Initial exploit radius (unit cube).
    pub initial_radius: f64,
    /// Radius shrink factor after repeated failures.
    pub shrink: f64,
    /// Consecutive failures before shrinking.
    pub patience: usize,
    phase: Phase,
    center: Option<(Vec<f64>, f64)>,
    explore_best: Option<(Vec<f64>, f64)>,
    last_proposed: Option<Vec<f64>>,
}

impl Default for RrsTuner {
    fn default() -> Self {
        RrsTuner {
            explore_samples: 10,
            initial_radius: 0.25,
            shrink: 0.5,
            patience: 4,
            phase: Phase::Explore { taken: 0 },
            center: None,
            explore_best: None,
            last_proposed: None,
        }
    }
}

impl RrsTuner {
    /// Creates the tuner with default settings.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tuner for RrsTuner {
    fn name(&self) -> &str {
        "recursive-random-search"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        let point: Vec<f64> = match &self.phase {
            Phase::Explore { .. } => (0..dim).map(|_| rng.random_range(0.0..1.0)).collect(),
            Phase::Exploit { radius, .. } => {
                let center = self
                    .center
                    .as_ref()
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| vec![0.5; dim]);
                center
                    .iter()
                    .map(|&c| (c + rng.random_range(-radius..*radius)).clamp(0.0, 1.0))
                    .collect()
            }
        };
        self.last_proposed = Some(point.clone());
        ctx.space.decode(&point)
    }

    fn observe(&mut self, obs: &Observation) {
        let Some(point) = self.last_proposed.take() else {
            return;
        };
        let value = obs.runtime_secs * if obs.failed { 1.5 } else { 1.0 };
        match &mut self.phase {
            Phase::Explore { taken } => {
                *taken += 1;
                let better = self
                    .explore_best
                    .as_ref()
                    .map(|(_, v)| value < *v)
                    .unwrap_or(true);
                if better {
                    self.explore_best = Some((point, value));
                }
                if *taken >= self.explore_samples {
                    self.center = self.explore_best.take();
                    self.phase = Phase::Exploit {
                        radius: self.initial_radius,
                        fails: 0,
                    };
                }
            }
            Phase::Exploit { radius, fails } => {
                let improved = self
                    .center
                    .as_ref()
                    .map(|(_, v)| value < *v)
                    .unwrap_or(true);
                if improved {
                    self.center = Some((point, value));
                    *fails = 0;
                } else {
                    *fails += 1;
                    if *fails >= self.patience {
                        *radius *= self.shrink;
                        *fails = 0;
                        if *radius < 5e-3 {
                            // Restart: back to global exploration.
                            self.phase = Phase::Explore { taken: 0 };
                            self.explore_best = None;
                        }
                    }
                }
            }
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: "recursive random search (explore/exploit with restarts)".into(),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no experiments run".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearchTuner;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, ParamSpec};

    fn bowl(dim: usize) -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(
            (0..dim)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.9, ""))
                .collect(),
        );
        FunctionObjective::new(space, "bowl", |x| {
            x.iter().map(|v| (v - 0.35) * (v - 0.35)).sum::<f64>() + 2.0
        })
    }

    #[test]
    fn transitions_from_explore_to_exploit() {
        let mut obj = bowl(2);
        let mut t = RrsTuner::new();
        let out = tune(&mut obj, &mut t, 15, 1);
        assert!(matches!(t.phase, Phase::Exploit { .. }));
        assert_eq!(out.history.len(), 15);
    }

    #[test]
    fn beats_random_on_average() {
        let mut wins = 0;
        for seed in 0..8 {
            let mut obj = bowl(5);
            let mut t = RrsTuner::new();
            let ours = tune(&mut obj, &mut t, 60, seed).best.unwrap().runtime_secs;
            let mut obj = bowl(5);
            let mut r = RandomSearchTuner;
            let theirs = tune(&mut obj, &mut r, 60, seed).best.unwrap().runtime_secs;
            if ours <= theirs {
                wins += 1;
            }
        }
        assert!(wins >= 5, "RRS won only {wins}/8");
    }

    #[test]
    fn restarts_after_radius_collapse() {
        // Tight patience and aggressive shrink to force a restart quickly.
        let mut t = RrsTuner {
            explore_samples: 3,
            initial_radius: 0.02,
            shrink: 0.1,
            patience: 1,
            ..RrsTuner::new()
        };
        let mut obj = bowl(2);
        let out = tune(&mut obj, &mut t, 60, 2);
        let _ = out;
        // After enough failures the tuner must be exploring again (or have
        // found a new exploit centre after a restart) without panicking.
        assert!(matches!(
            t.phase,
            Phase::Explore { .. } | Phase::Exploit { .. }
        ));
    }
}
