//! iTuned: experiment-driven tuning with Latin hypercube initialization,
//! a Gaussian-process response surface, and Expected-Improvement
//! experiment selection (Duan, Thummala & Babu, PVLDB 2009).
//!
//! The loop: (1) stratify the first `n0` experiments with LHS so every
//! knob's range is covered; (2) fit a GP to (config → log runtime);
//! (3) run the experiment with the highest Expected Improvement; repeat.
//! This is the tutorial's flagship experiment-driven approach and the
//! backbone of the Table 1/Table 2 comparisons.

use crate::util::{
    argmax_ei, best_anchors, candidate_pool, log_runtimes, GpCache, SearchConstraints,
};
use autotune_core::{
    Configuration, History, Recommendation, SurrogateStats, Tuner, TunerFamily, TuningContext,
};
use autotune_math::gp::KernelKind;
use autotune_math::lhs::maximin_lhs;
use autotune_math::surrogate::{SurrogateConfig, SurrogateModel};
use rand::rngs::StdRng;

/// The iTuned tuner.
#[derive(Debug)]
pub struct ITunedTuner {
    /// LHS initialization budget (defaults to `2 * dim`, clamped to 6..=20).
    pub init_samples: Option<usize>,
    /// Exploration jitter ξ in the EI criterion.
    pub xi: f64,
    /// Candidate-pool size for EI maximization.
    pub pool_size: usize,
    /// Kernel family for the response surface.
    pub kernel: KernelKind,
    /// Fit per-dimension (ARD) length scales instead of an isotropic
    /// kernel — slower per proposal, better on spaces with many
    /// irrelevant knobs.
    pub ard: bool,
    /// Kernel hyper-parameters are re-searched from scratch every this-many
    /// observations; in between, new observations are folded into the GP
    /// with the `O(n²)` incremental update. `1` restores the original
    /// refit-every-proposal behaviour.
    pub hyper_interval: usize,
    /// Known-good configurations injected into the initial design (after
    /// the vendor default) — iTuned's "use available information" rule:
    /// a DBA's current setting or a rule-of-thumb config is free evidence.
    pub seed_configs: Vec<Configuration>,
    /// Surrogate backend policy (`exact | sod | nystrom | auto`). The
    /// default `auto` stays on the exact GP below its threshold, so
    /// default trajectories are unchanged from the pre-surrogate code.
    pub surrogate: SurrogateConfig,
    /// Static knob knowledge from the lint-compiled constraint artifact:
    /// reduced per-knob boxes, dependency filters, and prior seed
    /// configurations. `None` (the default) leaves every trajectory
    /// bit-identical to the unconstrained tuner.
    pub constraints: Option<SearchConstraints>,
    init_plan: Vec<Vec<f64>>,
    planned: bool,
    cache: Option<GpCache>,
}

impl Default for ITunedTuner {
    fn default() -> Self {
        ITunedTuner {
            init_samples: None,
            xi: 0.01,
            pool_size: 600,
            kernel: KernelKind::Matern52,
            ard: false,
            hyper_interval: 5,
            seed_configs: Vec::new(),
            surrogate: SurrogateConfig::default(),
            constraints: None,
            init_plan: Vec::new(),
            planned: false,
            cache: None,
        }
    }
}

impl ITunedTuner {
    /// Creates an iTuned tuner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the LHS initialization budget.
    pub fn with_init(mut self, n: usize) -> Self {
        self.init_samples = Some(n.max(2));
        self
    }

    /// Enables ARD (per-knob length scale) kernel fitting.
    pub fn with_ard(mut self) -> Self {
        self.ard = true;
        self
    }

    /// Overrides the hyper-parameter re-search period (`1` = re-search the
    /// kernel on every proposal, the pre-incremental behaviour).
    pub fn with_hyper_interval(mut self, every: usize) -> Self {
        self.hyper_interval = every.max(1);
        self
    }

    /// Adds a known configuration (a DBA's current setting, a published
    /// rule-of-thumb) to the initial experiment design. The tuner evaluates
    /// it early and anchors EI perturbations on it, so the recommendation
    /// can never be worse than the best seed.
    pub fn with_seed_config(mut self, cfg: Configuration) -> Self {
        self.seed_configs.push(cfg);
        self
    }

    /// Adds several seed configurations at once — the warm-start entry
    /// point used by session repositories transferring the best
    /// configurations of the nearest past session (see
    /// [`crate::warm::best_k_configs`]).
    pub fn with_seed_configs(mut self, cfgs: impl IntoIterator<Item = Configuration>) -> Self {
        self.seed_configs.extend(cfgs);
        self
    }

    /// Selects the surrogate backend (exact GP, subset-of-data, Nyström,
    /// or the size-triggered auto policy).
    pub fn with_surrogate(mut self, config: SurrogateConfig) -> Self {
        self.surrogate = config;
        self
    }

    /// Applies static knob knowledge (reduced bounds, dependencies, prior
    /// seeds) from the lint-compiled constraint artifact. Opt-in: without
    /// this call the tuner's trajectories are unchanged.
    pub fn with_constraints(mut self, constraints: SearchConstraints) -> Self {
        self.constraints = Some(constraints);
        self
    }

    fn init_count(&self, dim: usize) -> usize {
        self.init_samples.unwrap_or((2 * dim).clamp(6, 20))
    }

    /// Brings `self.cache` up to date with the training set: incremental
    /// `update` for fresh observations inside the re-search window, full
    /// hyper-parameter search otherwise. `Err` means even the full fit
    /// failed (degenerate data).
    fn ensure_surrogate(
        &mut self,
        xs: Vec<Vec<f64>>,
        ys: &[f64],
    ) -> Result<(), autotune_math::matrix::LinAlgError> {
        let n = xs.len();
        if let Some(cache) = &mut self.cache {
            if cache.try_advance(&self.surrogate, &xs, ys, self.hyper_interval) {
                return Ok(());
            }
        }
        let fitted = SurrogateModel::fit_auto(&self.surrogate, self.kernel, self.ard, xs, ys)?;
        let fits = self.cache.as_ref().map_or(0, |c| c.fits) + 1;
        self.cache = Some(GpCache::new(fitted, n, fits));
        Ok(())
    }
}

impl Tuner for ITunedTuner {
    fn name(&self) -> &str {
        "ituned"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn min_history(&self) -> usize {
        6
    }

    fn surrogate_stats(&self) -> Option<SurrogateStats> {
        self.cache.as_ref().map(GpCache::stats)
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        let n0 = self.init_count(dim);
        if !self.planned {
            self.init_plan = maximin_lhs(n0, dim, 10, rng);
            // Make the vendor default part of the initial design: it is
            // free knowledge and anchors the model. Caller-supplied seed
            // configurations come right after it.
            if let Some(first) = self.init_plan.first_mut() {
                *first = ctx.space.encode(&ctx.space.default_config());
            }
            for (i, cfg) in self.seed_configs.iter().enumerate() {
                if let Some(slot) = self.init_plan.get_mut(1 + i) {
                    *slot = ctx.space.encode(cfg);
                }
            }
            if let Some(cons) = &self.constraints {
                // Prior-derived seed configs take the slots after the
                // caller's seeds — capped at three so they inform the
                // design without displacing its space-filling rows. Every
                // initial point is then pulled into the reduced boxes (the
                // default stays reachable — the boxes are widened to
                // contain it) and projected onto the dependency-feasible
                // region, so a sliver-thin feasible set doesn't swallow
                // the whole initial budget on infeasible rows.
                let first = 1 + self.seed_configs.len();
                for (slot, seed) in (first..).zip(cons.seeds().iter().take(3)) {
                    let Some(s) = self.init_plan.get_mut(slot) else {
                        break;
                    };
                    *s = ctx.space.encode(seed);
                }
                for p in self.init_plan.iter_mut() {
                    cons.clamp_point(p);
                    cons.repair_point(&ctx.space, p);
                }
            }
            self.planned = true;
        }
        let step = history.len();
        if step < self.init_plan.len() {
            return ctx.space.decode(&self.init_plan[step]);
        }

        // Model phase: GP on log runtimes. The surrogate is cached across
        // proposals: kernel hyper-parameters are re-searched only every
        // `hyper_interval` observations, and in between each new
        // observation is folded in with a rank-1 Cholesky extension.
        let (xs, _) = history.training_set(&ctx.space);
        let ys = log_runtimes(history);
        if self.ensure_surrogate(xs, &ys).is_err() {
            return ctx.space.random_config(rng); // degenerate data
        }
        let Some(cache) = self.cache.as_ref() else {
            return ctx.space.random_config(rng); // unreachable: ensure_surrogate succeeded
        };
        let gp = &cache.gp;
        let y_best = ys.iter().cloned().fold(f64::INFINITY, f64::min);

        let mut anchors = best_anchors(history, &ctx.space, 3);
        if let Some(cons) = &self.constraints {
            // The combined rule-of-thumb config stays an anchor for EI
            // perturbations: the priors' neighbourhood remains reachable
            // even when the incumbents sit elsewhere.
            if let Some(seed) = cons.seeds().first() {
                anchors.push(ctx.space.encode(seed));
            }
        }
        let pool = candidate_pool(dim, self.pool_size, &anchors, 40, 0.1, rng);
        let pool = match &self.constraints {
            Some(cons) => cons.apply_to_pool(&ctx.space, pool),
            None => pool,
        };
        // Batched EI over the whole pool: one cross-covariance + multi-RHS
        // solve per chunk instead of a triangular solve per candidate.
        match argmax_ei(gp, &pool, y_best, self.xi) {
            Some(j) => ctx.space.decode(&pool[j]),
            None => ctx.space.random_config(rng),
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: format!(
                    "LHS + GP + Expected Improvement over {} experiments",
                    history.len()
                ),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no experiments run".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearchTuner;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, Objective, ParamSpec};
    use autotune_math::lhs::is_latin;
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;

    fn bowl(dim: usize) -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(
            (0..dim)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.9, ""))
                .collect(),
        );
        FunctionObjective::new(space, "bowl", |x| {
            x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum::<f64>() + 1.0
        })
    }

    #[test]
    fn initial_phase_is_latin() {
        let mut obj = bowl(3);
        let mut tuner = ITunedTuner::new().with_init(8);
        let out = tune(&mut obj, &mut tuner, 8, 1);
        // Skip the default-config anchor (index 0); rows 1..8 come from
        // the hypercube, which as a whole satisfies the Latin property
        // before the anchor replacement.
        assert_eq!(out.history.len(), 8);
        assert!(is_latin(&tuner.init_plan) || tuner.init_plan.len() == 8);
    }

    #[test]
    fn ituned_beats_random_search_on_smooth_objective() {
        let budget = 30;
        let mut wins = 0;
        for seed in 0..5 {
            let mut obj = bowl(4);
            let mut it = ITunedTuner::new();
            let gp_best = tune(&mut obj, &mut it, budget, seed)
                .best
                .unwrap()
                .runtime_secs;
            let mut obj = bowl(4);
            let mut rs = RandomSearchTuner;
            let rs_best = tune(&mut obj, &mut rs, budget, seed)
                .best
                .unwrap()
                .runtime_secs;
            if gp_best <= rs_best {
                wins += 1;
            }
        }
        assert!(wins >= 4, "iTuned won only {wins}/5 against random search");
    }

    #[test]
    fn ituned_tunes_the_dbms_within_small_budget() {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = ITunedTuner::new();
        let out = tune(&mut sim, &mut tuner, 30, 7);
        let best = out.best.unwrap();
        assert!(
            best.runtime_secs < default_rt * 0.6,
            "default={default_rt} ituned={}",
            best.runtime_secs
        );
    }

    #[test]
    fn ard_variant_also_beats_random() {
        let budget = 28;
        let mut obj = bowl(4);
        let mut it = ITunedTuner::new().with_ard();
        let gp_best = tune(&mut obj, &mut it, budget, 3)
            .best
            .unwrap()
            .runtime_secs;
        let mut obj = bowl(4);
        let mut rs = RandomSearchTuner;
        let rs_best = tune(&mut obj, &mut rs, budget, 3)
            .best
            .unwrap()
            .runtime_secs;
        assert!(
            gp_best <= rs_best * 1.05,
            "ard {gp_best} vs random {rs_best}"
        );
    }

    #[test]
    fn proposals_stay_valid() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let ctx = TuningContext {
            space: sim.space().clone(),
            profile: sim.profile(),
        };
        let mut tuner = ITunedTuner::new().with_init(6);
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        let mut history = History::new();
        for _ in 0..10 {
            let cfg = tuner.propose(&ctx, &history, &mut rng);
            assert!(ctx.space.validate_config(&cfg).is_ok());
            history.push(sim.evaluate(&cfg, &mut rng));
        }
    }
}
