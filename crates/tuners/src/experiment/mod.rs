//! **Category 4 — Experiment-driven tuning** (§2.1): search guided by
//! actual runs. [`sard`] reproduces Plackett–Burman knob ranking;
//! [`adaptive_sampling`] the HotOS'09 adaptive experiment selection;
//! [`ituned`] the LHS + Gaussian-process + Expected-Improvement loop;
//! [`rrs`] recursive random search.

pub mod adaptive_sampling;
pub mod ituned;
pub mod rrs;
pub mod sard;

pub use adaptive_sampling::AdaptiveSamplingTuner;
pub use ituned::ITunedTuner;
pub use rrs::RrsTuner;
pub use sard::SardTuner;
