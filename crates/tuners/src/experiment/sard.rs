//! SARD: Statistical Approach for Ranking Database parameters
//! (Debnath, Lilja & Mokbel, ICDE Workshops 2008).
//!
//! SARD runs a Plackett–Burman two-level screening design over the knobs
//! and ranks them by main-effect magnitude — with `n` knobs screened in
//! roughly `n + 1` real runs instead of `2^n`. The tuner then spends any
//! remaining budget searching only the top-ranked knobs (the standard
//! SARD-then-search pipeline).

use autotune_core::{
    Configuration, History, KnobRanking, Recommendation, Tuner, TunerFamily, TuningContext,
};
use autotune_math::design::TwoLevelDesign;
use rand::rngs::StdRng;
use rand::RngExt;

/// Unit-cube coordinates for the two PB levels (kept interior so integer
/// knobs land on distinct values).
const LOW: f64 = 0.15;
const HIGH: f64 = 0.85;

/// The SARD tuner.
#[derive(Debug)]
pub struct SardTuner {
    design: Option<TwoLevelDesign>,
    /// Knobs to keep for the search phase.
    pub top_k: usize,
    ranking: Option<KnobRanking>,
}

impl SardTuner {
    /// Creates a SARD tuner that searches the `top_k` ranked knobs.
    pub fn new(top_k: usize) -> Self {
        SardTuner {
            design: None,
            top_k: top_k.max(1),
            ranking: None,
        }
    }

    /// Number of design runs needed for a space of `dim` knobs.
    pub fn design_runs(dim: usize) -> usize {
        autotune_math::design::pb_runs_for(dim).unwrap_or(24)
    }

    /// The knob ranking, once the screening phase is complete.
    pub fn ranking(&self) -> Option<&KnobRanking> {
        self.ranking.as_ref()
    }

    /// Computes the ranking from completed design runs.
    pub fn compute_ranking(
        design: &TwoLevelDesign,
        ctx: &TuningContext,
        history: &History,
    ) -> KnobRanking {
        let runs = design.runs().min(history.len());
        let responses: Vec<f64> = history.all()[..runs]
            .iter()
            .map(|o| o.runtime_secs)
            .collect();
        // If the design is not complete, rank what we have (padded with
        // the mean so effects of unseen runs cancel).
        let mean = autotune_math::stats::mean(&responses);
        let mut padded = responses;
        padded.resize(design.runs(), mean);
        let effects = design.main_effects(&padded);
        KnobRanking::new(
            ctx.space
                .params()
                .iter()
                .zip(&effects)
                .map(|(p, e)| (p.name.clone(), e.abs()))
                .collect(),
        )
    }
}

impl Tuner for SardTuner {
    fn name(&self) -> &str {
        "sard"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn min_history(&self) -> usize {
        8
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        if self.design.is_none() {
            self.design = TwoLevelDesign::plackett_burman(dim);
        }
        let Some(design) = self.design.as_ref() else {
            // No Plackett-Burman generator covers this dimensionality;
            // degrade to random search instead of panicking mid-benchmark.
            return ctx.space.random_config(rng);
        };
        let step = history.len();
        if step < design.runs() {
            // Screening phase: run the design rows in order.
            let point = design.run_to_unit(step, LOW, HIGH);
            return ctx.space.decode(&point);
        }
        // Search phase: random search restricted to the top-k knobs, the
        // rest pinned at the best design run's values.
        if self.ranking.is_none() {
            self.ranking = Some(Self::compute_ranking(design, ctx, history));
        }
        let Some(ranking) = self.ranking.as_ref() else {
            return ctx.space.random_config(rng); // unreachable: assigned above
        };
        let top: Vec<&str> = ranking.top_k(self.top_k);
        let base = history
            .best()
            .map(|o| o.config.clone())
            .unwrap_or_else(|| ctx.space.default_config());
        let mut point = ctx.space.encode(&base);
        // Shrinking local search on the important knobs: early proposals
        // explore their full range, later ones refine around the incumbent.
        let search_step = step - design.runs();
        let progress = (search_step as f64 / 30.0).min(1.0);
        let radius = 1.0 - 0.9 * progress;
        for name in top {
            let Some(idx) = ctx.space.index_of(name) else {
                continue; // ranking only names knobs of this space
            };
            let center = point[idx];
            point[idx] = if radius >= 1.0 {
                rng.random_range(0.0..1.0)
            } else {
                (center + rng.random_range(-radius..radius)).clamp(0.0, 1.0)
            };
        }
        ctx.space.decode(&point)
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let rationale = match &self.ranking {
            Some(r) => format!(
                "PB screening over {} knobs; most impactful: {}",
                ctx.space.dim(),
                r.top_k(self.top_k).join(", ")
            ),
            None => "screening incomplete".to_string(),
        };
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale,
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, Objective, ParamSpec};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;

    fn weighted_objective() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        // Knob importance: w0 >> w1 >> others ~ 0.
        let space = ConfigSpace::new(
            (0..6)
                .map(|i| ParamSpec::float(&format!("k{i}"), 0.0, 1.0, 0.5, ""))
                .collect(),
        );
        FunctionObjective::new(space, "weighted", |x| {
            20.0 * x[0] + 5.0 * x[1] + 0.1 * x[2] + 0.05 * x[3] + 10.0
        })
    }

    #[test]
    fn ranking_identifies_dominant_knobs() {
        let mut obj = weighted_objective();
        let mut tuner = SardTuner::new(2);
        let runs = SardTuner::design_runs(6);
        let out = tune(&mut obj, &mut tuner, runs + 1, 1);
        let ranking = tuner.ranking().expect("ranking computed");
        assert_eq!(ranking.names()[0], "k0");
        assert_eq!(ranking.names()[1], "k1");
        // The irrelevant knobs should rank clearly below.
        assert!(ranking.importance("k0") > 10.0 * ranking.importance("k4"));
        let _ = out;
    }

    #[test]
    fn screening_uses_exactly_design_runs() {
        assert_eq!(SardTuner::design_runs(6), 8);
        assert_eq!(SardTuner::design_runs(12), 16);
        let mut obj = weighted_objective();
        let mut tuner = SardTuner::new(2);
        let out = tune(&mut obj, &mut tuner, 8, 2);
        // All 8 proposals are design rows (two-level points).
        for obs in out.history.all() {
            for (_, v) in obs.config.iter() {
                let f = v.as_f64().unwrap();
                assert!(
                    (f - 0.15).abs() < 1e-9 || (f - 0.85).abs() < 1e-9,
                    "non-design level {f}"
                );
            }
        }
    }

    #[test]
    fn search_phase_improves_over_screening() {
        let mut obj = weighted_objective();
        let mut tuner = SardTuner::new(2);
        let runs = SardTuner::design_runs(6);
        let screening_only = tune(&mut obj, &mut tuner, runs, 3)
            .best
            .unwrap()
            .runtime_secs;
        let mut obj = weighted_objective();
        let mut tuner = SardTuner::new(2);
        let with_search = tune(&mut obj, &mut tuner, runs + 50, 3)
            .best
            .unwrap()
            .runtime_secs;
        assert!(with_search <= screening_only);
        // Optimum is 10.0 (x0 = x1 = 0); screening alone bottoms out at
        // 20*0.15 + 5*0.15 + ... ≈ 13.8.
        assert!(
            with_search < 12.0,
            "search should approach the optimum: {with_search}"
        );
    }

    #[test]
    fn sard_ranks_dbms_memory_knobs_highly() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let mut tuner = SardTuner::new(3);
        let runs = SardTuner::design_runs(sim.space().dim());
        let _ = tune(&mut sim, &mut tuner, runs + 1, 5);
        let ranking = tuner.ranking().expect("ranked");
        let top4: Vec<&str> = ranking.top_k(4);
        assert!(
            top4.contains(&"work_mem_mb") || top4.contains(&"shared_buffers_mb"),
            "memory knobs should rank near the top: {top4:?}"
        );
    }
}
