//! Adaptive sampling for experiment-driven management
//! (Babu, Borisov, Duan, Herodotou & Thummala, HotOS 2009 — the
//! "Shivnath" row of Table 2).
//!
//! The HotOS position: pick the next experiment by balancing *exploitation*
//! (sample near good observed regions) against *exploration* (sample far
//! from everything tried), with cheap nonparametric estimates instead of a
//! full surrogate model. This implementation scores candidates with a
//! distance-weighted k-NN runtime estimate minus an exploration bonus
//! proportional to the distance to the nearest tried point.

use crate::util::candidate_pool;
use autotune_core::{Configuration, History, Recommendation, Tuner, TunerFamily, TuningContext};
use autotune_math::batch::{argmin_first, chunked_scores};
use autotune_math::matrix::dist2;
use rand::rngs::StdRng;

/// The adaptive-sampling tuner.
#[derive(Debug)]
pub struct AdaptiveSamplingTuner {
    /// Bootstrap random samples before the adaptive phase.
    pub bootstrap: usize,
    /// Neighbours in the k-NN estimate.
    pub k: usize,
    /// Exploration weight (relative to the observed runtime spread).
    pub beta: f64,
    /// Candidate-pool size per step.
    pub pool_size: usize,
}

impl Default for AdaptiveSamplingTuner {
    fn default() -> Self {
        AdaptiveSamplingTuner {
            bootstrap: 8,
            k: 3,
            beta: 0.8,
            pool_size: 400,
        }
    }
}

impl AdaptiveSamplingTuner {
    /// Creates the tuner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// k-NN estimate from a precomputed squared-distance row. The scoring
    /// loop shares one row per candidate between this estimate and the
    /// exploration bonus, so each candidate touches the training set once.
    fn knn_from_dists(&self, dists: &[f64], ys: &[f64]) -> f64 {
        let mut d: Vec<(f64, f64)> = dists.iter().copied().zip(ys.iter().copied()).collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = self.k.min(d.len()).max(1);
        let mut num = 0.0;
        let mut den = 0.0;
        for &(dist, y) in d.iter().take(k) {
            let w = 1.0 / (dist + 1e-6);
            num += w * y;
            den += w;
        }
        num / den
    }
}

impl Tuner for AdaptiveSamplingTuner {
    fn name(&self) -> &str {
        "adaptive-sampling"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn min_history(&self) -> usize {
        self.bootstrap
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        if history.len() < self.bootstrap {
            // Bootstrap with the default first, then random samples.
            if history.is_empty() {
                return ctx.space.default_config();
            }
            return ctx.space.random_config(rng);
        }
        let (xs, ys) = history.training_set(&ctx.space);
        let spread = {
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            (hi - lo).max(1e-9)
        };
        let anchors = crate::util::best_anchors(history, &ctx.space, 2);
        let pool = candidate_pool(ctx.space.dim(), self.pool_size, &anchors, 30, 0.15, rng);
        // One shared squared-distance row per candidate feeds both the
        // k-NN estimate and the exploration bonus; chunked so large pools
        // can score on AUTOTUNE_THREADS workers (bit-identical either
        // way). Lower score = more attractive: predicted runtime minus
        // the exploration bonus.
        let scores = chunked_scores(&pool, |chunk| {
            chunk
                .iter()
                .map(|p| {
                    let dists: Vec<f64> = xs.iter().map(|xi| dist2(p, xi)).collect();
                    let est = self.knn_from_dists(&dists, &ys);
                    let nearest = dists.iter().copied().fold(f64::INFINITY, f64::min).sqrt();
                    est - self.beta * spread * nearest
                })
                .collect()
        });
        match argmin_first(&scores) {
            Some(j) => ctx.space.decode(&pool[j]),
            None => ctx.space.random_config(rng),
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: "adaptive sampling (k-NN exploit + distance explore)".into(),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no experiments run".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::RandomSearchTuner;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, ParamSpec};

    fn bowl() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(
            (0..3)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.95, ""))
                .collect(),
        );
        FunctionObjective::new(space, "bowl", |x| {
            x.iter().map(|v| (v - 0.25) * (v - 0.25)).sum::<f64>() + 0.5
        })
    }

    #[test]
    fn beats_or_matches_random_on_average() {
        let mut wins = 0;
        for seed in 0..6 {
            let mut obj = bowl();
            let mut a = AdaptiveSamplingTuner::new();
            let ours = tune(&mut obj, &mut a, 35, seed).best.unwrap().runtime_secs;
            let mut obj = bowl();
            let mut r = RandomSearchTuner;
            let theirs = tune(&mut obj, &mut r, 35, seed).best.unwrap().runtime_secs;
            if ours <= theirs {
                wins += 1;
            }
        }
        assert!(wins >= 4, "adaptive sampling won only {wins}/6");
    }

    #[test]
    fn knn_estimate_interpolates() {
        let t = AdaptiveSamplingTuner::new();
        let xs = [vec![0.0], vec![1.0]];
        let ys = vec![0.0, 10.0];
        let knn = |x: &[f64]| {
            let dists: Vec<f64> = xs.iter().map(|xi| dist2(x, xi)).collect();
            t.knn_from_dists(&dists, &ys)
        };
        let mid = knn(&[0.5]);
        assert!((mid - 5.0).abs() < 0.5, "mid={mid}");
        let near0 = knn(&[0.05]);
        assert!(near0 < 2.0, "near0={near0}");
    }

    #[test]
    fn bootstrap_starts_with_default() {
        let mut obj = bowl();
        let mut t = AdaptiveSamplingTuner::new();
        let out = tune(&mut obj, &mut t, 3, 1);
        let first = &out.history.all()[0].config;
        assert_eq!(first.f64("x0"), 0.95);
    }

    #[test]
    fn exploration_bonus_prefers_unvisited_when_beta_high() {
        let mut t = AdaptiveSamplingTuner::new();
        t.beta = 100.0;
        t.bootstrap = 2;
        let mut obj = bowl();
        let out = tune(&mut obj, &mut t, 10, 3);
        // With huge exploration weight, proposals should spread out: check
        // min pairwise distance of post-bootstrap proposals is not tiny.
        let pts: Vec<Vec<f64>> = out.history.all()[2..]
            .iter()
            .map(|o| o.config.iter().map(|(_, v)| v.as_f64().unwrap()).collect())
            .collect();
        let min_d = autotune_math::lhs::min_pairwise_dist2(&pts);
        assert!(min_d > 1e-4, "exploration collapsed: {min_d}");
    }
}
