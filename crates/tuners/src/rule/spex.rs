//! SPEX-style constraint inference and misconfiguration detection
//! (Xu et al., SOSP 2013 — "Do Not Blame Users for Misconfigurations").
//!
//! SPEX extracts *constraints* over configuration parameters (value
//! ranges, cross-parameter relationships, environment dependencies) and
//! uses them to catch error-prone settings before they take the system
//! down. Here the constraint language covers the cross-knob resource
//! relationships our simulators actually punish, and the checker doubles
//! as a *repair* engine: a tuner that takes any proposed configuration and
//! saturates it into the feasible region.

use autotune_core::{
    ConfigSpace, Configuration, History, ParamValue, SystemProfile, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// A cross-parameter constraint.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// Weighted sum of knob values must stay below a fraction of per-node
    /// memory: `Σ weight_i * knob_i ≤ limit_fraction * memory_mb`.
    MemorySum {
        /// (knob, weight) terms.
        terms: Vec<(String, f64)>,
        /// Fraction of per-node memory allowed.
        limit_fraction: f64,
        /// Human explanation.
        why: String,
    },
    /// One knob must be at most `factor` × another knob.
    AtMostFactorOf {
        /// Constrained knob.
        knob: String,
        /// Reference knob.
        of: String,
        /// Allowed factor.
        factor: f64,
        /// Human explanation.
        why: String,
    },
    /// Product of two knobs must not exceed a fraction of a resource
    /// (e.g. slots × heap ≤ node memory).
    ProductUnderMemory {
        /// First knob.
        a: String,
        /// Second knob.
        b: String,
        /// Fraction of per-node memory allowed.
        limit_fraction: f64,
        /// Human explanation.
        why: String,
    },
}

/// A constraint violation found in a configuration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which constraint (rendered).
    pub constraint: String,
    /// Measured left-hand side.
    pub actual: f64,
    /// Allowed limit.
    pub limit: f64,
}

impl Constraint {
    /// Checks a configuration; `None` means satisfied.
    pub fn check(&self, config: &Configuration, profile: &SystemProfile) -> Option<Violation> {
        match self {
            Constraint::MemorySum {
                terms,
                limit_fraction,
                why,
            } => {
                let actual: f64 = terms
                    .iter()
                    .map(|(k, w)| config.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) * w)
                    .sum();
                let limit = profile.memory_per_node_mb * limit_fraction;
                (actual > limit).then(|| Violation {
                    constraint: why.clone(),
                    actual,
                    limit,
                })
            }
            Constraint::AtMostFactorOf {
                knob,
                of,
                factor,
                why,
            } => {
                let a = config.get(knob).and_then(|v| v.as_f64())?;
                let b = config.get(of).and_then(|v| v.as_f64())?;
                let limit = b * factor;
                (a > limit).then(|| Violation {
                    constraint: why.clone(),
                    actual: a,
                    limit,
                })
            }
            Constraint::ProductUnderMemory {
                a,
                b,
                limit_fraction,
                why,
            } => {
                let va = config.get(a).and_then(|v| v.as_f64())?;
                let vb = config.get(b).and_then(|v| v.as_f64())?;
                let actual = va * vb;
                let limit = profile.memory_per_node_mb * limit_fraction;
                (actual > limit).then(|| Violation {
                    constraint: why.clone(),
                    actual,
                    limit,
                })
            }
        }
    }
}

/// Deployment budgets that instantiate the constraint books: how many
/// concurrent sessions charge the per-session memory pools, how many
/// nodes the cluster has, and whether executor overhead is budgeted at
/// its worst case (safety/repair) or its default (search prior).
struct InferBudget {
    sessions: f64,
    nodes: f64,
    worst_case_overhead: bool,
}

/// Inferred constraint set for one system, plus check/repair operations.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint.
    pub fn with(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// The constraints themselves, for knowledge compilers that export
    /// them (`autotune-lint --emit-constraints`).
    pub fn all(&self) -> &[Constraint] {
        &self.constraints
    }

    /// All violations in a configuration.
    pub fn check(&self, config: &Configuration, profile: &SystemProfile) -> Vec<Violation> {
        self.constraints
            .iter()
            .filter_map(|c| c.check(config, profile))
            .collect()
    }

    /// Repairs a configuration by scaling the offending numeric knobs down
    /// until all constraints pass (up to a fixed point). Returns the
    /// repaired configuration and how many violations were fixed.
    pub fn repair(
        &self,
        space: &ConfigSpace,
        config: &Configuration,
        profile: &SystemProfile,
    ) -> (Configuration, usize) {
        let mut fixed = config.clone();
        let mut repairs = 0;
        for _ in 0..16 {
            let violations = self.check(&fixed, profile);
            if violations.is_empty() {
                break;
            }
            for c in &self.constraints {
                if let Some(v) = c.check(&fixed, profile) {
                    let scale = (v.limit / v.actual).clamp(0.01, 0.95);
                    for knob in constraint_knobs(c) {
                        if let Some(ParamValue::Int(x)) = fixed.get(&knob).cloned() {
                            let new = ((x as f64 * scale).floor() as i64).max(1);
                            let clamped = match &space.spec(&knob) {
                                Some(spec) => match &spec.domain {
                                    autotune_core::ParamDomain::Int { min, max, .. } => {
                                        new.clamp(*min, *max)
                                    }
                                    _ => new,
                                },
                                None => new,
                            };
                            fixed.set(&knob, ParamValue::Int(clamped));
                        }
                    }
                    repairs += 1;
                }
            }
        }
        (fixed, repairs)
    }

    /// "Mines" constraints from a system's knob space and profile — the
    /// SPEX idea of extracting constraints from source/docs, instantiated
    /// for the resource knobs our simulators expose. Deployment-agnostic:
    /// budgets assume a generic busy deployment (64 concurrent DBMS
    /// sessions, 8 worker nodes, worst-case executor overhead).
    pub fn infer_for(space: &ConfigSpace) -> Self {
        Self::infer_with(
            space,
            &InferBudget {
                sessions: 64.0,
                nodes: 8.0,
                worst_case_overhead: true,
            },
        )
    }

    /// Like [`ConstraintSet::infer_for`], but instantiated against an
    /// actual deployment. The constraint *shapes* are identical — only the
    /// budgets change: concurrent-session estimates come from the workload
    /// class and core count (an analytic workload runs ~one heavy query
    /// per core; a transactional one multiplexes many short sessions per
    /// core), the cluster size comes from the profile, and executor
    /// overhead is budgeted at the space's default rather than its
    /// worst case — the compiled artifact is a search prior, not an
    /// admission check, so it budgets the typical config it recommends.
    pub fn infer_for_profile(space: &ConfigSpace, profile: &SystemProfile) -> Self {
        use autotune_core::WorkloadClass;
        let cores = profile.cores_per_node.max(1) as f64;
        let sessions = match profile.workload {
            WorkloadClass::Olap | WorkloadClass::Batch | WorkloadClass::Iterative => cores,
            WorkloadClass::Mixed => cores * 2.0,
            WorkloadClass::Oltp | WorkloadClass::Streaming => cores * 8.0,
        };
        Self::infer_with(
            space,
            &InferBudget {
                sessions: sessions.max(1.0),
                nodes: profile.nodes.max(1) as f64,
                worst_case_overhead: false,
            },
        )
    }

    fn infer_with(space: &ConfigSpace, budget: &InferBudget) -> Self {
        let has = |k: &str| space.spec(k).is_some();
        let mut set = ConstraintSet::new();
        // DBMS memory books: the per-session pools are charged once per
        // concurrently active operation — roughly half the sessions sort
        // at once, a quarter touch temp tables.
        if has("shared_buffers_mb") && has("work_mem_mb") {
            set = set.with(Constraint::MemorySum {
                terms: vec![
                    ("shared_buffers_mb".into(), 1.0),
                    ("work_mem_mb".into(), (budget.sessions * 0.5).max(1.0)),
                    ("maintenance_work_mem_mb".into(), 1.0),
                    ("wal_buffers_mb".into(), 1.0),
                    ("temp_buffers_mb".into(), (budget.sessions * 0.25).max(1.0)),
                ],
                limit_fraction: 0.9,
                why: "DBMS memory pools must fit in RAM".into(),
            });
        }
        // Hadoop heap books.
        if has("io_sort_mb") && has("map_heap_mb") {
            set = set.with(Constraint::AtMostFactorOf {
                knob: "io_sort_mb".into(),
                of: "map_heap_mb".into(),
                factor: 0.6,
                why: "sort buffer must fit inside the map JVM heap".into(),
            });
        }
        if has("map_slots_per_node") && has("map_heap_mb") {
            set = set.with(Constraint::ProductUnderMemory {
                a: "map_slots_per_node".into(),
                b: "map_heap_mb".into(),
                limit_fraction: 0.6,
                why: "map slots × heap must fit in node memory".into(),
            });
        }
        if has("reduce_slots_per_node") && has("reduce_heap_mb") {
            set = set.with(Constraint::ProductUnderMemory {
                a: "reduce_slots_per_node".into(),
                b: "reduce_heap_mb".into(),
                limit_fraction: 0.4,
                why: "reduce slots × heap must fit in node memory".into(),
            });
        }
        // Spark allocation books.
        if has("executor_instances") && has("executor_memory_mb") {
            // The cluster manager charges executor memory multiplied by
            // (1 + overhead factor). The safety budget (repair engine)
            // assumes the largest overhead the space allows so no repaired
            // config can overcommit; the prior budget assumes the default
            // overhead, which is what a recommended config actually runs.
            let overhead = space
                .spec("memory_overhead_factor")
                .and_then(|s| match s.domain {
                    autotune_core::ParamDomain::Float { min: _, max, .. } => {
                        if budget.worst_case_overhead {
                            Some(max)
                        } else {
                            s.default.as_f64()
                        }
                    }
                    _ => None,
                })
                .unwrap_or(0.0);
            set = set.with(Constraint::ProductUnderMemory {
                a: "executor_instances".into(),
                b: "executor_memory_mb".into(),
                limit_fraction: 0.95 * budget.nodes / (1.0 + overhead),
                why: "executors × (memory + overhead) must fit in the cluster".into(),
            });
        }
        if has("broadcast_threshold_mb") && has("executor_memory_mb") {
            // Broadcast tables are pinned (deserialized, ~2x) in every
            // executor heap; only a sliver of the heap is safe to promise.
            set = set.with(Constraint::AtMostFactorOf {
                knob: "broadcast_threshold_mb".into(),
                of: "executor_memory_mb".into(),
                factor: 0.1,
                why: "broadcast tables must fit in a sliver of each executor heap".into(),
            });
        }
        set
    }
}

fn constraint_knobs(c: &Constraint) -> Vec<String> {
    match c {
        Constraint::MemorySum { terms, .. } => terms.iter().map(|(k, _)| k.clone()).collect(),
        Constraint::AtMostFactorOf { knob, .. } => vec![knob.clone()],
        // Scale both factors: either alone may be pinned at its domain
        // minimum (e.g. the smallest allowed heap), which would wedge the
        // repair loop.
        Constraint::ProductUnderMemory { a, b, .. } => vec![a.clone(), b.clone()],
    }
}

/// The SPEX tuner: proposes random configurations *repaired* into the
/// feasible region — demonstrating that constraint checking alone removes
/// the catastrophic part of the search space.
#[derive(Debug)]
pub struct SpexTuner {
    constraints: ConstraintSet,
}

impl SpexTuner {
    /// Infers constraints from the space at first use.
    pub fn new(space: &ConfigSpace) -> Self {
        SpexTuner {
            constraints: ConstraintSet::infer_for(space),
        }
    }

    /// The inferred constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }
}

impl Tuner for SpexTuner {
    fn name(&self) -> &str {
        "spex"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::RuleBased
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let candidate = ctx.space.random_config(rng);
        let (repaired, _) = self
            .constraints
            .repair(&ctx.space, &candidate, &ctx.profile);
        repaired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{Objective, SystemProfile};
    use autotune_sim::dbms::dbms_space;
    use autotune_sim::hadoop::hadoop_space;
    use rand::SeedableRng;

    fn dbms_profile() -> SystemProfile {
        SystemProfile {
            memory_per_node_mb: 16384.0,
            ..SystemProfile::default()
        }
    }

    #[test]
    fn detects_dbms_memory_overcommit() {
        let space = dbms_space();
        let set = ConstraintSet::infer_for(&space);
        assert!(!set.is_empty());
        let mut cfg = space.default_config();
        cfg.set("shared_buffers_mb", ParamValue::Int(16384));
        cfg.set("work_mem_mb", ParamValue::Int(1024));
        let violations = set.check(&cfg, &dbms_profile());
        assert!(!violations.is_empty());
        assert!(violations[0].actual > violations[0].limit);
    }

    #[test]
    fn default_config_is_feasible() {
        let space = dbms_space();
        let set = ConstraintSet::infer_for(&space);
        assert!(set
            .check(&space.default_config(), &dbms_profile())
            .is_empty());
    }

    #[test]
    fn repair_restores_feasibility() {
        let space = dbms_space();
        let set = ConstraintSet::infer_for(&space);
        let mut cfg = space.default_config();
        cfg.set("shared_buffers_mb", ParamValue::Int(65536));
        cfg.set("work_mem_mb", ParamValue::Int(4096));
        let (fixed, repairs) = set.repair(&space, &cfg, &dbms_profile());
        assert!(repairs > 0);
        assert!(set.check(&fixed, &dbms_profile()).is_empty());
        assert!(space.validate_config(&fixed).is_ok());
    }

    #[test]
    fn hadoop_sort_buffer_constraint() {
        let space = hadoop_space();
        let set = ConstraintSet::infer_for(&space);
        let mut cfg = space.default_config();
        cfg.set("io_sort_mb", ParamValue::Int(2048));
        cfg.set("map_heap_mb", ParamValue::Int(1024));
        assert!(!set.check(&cfg, &SystemProfile::default()).is_empty());
        let (fixed, _) = set.repair(&space, &cfg, &SystemProfile::default());
        assert!(set.check(&fixed, &SystemProfile::default()).is_empty());
    }

    #[test]
    fn spex_tuner_avoids_failures_random_does_not() {
        use autotune_sim::noise::NoiseModel;
        use autotune_sim::DbmsSimulator;
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut spex = SpexTuner::new(sim.space());
        let out = autotune_core::tune(&mut sim, &mut spex, 30, 5);
        let spex_failures = out.history.all().iter().filter(|o| o.failed).count();

        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut random = crate::baselines::RandomSearchTuner;
        let out = autotune_core::tune(&mut sim, &mut random, 30, 5);
        let random_failures = out.history.all().iter().filter(|o| o.failed).count();

        assert!(
            spex_failures < random_failures || random_failures == 0,
            "spex {spex_failures} vs random {random_failures}"
        );
        assert_eq!(spex_failures, 0, "repaired configs must never OOM");
    }

    #[test]
    fn spex_proposals_are_valid() {
        use autotune_sim::DbmsSimulator;
        let sim = DbmsSimulator::oltp_default();
        let ctx = TuningContext {
            space: sim.space().clone(),
            profile: sim.profile(),
        };
        let mut t = SpexTuner::new(&ctx.space);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let cfg = t.propose(&ctx, &History::new(), &mut rng);
            assert!(ctx.space.validate_config(&cfg).is_ok());
        }
    }
}
