//! Published best-practice rule books for the three target systems —
//! the concrete content a rule-based tuner ships with.
//!
//! Sources encoded here are the classics every DBA/ops checklist repeats:
//! PostgreSQL wiki tuning guide (buffer pool 25% of RAM, work_mem scaled
//! to concurrency), Hadoop "definitive guide"-era shuffle guidance
//! (bigger sort buffer, compression on, reducers ≈ 0.95–1.75× slots), and
//! Spark's official tuning page (kryo, 2–3 tasks per core, executors
//! sized to the node).

use super::engine::{Condition, Rule, RuleBook, RuleValue};
use autotune_core::{ParamValue, SystemKind, WorkloadClass};

/// Rule book for the simulated DBMS.
pub fn dbms_rulebook() -> RuleBook {
    use Condition::*;
    RuleBook::new()
        .with(Rule::new(
            "shared-buffers-25pct",
            vec![SystemIs(SystemKind::Dbms)],
            "shared_buffers_mb",
            RuleValue::MemFractionMb(0.25),
            "PostgreSQL wiki: shared_buffers = 25% of RAM",
        ))
        .with(Rule::new(
            "work-mem-oltp",
            vec![SystemIs(SystemKind::Dbms), WorkloadIs(WorkloadClass::Oltp)],
            "work_mem_mb",
            RuleValue::MemFractionMb(1.0 / 512.0),
            "many concurrent sessions: keep per-sort memory small",
        ))
        .with(Rule::new(
            "work-mem-olap",
            vec![SystemIs(SystemKind::Dbms), WorkloadIs(WorkloadClass::Olap)],
            "work_mem_mb",
            RuleValue::MemFractionMb(1.0 / 16.0),
            "few analytical sessions: large sorts should stay in memory",
        ))
        .with(Rule::new(
            "maintenance-mem",
            vec![SystemIs(SystemKind::Dbms)],
            "maintenance_work_mem_mb",
            RuleValue::MemFractionMb(1.0 / 16.0),
            "vacuum and index builds want generous memory",
        ))
        .with(Rule::new(
            "wal-buffers-64mb",
            vec![SystemIs(SystemKind::Dbms)],
            "wal_buffers_mb",
            RuleValue::Literal(ParamValue::Int(64)),
            "cap WAL buffer at 64 MB (guidance: 3% of shared_buffers, capped)",
        ))
        .with(Rule::new(
            "checkpoint-15min",
            vec![SystemIs(SystemKind::Dbms)],
            "checkpoint_timeout_s",
            RuleValue::Literal(ParamValue::Int(900)),
            "spread checkpoints: 15 minutes instead of 5",
        ))
        .with(Rule::new(
            "parallel-workers-olap",
            vec![SystemIs(SystemKind::Dbms), WorkloadIs(WorkloadClass::Olap)],
            "max_parallel_workers",
            RuleValue::CoresTimes(1.0),
            "analytical scans should use every core",
        ))
        .with(Rule::new(
            "ssd-random-page-cost",
            vec![SystemIs(SystemKind::Dbms), DiskFasterThan(400.0)],
            "random_page_cost",
            RuleValue::Literal(ParamValue::Float(1.1)),
            "SSDs: random reads cost nearly the same as sequential",
        ))
        .with(Rule::new(
            "ssd-io-concurrency",
            vec![SystemIs(SystemKind::Dbms), DiskFasterThan(400.0)],
            "effective_io_concurrency",
            RuleValue::Literal(ParamValue::Int(200)),
            "SSDs sustain deep async I/O queues",
        ))
        .with(Rule::new(
            "stats-target-olap",
            vec![SystemIs(SystemKind::Dbms), WorkloadIs(WorkloadClass::Olap)],
            "default_statistics_target",
            RuleValue::Literal(ParamValue::Int(250)),
            "complex joins need detailed statistics",
        ))
}

/// Rule book for the simulated Hadoop deployment.
pub fn hadoop_rulebook() -> RuleBook {
    use Condition::*;
    RuleBook::new()
        .with(Rule::new(
            "reducers-near-slots",
            vec![SystemIs(SystemKind::Hadoop)],
            "reduce_tasks",
            RuleValue::TotalCoresTimes(0.5),
            "guidance: reducers ≈ 0.95-1.75 × reduce slots",
        ))
        .with(Rule::new(
            "map-slots-half-cores",
            vec![SystemIs(SystemKind::Hadoop)],
            "map_slots_per_node",
            RuleValue::CoresTimes(0.5),
            "split cores between map and reduce slots",
        ))
        .with(Rule::new(
            "reduce-slots-quarter-cores",
            vec![SystemIs(SystemKind::Hadoop)],
            "reduce_slots_per_node",
            RuleValue::CoresTimes(0.25),
            "split cores between map and reduce slots",
        ))
        .with(Rule::new(
            "big-sort-buffer",
            vec![SystemIs(SystemKind::Hadoop)],
            "io_sort_mb",
            RuleValue::Literal(ParamValue::Int(512)),
            "avoid multi-spill maps on large inputs",
        ))
        .with(Rule::new(
            "sort-factor-64",
            vec![SystemIs(SystemKind::Hadoop)],
            "io_sort_factor",
            RuleValue::Literal(ParamValue::Int(64)),
            "merge wider to avoid extra passes",
        ))
        .with(Rule::new(
            "map-heap-fits-buffer",
            vec![SystemIs(SystemKind::Hadoop)],
            "map_heap_mb",
            RuleValue::Literal(ParamValue::Int(2048)),
            "heap must hold the sort buffer comfortably",
        ))
        .with(Rule::new(
            "compress-intermediate",
            vec![SystemIs(SystemKind::Hadoop)],
            "compress_map_output",
            RuleValue::Literal(ParamValue::Bool(true)),
            "always compress map output on shuffle-heavy clusters",
        ))
        .with(Rule::new(
            "snappy-codec",
            vec![SystemIs(SystemKind::Hadoop)],
            "compress_codec",
            RuleValue::Literal(ParamValue::Str("snappy".into())),
            "snappy: good ratio at negligible CPU",
        ))
        .with(Rule::new(
            "combiner-on",
            vec![SystemIs(SystemKind::Hadoop)],
            "use_combiner",
            RuleValue::Literal(ParamValue::Bool(true)),
            "rule of thumb — blind spot: useless for sort-type jobs",
        ))
        .with(Rule::new(
            "slowstart-overlap",
            vec![SystemIs(SystemKind::Hadoop)],
            "slowstart_completed_maps",
            RuleValue::Literal(ParamValue::Float(0.5)),
            "overlap shuffle with the second half of the map phase",
        ))
        .with(Rule::new(
            "more-parallel-copies",
            vec![SystemIs(SystemKind::Hadoop), MinNodes(4)],
            "shuffle_parallel_copies",
            RuleValue::Literal(ParamValue::Int(20)),
            "more fetch threads on larger clusters",
        ))
}

/// Rule book for the simulated Spark deployment.
pub fn spark_rulebook() -> RuleBook {
    use Condition::*;
    RuleBook::new()
        .with(Rule::new(
            "one-executor-per-node",
            vec![SystemIs(SystemKind::Spark)],
            "executor_instances",
            RuleValue::NodesTimes(1.0),
            "one fat executor per node as a starting point",
        ))
        .with(Rule::new(
            "five-cores-per-executor",
            vec![SystemIs(SystemKind::Spark)],
            "executor_cores",
            RuleValue::CoresTimes(0.625),
            "~5 cores per executor balances HDFS throughput and GC",
        ))
        .with(Rule::new(
            "executor-memory-most-of-node",
            vec![SystemIs(SystemKind::Spark)],
            "executor_memory_mb",
            RuleValue::MemFractionMb(0.6),
            "leave headroom for OS and overhead",
        ))
        .with(Rule::new(
            "partitions-2x-cores",
            vec![SystemIs(SystemKind::Spark)],
            "shuffle_partitions",
            RuleValue::TotalCoresTimes(2.0),
            "official guide: 2-3 tasks per core",
        ))
        .with(Rule::new(
            "parallelism-2x-cores",
            vec![SystemIs(SystemKind::Spark)],
            "default_parallelism",
            RuleValue::TotalCoresTimes(2.0),
            "official guide: 2-3 tasks per core",
        ))
        .with(Rule::new(
            "kryo",
            vec![SystemIs(SystemKind::Spark)],
            "serializer",
            RuleValue::Literal(ParamValue::Str("kryo".into())),
            "kryo is strictly better once registered",
        ))
        .with(Rule::new(
            "cache-heavy-iterative",
            vec![
                SystemIs(SystemKind::Spark),
                WorkloadIs(WorkloadClass::Iterative),
            ],
            "storage_fraction",
            RuleValue::Literal(ParamValue::Float(0.7)),
            "iterative jobs live or die by caching",
        ))
        .with(Rule::new(
            "shuffle-heavy-batch",
            vec![
                SystemIs(SystemKind::Spark),
                WorkloadIs(WorkloadClass::Batch),
            ],
            "storage_fraction",
            RuleValue::Literal(ParamValue::Float(0.2)),
            "batch queries need execution memory, not cache",
        ))
        .with(Rule::new(
            "broadcast-64mb",
            vec![SystemIs(SystemKind::Spark)],
            "broadcast_threshold_mb",
            RuleValue::Literal(ParamValue::Int(64)),
            "broadcast dimension tables aggressively",
        ))
}

/// Picks the rule book matching a profile's system kind.
pub fn rulebook_for(system: SystemKind) -> RuleBook {
    match system {
        SystemKind::Dbms => dbms_rulebook(),
        SystemKind::Hadoop => hadoop_rulebook(),
        SystemKind::Spark => spark_rulebook(),
        SystemKind::Other => RuleBook::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::engine::RuleBasedTuner;
    use autotune_core::{tune, Objective, Tuner};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::{DbmsSimulator, HadoopSimulator, SparkSimulator};

    #[test]
    fn dbms_rules_beat_defaults() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = RuleBasedTuner::new("dbms-rules", dbms_rulebook());
        let out = tune(&mut sim, &mut tuner, 1, 1);
        let tuned_rt = out.best.unwrap().runtime_secs;
        assert!(
            tuned_rt < default_rt * 0.8,
            "default={default_rt} rules={tuned_rt}"
        );
    }

    #[test]
    fn hadoop_rules_beat_defaults() {
        let mut sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = RuleBasedTuner::new("hadoop-rules", hadoop_rulebook());
        let out = tune(&mut sim, &mut tuner, 1, 1);
        let tuned_rt = out.best.unwrap().runtime_secs;
        assert!(
            tuned_rt < default_rt * 0.5,
            "default={default_rt} rules={tuned_rt}"
        );
    }

    #[test]
    fn spark_rules_beat_defaults() {
        let mut sim = SparkSimulator::aggregation_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = RuleBasedTuner::new("spark-rules", spark_rulebook());
        let out = tune(&mut sim, &mut tuner, 1, 1);
        let tuned_rt = out.best.unwrap().runtime_secs;
        assert!(
            tuned_rt < default_rt * 0.8,
            "default={default_rt} rules={tuned_rt}"
        );
    }

    #[test]
    fn rule_configs_are_valid_for_their_spaces() {
        use autotune_core::{SystemProfile, TuningContext};
        use rand::SeedableRng;
        let cases: Vec<(Box<dyn Objective>, RuleBook)> = vec![
            (Box::new(DbmsSimulator::oltp_default()), dbms_rulebook()),
            (
                Box::new(HadoopSimulator::terasort_default()),
                hadoop_rulebook(),
            ),
            (
                Box::new(SparkSimulator::aggregation_default()),
                spark_rulebook(),
            ),
        ];
        for (obj, book) in cases {
            let ctx = TuningContext {
                space: obj.space().clone(),
                profile: obj.profile(),
            };
            let mut t = RuleBasedTuner::new("x", book);
            let mut rng = rand::rngs::StdRng::seed_from_u64(0);
            let cfg = t.propose(&ctx, &autotune_core::History::new(), &mut rng);
            assert!(ctx.space.validate_config(&cfg).is_ok());
            let _ = SystemProfile::default();
        }
    }

    #[test]
    fn rulebook_for_dispatch() {
        assert!(!rulebook_for(SystemKind::Dbms).is_empty());
        assert!(!rulebook_for(SystemKind::Hadoop).is_empty());
        assert!(!rulebook_for(SystemKind::Spark).is_empty());
        assert!(rulebook_for(SystemKind::Other).is_empty());
    }
}
