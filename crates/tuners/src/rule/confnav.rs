//! ConfNav: knob navigation and impact ranking in the spirit of
//! Xu et al. (ESEC/FSE 2015, "Hey, You Have Given Me Too Many Knobs!").
//!
//! That work shows most exposed knobs are never worth touching and argues
//! for surfacing a small, ranked subset. `ConfNavTuner` reproduces the
//! workflow: a cheap one-at-a-time (OAT) probe of each knob at low /
//! default / high levels, an impact ranking from the observed spreads, and
//! a final configuration assembled from each knob's best probed level —
//! with only the top-ranked knobs moved off their defaults.

use autotune_core::{
    Configuration, History, KnobRanking, Recommendation, Tuner, TunerFamily, TuningContext,
};
use rand::rngs::StdRng;

/// Probe levels in unit-cube coordinates: the low / high settings the
/// one-at-a-time sweep visits for every knob (also exported as low-weight
/// prior hints by `autotune-lint --emit-constraints`).
pub const LEVELS: [f64; 2] = [0.15, 0.85];

/// One-at-a-time knob ranking + navigation tuner.
#[derive(Debug)]
pub struct ConfNavTuner {
    /// How many top knobs to move off defaults in the final config.
    pub top_k: usize,
    plan: Vec<(usize, f64)>, // (knob index, level) probes in order
    planned: bool,
}

impl ConfNavTuner {
    /// Creates the tuner; `top_k` knobs will be navigated.
    pub fn new(top_k: usize) -> Self {
        ConfNavTuner {
            top_k: top_k.max(1),
            plan: Vec::new(),
            planned: false,
        }
    }

    /// Total probes this tuner wants: one default run + 2 per knob.
    pub fn probes_needed(dim: usize) -> usize {
        1 + 2 * dim
    }

    /// Builds the ranking from a completed probe history (default run
    /// first, then `LEVELS` per knob in order).
    pub fn ranking(&self, ctx: &TuningContext, history: &History) -> KnobRanking {
        let dim = ctx.space.dim();
        let obs = history.all();
        let mut entries = Vec::with_capacity(dim);
        if obs.is_empty() {
            return KnobRanking::new(entries);
        }
        let default_rt = obs[0].runtime_secs;
        for (i, spec) in ctx.space.params().iter().enumerate() {
            let lo_idx = 1 + 2 * i;
            let hi_idx = lo_idx + 1;
            if hi_idx >= obs.len() {
                entries.push((spec.name.clone(), 0.0));
                continue;
            }
            let lo = obs[lo_idx].runtime_secs;
            let hi = obs[hi_idx].runtime_secs;
            // Impact: the spread this knob alone can cause, relative to
            // the default runtime.
            let spread =
                (lo.max(hi).max(default_rt) - lo.min(hi).min(default_rt)) / default_rt.max(1e-9);
            entries.push((spec.name.clone(), spread));
        }
        KnobRanking::new(entries)
    }

    fn best_levels(&self, ctx: &TuningContext, history: &History) -> Configuration {
        let obs = history.all();
        let mut config = ctx.space.default_config();
        if obs.is_empty() {
            return config;
        }
        let ranking = self.ranking(ctx, history);
        let default_rt = obs[0].runtime_secs;
        for name in ranking.top_k(self.top_k) {
            let Some(i) = ctx.space.index_of(name) else {
                continue; // ranking only names knobs of this space
            };
            let lo_idx = 1 + 2 * i;
            let hi_idx = lo_idx + 1;
            if hi_idx >= obs.len() {
                continue;
            }
            let lo = obs[lo_idx].runtime_secs;
            let hi = obs[hi_idx].runtime_secs;
            let (best_rt, level) = if lo < hi {
                (lo, LEVELS[0])
            } else {
                (hi, LEVELS[1])
            };
            if best_rt < default_rt {
                let spec = &ctx.space.params()[i];
                config.set(name, spec.domain.decode(level));
            }
        }
        config
    }
}

impl Tuner for ConfNavTuner {
    fn name(&self) -> &str {
        "confnav"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::RuleBased
    }

    fn min_history(&self) -> usize {
        3
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        if !self.planned {
            self.plan = (0..ctx.space.dim())
                .flat_map(|i| LEVELS.iter().map(move |&l| (i, l)))
                .collect();
            self.planned = true;
        }
        let step = history.len();
        if step == 0 {
            return ctx.space.default_config(); // baseline probe
        }
        let probe = step - 1;
        if probe < self.plan.len() {
            let (knob, level) = self.plan[probe];
            let mut point = ctx.space.encode(&ctx.space.default_config());
            point[knob] = level;
            return ctx.space.decode(&point);
        }
        // Probing done: propose the navigated configuration.
        self.best_levels(ctx, history)
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let config = self.best_levels(ctx, history);
        let ranking = self.ranking(ctx, history);
        Recommendation {
            config,
            expected_runtime: None,
            rationale: format!(
                "one-at-a-time navigation; top knobs: {}",
                ranking
                    .top_k(self.top_k)
                    .into_iter()
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, ParamSpec};

    fn objective() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        // x0 dominates, optimum near high x0 / low x1; x2 irrelevant.
        let space = ConfigSpace::new(vec![
            ParamSpec::float("big", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("medium", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("noise", 0.0, 1.0, 0.5, ""),
        ]);
        FunctionObjective::new(space, "weighted", |x| {
            10.0 * (1.0 - x[0]) + 2.0 * x[1] + 0.01 * x[2] + 1.0
        })
    }

    #[test]
    fn probes_needed_counts_baseline_plus_two_per_knob() {
        assert_eq!(ConfNavTuner::probes_needed(3), 7);
        assert_eq!(ConfNavTuner::probes_needed(12), 25);
    }

    #[test]
    fn full_workflow_ranks_and_improves() {
        let mut obj = objective();
        let mut t = ConfNavTuner::new(2);
        let probes = ConfNavTuner::probes_needed(3) + 3;
        let out = tune(&mut obj, &mut t, probes, 1);
        // Default runtime: 10*0.5 + 2*0.5 + 0.005 + 1 = 7.005.
        let default_rt = out.history.all()[0].runtime_secs;
        assert!((default_rt - 7.005).abs() < 1e-9);
        // Final proposals should beat the default decisively.
        let best = out.best.unwrap().runtime_secs;
        assert!(best < 3.0, "best={best}");
        assert!(out.recommendation.rationale.contains("big"));
    }

    #[test]
    fn irrelevant_knob_ranked_last() {
        let mut obj = objective();
        let mut t = ConfNavTuner::new(3);
        let probes = ConfNavTuner::probes_needed(3);
        let out = tune(&mut obj, &mut t, probes, 1);
        let ctx = TuningContext {
            space: obj_space(),
            profile: autotune_core::SystemProfile::default(),
        };
        let ranking = t.ranking(&ctx, &out.history);
        assert_eq!(ranking.names()[0], "big");
        assert_eq!(*ranking.names().last().unwrap(), "noise");
    }

    fn obj_space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::float("big", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("medium", 0.0, 1.0, 0.5, ""),
            ParamSpec::float("noise", 0.0, 1.0, 0.5, ""),
        ])
    }
}
