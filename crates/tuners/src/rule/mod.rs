//! **Category 1 — Rule-based tuning** (§2.1 of the tutorial): expert
//! knowledge encoded as typed rules ([`engine`], [`bestpractice`]),
//! SPEX-style constraint inference against misconfiguration ([`spex`]),
//! and ConfNav-style knob navigation/ranking ([`confnav`]).

pub mod bestpractice;
pub mod confnav;
pub mod engine;
pub mod spex;

pub use bestpractice::{dbms_rulebook, hadoop_rulebook, rulebook_for, spark_rulebook};
pub use confnav::ConfNavTuner;
pub use engine::{AppliedRule, Condition, Rule, RuleBasedTuner, RuleBook, RuleValue};
pub use spex::{Constraint, ConstraintSet, SpexTuner, Violation};
