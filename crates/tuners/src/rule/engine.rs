//! A typed rule engine for configuration tuning.
//!
//! Rule-based tuning (§2.1 category 1) encodes what human experts, vendor
//! tuning guides, and online checklists say: *"set the buffer pool to 25%
//! of RAM"*, *"enable intermediate compression on shuffle-heavy jobs"*.
//! Rules are conditions over the [`SystemProfile`] plus an action that
//! computes a knob value from the profile; the engine applies every
//! matching rule and clamps results into the knob domain.

use autotune_core::{
    ConfigSpace, Configuration, History, ParamValue, Recommendation, SystemKind, SystemProfile,
    Tuner, TunerFamily, TuningContext, WorkloadClass,
};
use rand::rngs::StdRng;

/// A predicate over the deployment profile.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always applies.
    Always,
    /// Target platform matches.
    SystemIs(SystemKind),
    /// Workload class matches.
    WorkloadIs(WorkloadClass),
    /// At least this many nodes.
    MinNodes(usize),
    /// Per-node memory at least this many MB.
    MinMemoryMb(f64),
    /// Storage is SSD-class (disk bandwidth above threshold MB/s).
    DiskFasterThan(f64),
    /// Input data at least this many MB.
    MinInputMb(f64),
}

impl Condition {
    /// Evaluates the predicate.
    pub fn matches(&self, p: &SystemProfile) -> bool {
        match self {
            Condition::Always => true,
            Condition::SystemIs(k) => p.system == *k,
            Condition::WorkloadIs(w) => p.workload == *w,
            Condition::MinNodes(n) => p.nodes >= *n,
            Condition::MinMemoryMb(m) => p.memory_per_node_mb >= *m,
            Condition::DiskFasterThan(mbps) => p.disk_mbps > *mbps,
            Condition::MinInputMb(m) => p.input_mb >= *m,
        }
    }
}

/// How a rule computes the knob value from the profile.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleValue {
    /// A literal value.
    Literal(ParamValue),
    /// `fraction` of per-node memory, in MB (integer knobs).
    MemFractionMb(f64),
    /// `factor × cores-per-node`, as an integer.
    CoresTimes(f64),
    /// `factor × total cluster cores`, as an integer.
    TotalCoresTimes(f64),
    /// `factor × node count`, as an integer.
    NodesTimes(f64),
}

impl RuleValue {
    /// Computes the concrete value for a profile.
    pub fn compute(&self, p: &SystemProfile) -> ParamValue {
        match self {
            RuleValue::Literal(v) => v.clone(),
            RuleValue::MemFractionMb(f) => {
                ParamValue::Int((p.memory_per_node_mb * f).round().max(1.0) as i64)
            }
            RuleValue::CoresTimes(f) => {
                ParamValue::Int((p.cores_per_node as f64 * f).round().max(0.0) as i64)
            }
            RuleValue::TotalCoresTimes(f) => {
                ParamValue::Int((p.total_cores() as f64 * f).round().max(1.0) as i64)
            }
            RuleValue::NodesTimes(f) => {
                ParamValue::Int((p.nodes as f64 * f).round().max(1.0) as i64)
            }
        }
    }
}

/// One expert rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Rule identifier (for the audit trail).
    pub name: String,
    /// All conditions must hold.
    pub conditions: Vec<Condition>,
    /// Knob this rule sets.
    pub knob: String,
    /// Value computation.
    pub value: RuleValue,
    /// Why the experts recommend this.
    pub rationale: String,
}

impl Rule {
    /// Builder convenience.
    pub fn new(
        name: &str,
        conditions: Vec<Condition>,
        knob: &str,
        value: RuleValue,
        rationale: &str,
    ) -> Self {
        Rule {
            name: name.to_string(),
            conditions,
            knob: knob.to_string(),
            value,
            rationale: rationale.to_string(),
        }
    }

    /// Whether this rule applies to a profile.
    pub fn applies(&self, p: &SystemProfile) -> bool {
        self.conditions.iter().all(|c| c.matches(p))
    }
}

/// A rule that fired, for the audit trail.
#[derive(Debug, Clone)]
pub struct AppliedRule {
    /// Rule name.
    pub rule: String,
    /// Knob that was set.
    pub knob: String,
    /// Value after domain clamping.
    pub value: ParamValue,
}

/// An ordered rule collection; later rules override earlier ones.
#[derive(Debug, Clone, Default)]
pub struct RuleBook {
    rules: Vec<Rule>,
}

impl RuleBook {
    /// Empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn with(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, in application order (later rules override earlier
    /// ones). Exposed so knowledge compilers (`autotune-lint
    /// --emit-constraints`) can turn rule actions into priors.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Applies every matching rule on top of the defaults, clamping values
    /// into each knob's domain. Returns the configuration and the audit
    /// trail of applied rules.
    pub fn apply(
        &self,
        space: &ConfigSpace,
        profile: &SystemProfile,
    ) -> (Configuration, Vec<AppliedRule>) {
        let mut config = space.default_config();
        let mut applied = Vec::new();
        for rule in &self.rules {
            if !rule.applies(profile) {
                continue;
            }
            let Some(spec) = space.spec(&rule.knob) else {
                continue; // rule for a knob this space doesn't expose
            };
            let raw = rule.value.compute(profile);
            // Clamp via encode-after-saturating: decode(encode) of an
            // in-domain value is identity; out-of-range numerics saturate.
            let value = clamp_into_domain(&spec.domain, raw);
            config.set(&rule.knob, value.clone());
            applied.push(AppliedRule {
                rule: rule.name.clone(),
                knob: rule.knob.clone(),
                value,
            });
        }
        (config, applied)
    }
}

/// Saturates a value into a domain (numeric clamp; categorical/bool pass
/// through if valid, else the default-ish first choice).
fn clamp_into_domain(domain: &autotune_core::ParamDomain, value: ParamValue) -> ParamValue {
    use autotune_core::ParamDomain as D;
    match (domain, &value) {
        (D::Int { min, max, .. }, ParamValue::Int(v)) => ParamValue::Int(*v.min(max).max(min)),
        (D::Float { min, max, .. }, ParamValue::Float(v)) => ParamValue::Float(v.clamp(*min, *max)),
        (D::Int { min, max, .. }, ParamValue::Float(v)) => {
            ParamValue::Int((v.round() as i64).clamp(*min, *max))
        }
        (D::Float { min, max, .. }, ParamValue::Int(v)) => {
            ParamValue::Float((*v as f64).clamp(*min, *max))
        }
        (D::Bool, ParamValue::Bool(_)) => value,
        (D::Categorical { choices }, ParamValue::Str(s)) if choices.contains(s) => value,
        (D::Categorical { choices }, _) => ParamValue::Str(choices[0].clone()),
        (D::Bool, _) => ParamValue::Bool(false),
        // Mistyped rule values (e.g. a Bool aimed at an Int knob): keep
        // the knob's default by signalling with the domain midpoint.
        (D::Int { .. } | D::Float { .. }, _) => domain.decode(0.5),
    }
}

/// The rule-based tuner: applies a [`RuleBook`] once and proposes the
/// resulting configuration (the session replays the duplicate proposals).
#[derive(Debug)]
pub struct RuleBasedTuner {
    book: RuleBook,
    label: String,
    last_applied: Vec<AppliedRule>,
}

impl RuleBasedTuner {
    /// Wraps a rule book.
    pub fn new(label: &str, book: RuleBook) -> Self {
        RuleBasedTuner {
            book,
            label: label.to_string(),
            last_applied: Vec::new(),
        }
    }

    /// Audit trail of the last application.
    pub fn applied_rules(&self) -> &[AppliedRule] {
        &self.last_applied
    }
}

impl Tuner for RuleBasedTuner {
    fn name(&self) -> &str {
        &self.label
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::RuleBased
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        let (config, applied) = self.book.apply(&ctx.space, &ctx.profile);
        self.last_applied = applied;
        config
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let (config, applied) = self.book.apply(&ctx.space, &ctx.profile);
        let expected = history
            .all()
            .iter()
            .find(|o| o.config == config)
            .map(|o| o.runtime_secs);
        Recommendation {
            config,
            expected_runtime: expected,
            rationale: format!(
                "{} expert rules fired: {}",
                applied.len(),
                applied
                    .iter()
                    .map(|a| a.rule.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::ParamSpec;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::int_log("buffer_mb", 64, 65536, 128, ""),
            ParamSpec::int("workers", 0, 32, 2, ""),
            ParamSpec::boolean("compress", false, ""),
        ])
    }

    fn profile() -> SystemProfile {
        SystemProfile {
            system: SystemKind::Dbms,
            workload: WorkloadClass::Olap,
            memory_per_node_mb: 16384.0,
            cores_per_node: 8,
            nodes: 1,
            disk_mbps: 200.0,
            network_mbps: 1000.0,
            input_mb: 10_000.0,
        }
    }

    #[test]
    fn conditions_evaluate() {
        let p = profile();
        assert!(Condition::Always.matches(&p));
        assert!(Condition::SystemIs(SystemKind::Dbms).matches(&p));
        assert!(!Condition::SystemIs(SystemKind::Spark).matches(&p));
        assert!(Condition::MinMemoryMb(8192.0).matches(&p));
        assert!(!Condition::MinNodes(2).matches(&p));
        assert!(!Condition::DiskFasterThan(300.0).matches(&p));
    }

    #[test]
    fn mem_fraction_rule_fires_and_clamps() {
        let book = RuleBook::new().with(Rule::new(
            "buffer-25pct",
            vec![Condition::SystemIs(SystemKind::Dbms)],
            "buffer_mb",
            RuleValue::MemFractionMb(0.25),
            "classic 25% of RAM guidance",
        ));
        let (cfg, applied) = book.apply(&space(), &profile());
        assert_eq!(cfg.i64("buffer_mb"), 4096);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].rule, "buffer-25pct");
    }

    #[test]
    fn out_of_domain_values_saturate() {
        let book = RuleBook::new().with(Rule::new(
            "huge",
            vec![Condition::Always],
            "buffer_mb",
            RuleValue::MemFractionMb(100.0), // 1.6 TB on a 16 GB box
            "",
        ));
        let (cfg, _) = book.apply(&space(), &profile());
        assert_eq!(cfg.i64("buffer_mb"), 65536, "clamped to domain max");
    }

    #[test]
    fn non_matching_rules_leave_defaults() {
        let book = RuleBook::new().with(Rule::new(
            "spark-only",
            vec![Condition::SystemIs(SystemKind::Spark)],
            "workers",
            RuleValue::CoresTimes(1.0),
            "",
        ));
        let (cfg, applied) = book.apply(&space(), &profile());
        assert!(applied.is_empty());
        assert_eq!(cfg.i64("workers"), 2);
    }

    #[test]
    fn later_rules_override() {
        let book = RuleBook::new()
            .with(Rule::new(
                "a",
                vec![Condition::Always],
                "workers",
                RuleValue::Literal(ParamValue::Int(4)),
                "",
            ))
            .with(Rule::new(
                "b",
                vec![Condition::Always],
                "workers",
                RuleValue::CoresTimes(1.0),
                "",
            ));
        let (cfg, applied) = book.apply(&space(), &profile());
        assert_eq!(cfg.i64("workers"), 8);
        assert_eq!(applied.len(), 2);
    }

    #[test]
    fn rules_for_unknown_knobs_skipped() {
        let book = RuleBook::new().with(Rule::new(
            "alien",
            vec![Condition::Always],
            "no_such_knob",
            RuleValue::Literal(ParamValue::Int(1)),
            "",
        ));
        let (cfg, applied) = book.apply(&space(), &profile());
        assert!(applied.is_empty());
        assert!(space().validate_config(&cfg).is_ok());
    }

    #[test]
    fn tuner_proposes_rule_config() {
        use rand::SeedableRng;
        let book = RuleBook::new().with(Rule::new(
            "c",
            vec![Condition::Always],
            "compress",
            RuleValue::Literal(ParamValue::Bool(true)),
            "",
        ));
        let mut t = RuleBasedTuner::new("rules", book);
        let ctx = TuningContext {
            space: space(),
            profile: profile(),
        };
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = t.propose(&ctx, &History::new(), &mut rng);
        assert!(cfg.bool("compress"));
        assert_eq!(t.applied_rules().len(), 1);
        let rec = t.recommend(&ctx, &History::new());
        assert!(rec.rationale.contains('c'));
    }
}
