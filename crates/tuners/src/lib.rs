//! # autotune-tuners
//!
//! The six families of automatic parameter tuning approaches surveyed by
//! Lu, Chen, Herodotou & Babu (VLDB 2019), each implemented as
//! [`autotune_core::Tuner`]s plus the standalone analyses the original
//! systems provide:
//!
//! | Module | Category | Systems reproduced |
//! |---|---|---|
//! | [`rule`] | rule-based | best-practice rule books, SPEX, ConfNav |
//! | [`cost`] | cost modeling | STMM, Starfish-style what-if |
//! | [`simulation`] | simulation-based | trace replay (Narayanan), ADDM |
//! | [`experiment`] | experiment-driven | SARD, adaptive sampling, iTuned, RRS |
//! | [`ml`] | machine learning | OtterTune, Rodd NN, Ernest |
//! | [`adaptive`] | adaptive | COLT, online memory manager, dynamic partitioning |
//! | [`baselines`] | — | defaults, random search, grid search |
//!
//! [`warm`] holds the cross-session transfer primitives: distilling a past
//! observation log into seed configurations and building GP tuners
//! pre-loaded with a past session (the `autotune-serve` warm-start path).

#![warn(missing_docs)]

pub mod adaptive;
pub mod baselines;
pub mod cost;
pub mod experiment;
pub mod ml;
pub mod rule;
pub mod simulation;
pub mod util;
pub mod warm;
