//! An analytical Spark cost model in the Starfish mould: estimate an
//! application profile from one profiled run, then search the model for a
//! recommended configuration (§2.4 approaches of this kind include
//! Ernest-style analytic predictors and the what-if engines ported from
//! the MapReduce world).

use autotune_core::{
    Configuration, History, Observation, Recommendation, SystemProfile, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// Application profile estimated from one profiled Spark run.
#[derive(Debug, Clone)]
pub struct SparkAppProfile {
    /// Input size (MB).
    pub input_mb: f64,
    /// CPU core-ms per MB processed.
    pub cpu_ms_per_mb: f64,
    /// Shuffle bytes per input byte.
    pub shuffle_ratio: f64,
    /// Rounds (iterations × stages) approximated from task counts.
    pub work_multiplier: f64,
}

impl SparkAppProfile {
    /// Estimates the profile from a profiling observation.
    pub fn estimate(obs: &Observation, profile: &SystemProfile) -> Self {
        let input_mb = profile.input_mb.max(1.0);
        let metric = |k: &str, d: f64| obs.metrics.get(k).copied().unwrap_or(d);
        let shuffle_mb = metric("shuffle_mb", input_mb * 0.3);
        let slots = metric("slots", 2.0).max(1.0);
        let tasks = metric("tasks", 200.0);
        // Total work ≈ runtime × slots; subtract scheduling overhead.
        let overhead = metric("task_overhead_secs", 0.0);
        let work_core_secs = (obs.runtime_secs - overhead).max(1.0) * slots * 0.7;
        let work_multiplier = (tasks / 200.0).clamp(0.5, 50.0);
        SparkAppProfile {
            input_mb,
            cpu_ms_per_mb: (work_core_secs * 1000.0 / (input_mb * work_multiplier))
                .clamp(0.5, 200.0),
            shuffle_ratio: (shuffle_mb / input_mb).clamp(0.001, 4.0),
            work_multiplier,
        }
    }
}

/// The analytic Spark cost model.
#[derive(Debug, Clone)]
pub struct SparkCostModel {
    /// Estimated application profile.
    pub app: SparkAppProfile,
    /// Deployment description.
    pub profile: SystemProfile,
}

impl SparkCostModel {
    /// Predicted runtime (seconds) under a configuration.
    pub fn predict(&self, config: &Configuration) -> f64 {
        let p = &self.profile;
        let a = &self.app;
        let instances = config.f64("executor_instances");
        let cores = config.f64("executor_cores");
        let exec_mem = config.f64("executor_memory_mb");
        let parts = config.f64("shuffle_partitions").max(1.0);
        let mem_fraction = config.f64("memory_fraction");
        let storage_fraction = config.f64("storage_fraction");
        let serializer = config.str("serializer");
        let overhead_factor = config.f64("memory_overhead_factor");

        let total_mem = p.memory_per_node_mb * p.nodes as f64;
        if instances * exec_mem * (1.0 + overhead_factor) > total_mem {
            return 1e7; // the cluster manager refuses the allocation
        }
        let total_cores = p.total_cores() as f64;
        let slots = (instances * cores).max(1.0);
        let contention = (instances * cores / total_cores).max(1.0);

        let (ser_size, ser_cpu) = if serializer == "kryo" {
            (0.6, 2.0)
        } else {
            (1.0, 6.0)
        };
        let gc = 1.0 + if serializer == "java" { 0.12 } else { 0.04 };

        let work_mb = a.input_mb * a.work_multiplier;
        let cpu_secs =
            work_mb * (a.cpu_ms_per_mb + ser_cpu * 0.3) / 1000.0 * gc * contention / slots;
        let read_secs = a.input_mb / (p.disk_mbps * p.nodes as f64).max(1.0);

        // Spill when a task's working set exceeds its execution share.
        let exec_share = exec_mem * mem_fraction * (1.0 - storage_fraction * 0.5) / cores.max(1.0);
        let per_task_mb = a.input_mb / parts * ser_size * 1.5;
        let spill_mb = (per_task_mb - exec_share).max(0.0) * parts;
        let spill_secs = 2.0 * spill_mb / (p.disk_mbps * p.nodes as f64).max(1.0);

        let shuffle_mb = a.input_mb * a.shuffle_ratio * ser_size;
        let shuffle_secs = shuffle_mb / (p.nodes as f64 * p.network_mbps * 0.5).max(1.0);
        // Per-task launch overhead, amortized across the slots.
        let sched_secs = parts * a.work_multiplier * 0.05 / slots;

        4.0 + cpu_secs + read_secs + spill_secs + shuffle_secs + sched_secs
    }
}

/// Profiling-run → model → recommendation tuner for Spark.
#[derive(Debug, Default)]
pub struct SparkCostTuner {
    model: Option<SparkCostModel>,
    candidates: Vec<Configuration>,
    cursor: usize,
}

impl SparkCostTuner {
    /// Creates the tuner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted model, after the profiling run.
    pub fn model(&self) -> Option<&SparkCostModel> {
        self.model.as_ref()
    }
}

impl Tuner for SparkCostTuner {
    fn name(&self) -> &str {
        "spark-cost-model"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::CostModeling
    }

    fn min_history(&self) -> usize {
        1
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        if history.is_empty() {
            return ctx.space.default_config();
        }
        if self.model.is_none() {
            let app = SparkAppProfile::estimate(&history.all()[0], &ctx.profile);
            let model = SparkCostModel {
                app,
                profile: ctx.profile.clone(),
            };
            let mut scored: Vec<(f64, Configuration)> = (0..2000)
                .map(|_| {
                    let c = ctx.space.random_config(rng);
                    (model.predict(&c), c)
                })
                .collect();
            scored.sort_by(|x, y| x.0.total_cmp(&y.0));
            self.candidates = scored.into_iter().take(8).map(|(_, c)| c).collect();
            self.model = Some(model);
        }
        let c = self
            .candidates
            .get(self.cursor.min(self.candidates.len().saturating_sub(1)))
            .cloned()
            .unwrap_or_else(|| ctx.space.default_config());
        self.cursor += 1;
        c
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: "best of analytic-model-recommended candidates".into(),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no runs".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::SparkSimulator;

    #[test]
    fn spark_cost_tuner_beats_defaults_quickly() {
        let mut sim = SparkSimulator::aggregation_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = SparkCostTuner::new();
        let out = tune(&mut sim, &mut tuner, 6, 3);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < default_rt * 0.5,
            "default={default_rt} cost-model={best}"
        );
        assert!(tuner.model().is_some());
    }

    #[test]
    fn model_rejects_over_allocation() {
        use autotune_core::ParamValue;
        use rand::SeedableRng;
        let mut sim = SparkSimulator::aggregation_default().with_noise(NoiseModel::none());
        let default = sim.space().default_config();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let obs = sim.evaluate(&default, &mut rng);
        let model = SparkCostModel {
            app: SparkAppProfile::estimate(&obs, &sim.profile()),
            profile: sim.profile(),
        };
        let mut huge = default.clone();
        huge.set("executor_instances", ParamValue::Int(32));
        huge.set("executor_memory_mb", ParamValue::Int(65536));
        assert!(model.predict(&huge) >= 1e7);
        assert!(model.predict(&default) < 1e6);
    }

    #[test]
    fn model_prefers_kryo_and_parallelism() {
        use autotune_core::ParamValue;
        use rand::SeedableRng;
        let mut sim = SparkSimulator::aggregation_default().with_noise(NoiseModel::none());
        let default = sim.space().default_config();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let obs = sim.evaluate(&default, &mut rng);
        let model = SparkCostModel {
            app: SparkAppProfile::estimate(&obs, &sim.profile()),
            profile: sim.profile(),
        };
        let mut scaled = default.clone();
        scaled.set("executor_instances", ParamValue::Int(8));
        scaled.set("executor_cores", ParamValue::Int(4));
        scaled.set("executor_memory_mb", ParamValue::Int(8192));
        assert!(model.predict(&scaled) < model.predict(&default));
        let mut kryo = scaled.clone();
        kryo.set("serializer", ParamValue::Str("kryo".into()));
        assert!(model.predict(&kryo) < model.predict(&scaled));
    }
}
