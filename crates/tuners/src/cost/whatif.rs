//! Starfish-style profile → what-if → recommend tuning for MapReduce
//! (Herodotou & Babu, PVLDB 2011; Starfish, CIDR 2011).
//!
//! The workflow: run the job once under the current configuration with
//! profiling on, estimate a *job profile* (data-flow ratios and CPU
//! rates), then answer what-if questions with an analytical cost model
//! and search that model (it costs microseconds per candidate, so the
//! search is free) for the recommended configuration. Only the profiling
//! run touches the real system.

use autotune_core::{
    ConfigSpace, Configuration, History, Observation, Recommendation, SystemProfile, Tuner,
    TunerFamily, TuningContext,
};
use rand::rngs::StdRng;

/// A MapReduce job profile, estimated from one profiled run.
#[derive(Debug, Clone)]
pub struct JobProfile {
    /// Input size (MB).
    pub input_mb: f64,
    /// Map output / input ratio (post-combiner, uncompressed).
    pub map_output_ratio: f64,
    /// Map CPU cost per input MB (core-ms).
    pub map_cpu_ms_per_mb: f64,
    /// Reduce CPU cost per shuffled MB (core-ms).
    pub reduce_cpu_ms_per_mb: f64,
    /// Job output / shuffle ratio.
    pub output_ratio: f64,
}

impl JobProfile {
    /// Estimates the profile from the profiling run's observation and the
    /// deployment profile. Metric names follow `autotune-sim`'s Hadoop
    /// engine (a real deployment would read task counters).
    pub fn estimate(obs: &Observation, profile: &SystemProfile) -> Self {
        let input_mb = profile.input_mb.max(1.0);
        let metric = |k: &str, d: f64| obs.metrics.get(k).copied().unwrap_or(d);
        let maps = metric("maps", 1.0).max(1.0);
        let shuffle_mb = metric("shuffle_mb", input_mb * 0.5);
        let map_task_secs = metric("map_task_secs", 10.0);
        let reduce_task_secs = metric("reduce_task_secs", 10.0);
        let spills = metric("spills", maps) / maps;
        let merge_passes = metric("merge_passes", 0.0);
        let reduce_merge_passes = metric("reduce_merge_passes", 0.0);
        let skew = metric("skew_factor", 1.0);

        let split_mb = input_mb / maps;
        let out_per_map = shuffle_mb / maps;
        // Back out the map CPU rate: observed task time minus the I/O the
        // counters explain (split read + spill/merge traffic) minus task
        // launch overhead.
        let spill_io = out_per_map * (spills - 1.0).max(0.0) / spills.max(1.0)
            + out_per_map * (1.0 + 2.0 * merge_passes);
        let map_io_secs = (split_mb + spill_io) / profile.disk_mbps;
        let map_cpu_ms_per_mb =
            ((map_task_secs - map_io_secs - 1.0).max(0.05) * 1000.0 / split_mb).clamp(0.5, 100.0);

        // Reduce side: counters tell us the per-reduce volume directly.
        let reduces = obs
            .config
            .get("reduce_tasks")
            .and_then(|v| v.as_f64())
            .unwrap_or(1.0)
            .max(1.0);
        let output_ratio = 0.5; // unknown without output counters
        let per_reduce = (shuffle_mb / reduces * skew).max(1.0);
        let reduce_io_secs = (per_reduce * 2.0 * reduce_merge_passes
            + per_reduce * output_ratio * 2.0)
            / profile.disk_mbps;
        let reduce_cpu_ms_per_mb = ((reduce_task_secs - reduce_io_secs - 1.0).max(0.05) * 1000.0
            / per_reduce)
            .clamp(0.5, 100.0);

        JobProfile {
            input_mb,
            map_output_ratio: (shuffle_mb / input_mb).clamp(0.001, 4.0),
            map_cpu_ms_per_mb,
            reduce_cpu_ms_per_mb,
            output_ratio,
        }
    }
}

/// The analytical MapReduce cost model the what-if engine evaluates.
/// Deliberately simpler than the "real system" (`autotune-sim`'s engine):
/// homogeneous nodes, no skew, no slow-start subtleties — which is exactly
/// the weakness Table 1 lists for cost modeling ("not effective on
/// heterogeneous clusters", "simplified assumptions").
#[derive(Debug, Clone)]
pub struct MrCostModel {
    /// Estimated job profile.
    pub job: JobProfile,
    /// Deployment (homogeneous view: mean node).
    pub profile: SystemProfile,
}

impl MrCostModel {
    /// Predicted job runtime (seconds) under a configuration.
    pub fn predict(&self, config: &Configuration) -> f64 {
        let p = &self.profile;
        let j = &self.job;
        let nodes = p.nodes as f64;

        let io_sort_mb = config.f64("io_sort_mb");
        let io_sort_factor = config.f64("io_sort_factor");
        let reduce_tasks = config.f64("reduce_tasks").max(1.0);
        let map_slots = config.f64("map_slots_per_node");
        let reduce_slots = config.f64("reduce_slots_per_node");
        let compress = config.bool("compress_map_output");
        let codec = config.str("compress_codec");
        let slowstart = config.f64("slowstart_completed_maps");
        let combiner = config.bool("use_combiner");
        let split_mb = config.f64("split_size_mb");
        let copies = config.f64("shuffle_parallel_copies");
        let map_heap = config.f64("map_heap_mb");
        let reduce_heap = config.f64("reduce_heap_mb");

        // Infeasible settings get the same penalty shape as reality.
        let committed = map_slots * map_heap + reduce_slots * reduce_heap + 1024.0;
        if committed > p.memory_per_node_mb * 1.3 || io_sort_mb > map_heap * 0.7 {
            return 1e7;
        }

        let (codec_ratio, codec_cpu_ms) = match codec {
            "zlib" => (0.35, 18.0),
            "snappy" => (0.55, 3.0),
            _ => (0.60, 1.5),
        };

        let maps = (j.input_mb / split_mb).ceil().max(1.0);
        let map_waves = (maps / (map_slots * nodes).max(1.0)).ceil();
        let out_per_map_raw = split_mb * j.map_output_ratio;
        // The model does not know the job's true combiner reduction — it
        // assumes a generic 30% when enabled (a documented blind spot).
        let out_per_map = if combiner {
            out_per_map_raw * 0.7
        } else {
            out_per_map_raw
        };
        let spills = (out_per_map_raw / (io_sort_mb * 0.8)).ceil().max(1.0);
        let merge_passes = if spills > 1.0 {
            (spills.ln() / io_sort_factor.ln()).ceil().max(1.0)
        } else {
            0.0
        };
        let out_compressed = if compress {
            out_per_map * codec_ratio
        } else {
            out_per_map
        };
        let compress_cpu = if compress {
            out_per_map * codec_cpu_ms / 1000.0
        } else {
            0.0
        };
        let spill_io = out_per_map_raw * (spills - 1.0).max(0.0) / spills
            + out_compressed * (1.0 + 2.0 * merge_passes);
        let map_task = split_mb / p.disk_mbps
            + split_mb * j.map_cpu_ms_per_mb / 1000.0
            + compress_cpu
            + spill_io / p.disk_mbps
            + 1.0;
        let map_phase = map_task * map_waves;

        let shuffle_mb = out_compressed * maps;
        let fetch_rate = (reduce_tasks * copies * 10.0).min(nodes * p.network_mbps * 0.5);
        let shuffle_raw = shuffle_mb / fetch_rate.max(1.0);
        let overlap = (1.0 - slowstart).clamp(0.0, 1.0) * 0.9;
        let shuffle = shuffle_raw * (1.0 - overlap) + shuffle_raw * overlap * 0.1;

        let reduce_waves = (reduce_tasks / (reduce_slots * nodes).max(1.0)).ceil();
        let per_reduce = shuffle_mb / reduce_tasks;
        let reduce_buffer = reduce_heap * 0.5;
        let reduce_merge_passes = if per_reduce > reduce_buffer {
            ((per_reduce / reduce_buffer).ln() / io_sort_factor.ln())
                .ceil()
                .max(1.0)
        } else {
            0.0
        };
        let decompress_cpu_ms = if compress { codec_cpu_ms * 0.3 } else { 0.0 };
        let reduce_task = per_reduce * (j.reduce_cpu_ms_per_mb + decompress_cpu_ms) / 1000.0
            + per_reduce * 2.0 * reduce_merge_passes / p.disk_mbps
            + per_reduce * j.output_ratio * 2.0 / p.disk_mbps
            + 1.0;
        let reduce_phase = reduce_task * reduce_waves;

        8.0 + map_phase + shuffle + reduce_phase
    }
}

/// The Starfish-style tuner: profiling run, then model search, then a
/// handful of model-optimal candidates validated on the real system.
#[derive(Debug, Default)]
pub struct WhatIfTuner {
    model: Option<MrCostModel>,
    candidates: Vec<Configuration>,
    cursor: usize,
}

impl WhatIfTuner {
    /// Creates the tuner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted cost model, once the profiling run happened.
    pub fn model(&self) -> Option<&MrCostModel> {
        self.model.as_ref()
    }

    fn search_model(
        &self,
        model: &MrCostModel,
        space: &ConfigSpace,
        rng: &mut StdRng,
        top: usize,
    ) -> Vec<Configuration> {
        let mut scored: Vec<(f64, Configuration)> = (0..2000)
            .map(|_| {
                let c = space.random_config(rng);
                (model.predict(&c), c)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        scored.into_iter().take(top).map(|(_, c)| c).collect()
    }
}

impl Tuner for WhatIfTuner {
    fn name(&self) -> &str {
        "starfish-whatif"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::CostModeling
    }

    fn min_history(&self) -> usize {
        1
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        if history.is_empty() {
            return ctx.space.default_config(); // the profiling run
        }
        if self.model.is_none() {
            let profiling_run = &history.all()[0];
            let job = JobProfile::estimate(profiling_run, &ctx.profile);
            let model = MrCostModel {
                job,
                profile: ctx.profile.clone(),
            };
            self.candidates = self.search_model(&model, &ctx.space, rng, 8);
            self.model = Some(model);
        }
        let c = self
            .candidates
            .get(self.cursor.min(self.candidates.len().saturating_sub(1)))
            .cloned()
            .unwrap_or_else(|| ctx.space.default_config());
        self.cursor += 1;
        c
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let best = history.best();
        match best {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: "best of model-recommended candidates (what-if search)".into(),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no runs yet".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::cluster::ClusterSpec;
    use autotune_sim::hadoop::{HadoopJob, HadoopSimulator};
    use autotune_sim::noise::NoiseModel;
    use rand::{RngExt as _, SeedableRng};

    #[test]
    fn whatif_beats_defaults_with_tiny_budget() {
        let mut sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = WhatIfTuner::new();
        // 1 profiling run + 5 validations — the whole point of cost models
        // is needing almost no real runs.
        let out = tune(&mut sim, &mut tuner, 6, 3);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < default_rt * 0.4,
            "default={default_rt} whatif={best}"
        );
    }

    #[test]
    fn model_prediction_correlates_with_simulator() {
        let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let default = sim.space().default_config();
        let obs_run = sim.simulate(&default);
        let obs = Observation {
            config: default.clone(),
            runtime_secs: obs_run.runtime_secs,
            cost: obs_run.runtime_secs,
            metrics: obs_run.metrics,
            failed: false,
        };
        let model = MrCostModel {
            job: JobProfile::estimate(&obs, &sim.profile()),
            profile: sim.profile(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut pred = Vec::new();
        let mut actual = Vec::new();
        for _ in 0..120 {
            let mut c = sim.space().random_config(&mut rng);
            // Keep the memory knobs feasible so the comparison exercises
            // the interesting (non-cliff) region of the space.
            use autotune_core::ParamValue;
            c.set(
                "map_slots_per_node",
                ParamValue::Int(rng.random_range(1..=4)),
            );
            c.set(
                "reduce_slots_per_node",
                ParamValue::Int(rng.random_range(1..=2)),
            );
            c.set("map_heap_mb", ParamValue::Int(2048));
            c.set("reduce_heap_mb", ParamValue::Int(2048));
            c.set("io_sort_mb", ParamValue::Int(rng.random_range(32..=1024)));
            let p = model.predict(&c);
            let run = sim.simulate(&c);
            // Compare on the feasible region; both sides agree that
            // infeasible configs are catastrophic, which would dominate
            // the rank correlation.
            if p < 1e6 && !run.failed {
                pred.push(p);
                actual.push(run.runtime_secs);
            }
        }
        assert!(pred.len() >= 15, "too few feasible samples: {}", pred.len());
        let rho = autotune_math::stats::spearman(&pred, &actual);
        assert!(rho > 0.5, "model rank-correlation too weak: {rho}");
    }

    #[test]
    fn model_error_grows_on_heterogeneous_cluster() {
        // Table 1: cost modeling is "not effective on heterogeneous
        // clusters" — the model assumes the mean node.
        let homo = HadoopSimulator::new(
            ClusterSpec::homogeneous(6, autotune_sim::NodeSpec::default()),
            HadoopJob::terasort(16_384.0),
        )
        .with_noise(NoiseModel::none());
        let hetero =
            HadoopSimulator::new(ClusterSpec::heterogeneous(6), HadoopJob::terasort(16_384.0))
                .with_noise(NoiseModel::none());

        let err = |sim: &HadoopSimulator| {
            let default = sim.space().default_config();
            let run = sim.simulate(&default);
            let obs = Observation {
                config: default.clone(),
                runtime_secs: run.runtime_secs,
                cost: run.runtime_secs,
                metrics: run.metrics,
                failed: false,
            };
            let model = MrCostModel {
                job: JobProfile::estimate(&obs, &sim.profile()),
                profile: sim.profile(),
            };
            let mut rng = StdRng::seed_from_u64(7);
            let mut errs = Vec::new();
            for _ in 0..30 {
                let c = sim.space().random_config(&mut rng);
                let p = model.predict(&c);
                let a = sim.simulate(&c).runtime_secs;
                if p < 1e6 && a < 1e6 {
                    errs.push(((p - a) / a).abs());
                }
            }
            autotune_math::stats::median(&errs)
        };
        let e_homo = err(&homo);
        let e_hetero = err(&hetero);
        assert!(
            e_hetero > e_homo,
            "hetero error {e_hetero} should exceed homo error {e_homo}"
        );
    }

    #[test]
    fn infeasible_configs_predicted_catastrophic() {
        let sim = HadoopSimulator::terasort_default();
        let model = MrCostModel {
            job: JobProfile {
                input_mb: 32_768.0,
                map_output_ratio: 1.0,
                map_cpu_ms_per_mb: 3.0,
                reduce_cpu_ms_per_mb: 5.0,
                output_ratio: 1.0,
            },
            profile: sim.profile(),
        };
        let mut c = sim.space().default_config();
        c.set("map_slots_per_node", autotune_core::ParamValue::Int(32));
        c.set("map_heap_mb", autotune_core::ParamValue::Int(8192));
        assert!(model.predict(&c) >= 1e7);
    }
}
