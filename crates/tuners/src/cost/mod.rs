//! **Category 2 — Cost modeling** (§2.1): analytical performance models
//! built from an understanding of system internals. [`stmm`] reproduces
//! DB2's self-tuning memory manager; [`whatif`] reproduces the Starfish
//! profile → what-if → recommend pipeline for MapReduce; [`spark_model`]
//! ports the same workflow to Spark; [`mrtuner`] reproduces MRTuner's
//! Producer-Transporter-Consumer balance model.

pub mod elastisizer;
pub mod mrtuner;
pub mod spark_model;
pub mod stmm;
pub mod whatif;

pub use elastisizer::{Elastisizer, InstanceType, ProvisioningPlan};
pub use mrtuner::{MrTuner, PtcModel, PtcRates};
pub use spark_model::{SparkAppProfile, SparkCostModel, SparkCostTuner};
pub use stmm::{MemoryPool, StmmModel, StmmTuner};
pub use whatif::{JobProfile, MrCostModel, WhatIfTuner};
