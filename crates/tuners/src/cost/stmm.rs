//! STMM-style cost–benefit memory tuning (Storm et al., VLDB 2006:
//! "Adaptive Self-Tuning Memory in DB2").
//!
//! STMM treats every memory consumer (buffer pool, sort heap, maintenance
//! area, WAL buffer) as an investment opportunity with a *marginal
//! benefit* curve — seconds of I/O saved per MB granted — and greedily
//! moves memory toward the highest marginal benefit until the budget is
//! exhausted. This offline variant computes the allocation from an
//! analytic model of each consumer; the online variant (same math, driven
//! by observed metrics) lives in [`crate::adaptive::online_memory`].

use autotune_core::{
    Configuration, History, ParamValue, Recommendation, SystemProfile, Tuner, TunerFamily,
    TuningContext, WorkloadClass,
};
use rand::rngs::StdRng;

/// The memory consumers STMM arbitrates between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPool {
    /// `shared_buffers_mb`.
    BufferPool,
    /// `work_mem_mb` (multiplied by concurrent sorts).
    SortHeap,
    /// `maintenance_work_mem_mb`.
    Maintenance,
    /// `wal_buffers_mb`.
    WalBuffer,
}

impl MemoryPool {
    /// All pools.
    pub fn all() -> [MemoryPool; 4] {
        [
            MemoryPool::BufferPool,
            MemoryPool::SortHeap,
            MemoryPool::Maintenance,
            MemoryPool::WalBuffer,
        ]
    }

    /// The knob this pool maps to.
    pub fn knob(&self) -> &'static str {
        match self {
            MemoryPool::BufferPool => "shared_buffers_mb",
            MemoryPool::SortHeap => "work_mem_mb",
            MemoryPool::Maintenance => "maintenance_work_mem_mb",
            MemoryPool::WalBuffer => "wal_buffers_mb",
        }
    }
}

/// STMM's internal model of the deployment.
#[derive(Debug, Clone)]
pub struct StmmModel {
    /// Estimated hot working set (MB).
    pub working_set_mb: f64,
    /// Estimated size of a typical sort/hash input (MB).
    pub sort_input_mb: f64,
    /// Estimated concurrent sorts (sessions actively sorting).
    pub concurrent_sorts: f64,
    /// Random read ops the workload issues (per run).
    pub random_ops: f64,
    /// Device IOPS.
    pub iops: f64,
    /// Sequential bandwidth MB/s.
    pub disk_mbps: f64,
    /// Number of sort-heavy queries per run.
    pub sorts_per_run: f64,
}

impl StmmModel {
    /// Builds the model from the deployment profile (this is where a cost
    /// model's assumptions live — and where it goes wrong on workloads
    /// that deviate from them; cf. Table 1 "models often based on
    /// simplified assumptions").
    pub fn from_profile(profile: &SystemProfile) -> Self {
        let (ws_frac, sort_frac, conc, rand_ops, sorts) = match profile.workload {
            WorkloadClass::Oltp => (0.10, 0.02, 32.0, 250_000.0, 300.0),
            WorkloadClass::Olap => (0.16, 0.40, 4.0, 2_000.0, 50.0),
            _ => (0.13, 0.20, 16.0, 100_000.0, 100.0),
        };
        StmmModel {
            working_set_mb: profile.input_mb * ws_frac,
            sort_input_mb: profile.input_mb * sort_frac,
            concurrent_sorts: conc,
            random_ops: rand_ops,
            iops: (profile.disk_mbps * 3.0).max(100.0), // crude IOPS guess
            disk_mbps: profile.disk_mbps,
            sorts_per_run: sorts,
        }
    }

    /// Predicted I/O cost (seconds) attributable to a pool at a given
    /// size; the greedy allocator descends these curves.
    pub fn pool_cost_secs(&self, pool: MemoryPool, size_mb: f64) -> f64 {
        match pool {
            MemoryPool::BufferPool => {
                // Miss-curve model identical in *shape* to real buffer
                // pools: exponential-decay misses.
                let hit = 1.0 - 0.95 * (-2.2 * size_mb / self.working_set_mb.max(1.0)).exp();
                self.random_ops * (1.0 - hit) / self.iops
            }
            MemoryPool::SortHeap => {
                // External-sort I/O: extra read+write passes while the
                // input exceeds the per-sort grant.
                if size_mb >= self.sort_input_mb {
                    0.0
                } else {
                    // Continuous pass count: the expected number of extra
                    // read+write passes of an external merge sort with
                    // fan-in 16 (smoothed so marginal benefit is defined
                    // everywhere).
                    let passes =
                        ((self.sort_input_mb / size_mb.max(1.0)).ln() / 16.0f64.ln()).max(1.0);
                    self.sorts_per_run * 2.0 * self.sort_input_mb * passes / self.disk_mbps
                }
            }
            MemoryPool::Maintenance => {
                // Vacuum/index-build passes shrink with memory.
                let passes = (256.0 / size_mb.max(16.0)).min(4.0);
                0.05 * self.working_set_mb * passes / self.disk_mbps
            }
            MemoryPool::WalBuffer => {
                // Commit flushes batched by WAL buffer size.
                let batch = (size_mb * 4.0).clamp(1.0, 64.0);
                (self.random_ops * 0.2 / batch) / self.iops
            }
        }
    }

    /// Marginal benefit (seconds saved per MB) of growing a pool.
    pub fn marginal_benefit(&self, pool: MemoryPool, size_mb: f64, chunk_mb: f64) -> f64 {
        let now = self.pool_cost_secs(pool, size_mb);
        let then = self.pool_cost_secs(pool, size_mb + chunk_mb);
        (now - then) / chunk_mb
    }

    /// Greedy allocation of `budget_mb` across the pools: repeatedly grant
    /// a chunk to the pool with the highest marginal benefit. The sort
    /// heap is charged `concurrent_sorts` times per MB (every session gets
    /// its own grant).
    pub fn allocate(&self, budget_mb: f64, chunks: usize) -> [f64; 4] {
        let mut sizes = [64.0, 1.0, 16.0, 1.0]; // domain minima
        let mut spent: f64 = sizes[0] + sizes[1] * self.concurrent_sorts + sizes[2] + sizes[3];
        let chunk = (budget_mb - spent).max(1.0) / chunks as f64;
        while spent + 1.0 < budget_mb {
            let mut best_pool = 0;
            let mut best_rate = f64::NEG_INFINITY;
            for (i, pool) in MemoryPool::all().into_iter().enumerate() {
                // Per-MB of *budget*: the sort heap consumes
                // concurrent_sorts MB of budget per MB of grant.
                let budget_per_mb = if pool == MemoryPool::SortHeap {
                    self.concurrent_sorts
                } else {
                    1.0
                };
                let grant = chunk / budget_per_mb;
                if grant < 0.25 {
                    continue;
                }
                let rate = self.marginal_benefit(pool, sizes[i], grant) / budget_per_mb;
                if rate > best_rate {
                    best_rate = rate;
                    best_pool = i;
                }
            }
            if best_rate <= 0.0 {
                break; // no pool benefits from more memory
            }
            let pool = MemoryPool::all()[best_pool];
            let budget_per_mb = if pool == MemoryPool::SortHeap {
                self.concurrent_sorts
            } else {
                1.0
            };
            sizes[best_pool] += chunk / budget_per_mb;
            spent += chunk;
        }
        sizes
    }
}

/// The STMM tuner: computes the memory allocation once and proposes it
/// (non-memory knobs stay at their defaults — STMM only manages memory).
#[derive(Debug, Default)]
pub struct StmmTuner;

impl StmmTuner {
    /// Creates the tuner.
    pub fn new() -> Self {
        StmmTuner
    }

    /// Computes the recommended configuration for a context.
    pub fn compute(&self, ctx: &TuningContext) -> Configuration {
        let model = StmmModel::from_profile(&ctx.profile);
        let budget = ctx.profile.memory_per_node_mb * 0.75;
        let sizes = model.allocate(budget, 200);
        let mut config = ctx.space.default_config();
        for (pool, size) in MemoryPool::all().into_iter().zip(sizes) {
            if let Some(spec) = ctx.space.spec(pool.knob()) {
                if let autotune_core::ParamDomain::Int { min, max, .. } = spec.domain {
                    config.set(
                        pool.knob(),
                        ParamValue::Int((size.round() as i64).clamp(min, max)),
                    );
                }
            }
        }
        config
    }
}

impl Tuner for StmmTuner {
    fn name(&self) -> &str {
        "stmm"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::CostModeling
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        self.compute(ctx)
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        let config = self.compute(ctx);
        let expected = history
            .all()
            .iter()
            .find(|o| o.config == config)
            .map(|o| o.runtime_secs);
        Recommendation {
            config,
            expected_runtime: expected,
            rationale: "greedy cost-benefit memory allocation (STMM)".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;

    #[test]
    fn marginal_benefit_decreases_for_buffer_pool() {
        let model = StmmModel::from_profile(&SystemProfile {
            workload: WorkloadClass::Oltp,
            input_mb: 20_480.0,
            ..SystemProfile::default()
        });
        let b1 = model.marginal_benefit(MemoryPool::BufferPool, 128.0, 64.0);
        let b2 = model.marginal_benefit(MemoryPool::BufferPool, 2048.0, 64.0);
        assert!(b1 > b2, "diminishing returns expected: {b1} vs {b2}");
        assert!(b2 >= 0.0);
    }

    #[test]
    fn allocation_spends_budget_sensibly() {
        let model = StmmModel::from_profile(&SystemProfile {
            workload: WorkloadClass::Olap,
            input_mb: 51_200.0,
            ..SystemProfile::default()
        });
        let sizes = model.allocate(12_288.0, 200);
        let spent = sizes[0] + sizes[1] * model.concurrent_sorts + sizes[2] + sizes[3];
        assert!(spent <= 12_288.0 * 1.05, "overspent: {spent}");
        // OLAP: the sort heap should get a meaningful grant.
        assert!(sizes[1] > 64.0, "sort heap starved: {sizes:?}");
        assert!(sizes[0] > 512.0, "buffer pool starved: {sizes:?}");
    }

    #[test]
    fn oltp_favours_buffer_pool_over_sort_heap() {
        let mk = |wl| {
            let model = StmmModel::from_profile(&SystemProfile {
                workload: wl,
                input_mb: 20_480.0,
                ..SystemProfile::default()
            });
            model.allocate(12_288.0, 200)
        };
        let oltp = mk(WorkloadClass::Oltp);
        let olap = mk(WorkloadClass::Olap);
        let oltp_sort_share = oltp[1] * 32.0 / 12_288.0;
        let olap_sort_share = olap[1] * 4.0 / 12_288.0;
        assert!(
            olap_sort_share > oltp_sort_share,
            "OLAP should invest more in sorting: {olap_sort_share} vs {oltp_sort_share}"
        );
    }

    #[test]
    fn stmm_beats_defaults_on_both_workloads() {
        for mk in [DbmsSimulator::oltp_default, DbmsSimulator::olap_default] {
            let mut sim = mk().with_noise(NoiseModel::none());
            let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
            let mut tuner = StmmTuner::new();
            let out = tune(&mut sim, &mut tuner, 1, 1);
            let got = out.best.unwrap();
            assert!(!got.failed, "STMM must not overcommit");
            assert!(
                got.runtime_secs < default_rt,
                "default={default_rt} stmm={}",
                got.runtime_secs
            );
        }
    }

    #[test]
    fn stmm_config_is_valid_and_memory_safe() {
        let sim = DbmsSimulator::oltp_default();
        let ctx = TuningContext {
            space: sim.space().clone(),
            profile: sim.profile(),
        };
        let cfg = StmmTuner::new().compute(&ctx);
        assert!(ctx.space.validate_config(&cfg).is_ok());
        let run = sim.simulate(&cfg);
        assert!(!run.failed);
        assert!(run.metrics["mem_overcommit"] < 1.0);
    }
}
