//! Cluster-sizing what-if analysis in the spirit of Herodotou's
//! Elastisizer (the cloud-provisioning arm of the Starfish project),
//! addressing the tutorial's §2.5 open challenge "cloud computing:
//! decision making in resource provisioning and scheduling".
//!
//! Given a job profile estimated from one profiled run, enumerate cloud
//! instance types × cluster sizes, predict time and dollar cost for each
//! with the analytic MapReduce model, and return the Pareto frontier —
//! the provisioning decisions that are not dominated on (time, cost).

use super::whatif::{JobProfile, MrCostModel};
use autotune_core::{Configuration, SystemProfile};
use serde::Serialize;

/// A rentable instance type (hardware + hourly price).
#[derive(Debug, Clone, Serialize)]
pub struct InstanceType {
    /// Instance name, e.g. `"m.large"`.
    pub name: String,
    /// CPU cores.
    pub cores: usize,
    /// Memory in MB.
    pub memory_mb: f64,
    /// Disk bandwidth MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth MB/s.
    pub network_mbps: f64,
    /// Price in cents per node-hour.
    pub cents_per_hour: f64,
}

impl InstanceType {
    /// A small/medium/large catalogue resembling 2010s cloud offerings.
    pub fn catalogue() -> Vec<InstanceType> {
        vec![
            InstanceType {
                name: "small".into(),
                cores: 4,
                memory_mb: 8_192.0,
                disk_mbps: 100.0,
                network_mbps: 500.0,
                cents_per_hour: 10.0,
            },
            InstanceType {
                name: "medium".into(),
                cores: 8,
                memory_mb: 16_384.0,
                disk_mbps: 200.0,
                network_mbps: 1_000.0,
                cents_per_hour: 22.0,
            },
            InstanceType {
                name: "large".into(),
                cores: 16,
                memory_mb: 65_536.0,
                disk_mbps: 500.0,
                network_mbps: 10_000.0,
                cents_per_hour: 60.0,
            },
        ]
    }
}

/// One provisioning option with its predictions.
#[derive(Debug, Clone, Serialize)]
pub struct ProvisioningPlan {
    /// Instance type name.
    pub instance: String,
    /// Node count.
    pub nodes: usize,
    /// Predicted job runtime (s).
    pub predicted_secs: f64,
    /// Predicted cost in cents (runtime × nodes × hourly price).
    pub predicted_cents: f64,
    /// Whether this plan is on the time/cost Pareto frontier.
    pub pareto_optimal: bool,
}

/// The cluster-sizing what-if engine.
#[derive(Debug, Clone)]
pub struct Elastisizer {
    /// Job profile from the profiling run.
    pub job: JobProfile,
    /// The configuration to assume on every candidate cluster (typically a
    /// rule-book or MRTuner output).
    pub config: Configuration,
}

impl Elastisizer {
    /// Creates the engine.
    pub fn new(job: JobProfile, config: Configuration) -> Self {
        Elastisizer { job, config }
    }

    /// Predicts runtime on a hypothetical cluster.
    pub fn predict(&self, instance: &InstanceType, nodes: usize) -> f64 {
        let profile = SystemProfile {
            system: autotune_core::SystemKind::Hadoop,
            workload: autotune_core::WorkloadClass::Batch,
            memory_per_node_mb: instance.memory_mb,
            cores_per_node: instance.cores,
            nodes,
            disk_mbps: instance.disk_mbps,
            network_mbps: instance.network_mbps,
            input_mb: self.job.input_mb,
        };
        let model = MrCostModel {
            job: self.job.clone(),
            profile,
        };
        model.predict(&self.config)
    }

    /// Enumerates the catalogue × node counts and marks the Pareto
    /// frontier on (time, cost).
    pub fn enumerate(
        &self,
        catalogue: &[InstanceType],
        node_counts: &[usize],
    ) -> Vec<ProvisioningPlan> {
        let mut plans: Vec<ProvisioningPlan> = Vec::new();
        for inst in catalogue {
            for &n in node_counts {
                let secs = self.predict(inst, n);
                if secs >= 1e6 {
                    continue; // infeasible on this hardware
                }
                let cents = secs / 3600.0 * n as f64 * inst.cents_per_hour;
                plans.push(ProvisioningPlan {
                    instance: inst.name.clone(),
                    nodes: n,
                    predicted_secs: secs,
                    predicted_cents: cents,
                    pareto_optimal: false,
                });
            }
        }
        // Pareto marking: a plan is dominated if another is at least as
        // good on both axes and strictly better on one.
        for i in 0..plans.len() {
            let dominated = plans.iter().enumerate().any(|(j, other)| {
                j != i
                    && other.predicted_secs <= plans[i].predicted_secs
                    && other.predicted_cents <= plans[i].predicted_cents
                    && (other.predicted_secs < plans[i].predicted_secs
                        || other.predicted_cents < plans[i].predicted_cents)
            });
            plans[i].pareto_optimal = !dominated;
        }
        plans.sort_by(|a, b| a.predicted_secs.total_cmp(&b.predicted_secs));
        plans
    }

    /// The cheapest plan meeting a runtime deadline, if any.
    pub fn cheapest_within_deadline(
        &self,
        catalogue: &[InstanceType],
        node_counts: &[usize],
        deadline_secs: f64,
    ) -> Option<ProvisioningPlan> {
        self.enumerate(catalogue, node_counts)
            .into_iter()
            .filter(|p| p.predicted_secs <= deadline_secs)
            .min_by(|a, b| a.predicted_cents.total_cmp(&b.predicted_cents))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::Objective;
    use autotune_sim::hadoop::HadoopSimulator;
    use autotune_sim::noise::NoiseModel;

    fn engine() -> Elastisizer {
        let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let default = sim.space().default_config();
        let run = sim.simulate(&default);
        let obs = autotune_core::Observation {
            config: default,
            runtime_secs: run.runtime_secs,
            cost: run.runtime_secs,
            metrics: run.metrics,
            failed: false,
        };
        let job = JobProfile::estimate(&obs, &sim.profile());
        // Assume a sensible tuned config on the candidate clusters.
        let cfg = autotune_sim::hadoop::benchmark_config(&sim.cluster);
        Elastisizer::new(job, cfg)
    }

    #[test]
    fn more_nodes_predict_faster_runs() {
        let e = engine();
        let inst = &InstanceType::catalogue()[1];
        let t4 = e.predict(inst, 4);
        let t16 = e.predict(inst, 16);
        assert!(t16 < t4, "4 nodes {t4}s vs 16 nodes {t16}s");
    }

    #[test]
    fn pareto_frontier_is_nonempty_and_consistent() {
        let e = engine();
        let plans = e.enumerate(&InstanceType::catalogue(), &[2, 4, 8, 16, 32]);
        assert!(plans.len() >= 10);
        let frontier: Vec<&ProvisioningPlan> = plans.iter().filter(|p| p.pareto_optimal).collect();
        assert!(!frontier.is_empty());
        // No frontier plan dominates another frontier plan.
        for a in &frontier {
            for b in &frontier {
                let dominates =
                    a.predicted_secs < b.predicted_secs && a.predicted_cents < b.predicted_cents;
                assert!(!dominates, "{a:?} dominates {b:?}");
            }
        }
        // The globally fastest plan is always on the frontier.
        let fastest = plans
            .iter()
            .min_by(|a, b| a.predicted_secs.partial_cmp(&b.predicted_secs).unwrap())
            .unwrap();
        assert!(fastest.pareto_optimal);
    }

    #[test]
    fn deadline_query_trades_cost_for_time() {
        let e = engine();
        let cat = InstanceType::catalogue();
        let counts = [2, 4, 8, 16, 32];
        let tight = e.cheapest_within_deadline(&cat, &counts, 120.0);
        let loose = e.cheapest_within_deadline(&cat, &counts, 3600.0);
        let loose = loose.expect("an hour is plenty");
        if let Some(tight) = tight {
            assert!(
                tight.predicted_cents >= loose.predicted_cents,
                "tight deadline should cost at least as much: {tight:?} vs {loose:?}"
            );
        }
    }

    #[test]
    fn impossible_deadline_returns_none() {
        let e = engine();
        assert!(e
            .cheapest_within_deadline(&InstanceType::catalogue(), &[2, 4], 0.001)
            .is_none());
    }
}
