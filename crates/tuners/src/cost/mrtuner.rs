//! MRTuner: holistic MapReduce optimization with the
//! Producer–Transporter–Consumer (PTC) model (Shi, Zou, Lu et al.,
//! PVLDB 7(13), 2014 — reference \[21\] of the tutorial).
//!
//! MRTuner's insight: a MapReduce job is a three-stage pipeline —
//! *producers* (map tasks emitting sorted runs), the *transporter*
//! (shuffle), and *consumers* (reduce tasks) — and the job is fast when
//! the three stages are **rate-balanced** so the pipeline never stalls.
//! Rather than searching blindly, MRTuner solves for the configuration
//! that equalizes stage rates, which prunes the space to a handful of
//! candidate plans evaluated analytically.

use autotune_core::{
    Configuration, History, ParamValue, Recommendation, SystemProfile, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;
use serde::Serialize;

/// Throughput of each pipeline stage under a configuration (MB/s of map
/// output moved end to end).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PtcRates {
    /// Rate at which map tasks produce shuffle-ready output.
    pub producer_mbps: f64,
    /// Rate at which the shuffle moves data to reducers.
    pub transporter_mbps: f64,
    /// Rate at which reducers merge + apply the reduce function.
    pub consumer_mbps: f64,
}

impl PtcRates {
    /// The pipeline bottleneck rate.
    pub fn bottleneck_mbps(&self) -> f64 {
        self.producer_mbps
            .min(self.transporter_mbps)
            .min(self.consumer_mbps)
    }

    /// Which stage limits the pipeline.
    pub fn bottleneck_stage(&self) -> &'static str {
        let b = self.bottleneck_mbps();
        if b == self.producer_mbps {
            "producer (map)"
        } else if b == self.transporter_mbps {
            "transporter (shuffle)"
        } else {
            "consumer (reduce)"
        }
    }

    /// Imbalance: max rate / min rate (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .producer_mbps
            .max(self.transporter_mbps)
            .max(self.consumer_mbps);
        max / self.bottleneck_mbps().max(1e-9)
    }
}

/// The PTC analytical model for a job on a cluster.
#[derive(Debug, Clone)]
pub struct PtcModel {
    /// Deployment description.
    pub profile: SystemProfile,
    /// Map output bytes per input byte (post-combiner estimate).
    pub map_output_ratio: f64,
    /// Map CPU core-ms per MB.
    pub map_cpu_ms_per_mb: f64,
    /// Reduce CPU core-ms per shuffled MB.
    pub reduce_cpu_ms_per_mb: f64,
}

impl PtcModel {
    /// Builds the model from a profiling observation (same counters the
    /// Starfish what-if engine uses).
    pub fn from_observation(obs: &autotune_core::Observation, profile: &SystemProfile) -> Self {
        let job = super::whatif::JobProfile::estimate(obs, profile);
        PtcModel {
            profile: profile.clone(),
            map_output_ratio: job.map_output_ratio,
            map_cpu_ms_per_mb: job.map_cpu_ms_per_mb,
            reduce_cpu_ms_per_mb: job.reduce_cpu_ms_per_mb,
        }
    }

    /// Stage rates under a configuration.
    pub fn rates(&self, config: &Configuration) -> PtcRates {
        let p = &self.profile;
        let nodes = p.nodes as f64;
        let map_slots = config.f64("map_slots_per_node") * nodes;
        let reduce_slots = config.f64("reduce_slots_per_node") * nodes;
        let reduce_tasks = config.f64("reduce_tasks").max(1.0);
        let io_sort_mb = config.f64("io_sort_mb");
        let compress = config.bool("compress_map_output");
        let copies = config.f64("shuffle_parallel_copies");
        let split_mb = config.f64("split_size_mb");

        // Producer: per-slot map throughput in *output* MB/s, discounted
        // by spill passes.
        let spills = (split_mb * self.map_output_ratio / (io_sort_mb * 0.8))
            .ceil()
            .max(1.0);
        let per_map_input_mbps = 1.0
            / (1.0 / p.disk_mbps
                + self.map_cpu_ms_per_mb / 1000.0
                + (spills - 1.0).max(0.0) * 2.0 / p.disk_mbps);
        let codec_ratio = if compress { 0.5 } else { 1.0 };
        let producer = per_map_input_mbps * self.map_output_ratio * codec_ratio * map_slots;

        // Transporter: fetch concurrency vs network ceiling (compressed
        // bytes move faster per logical MB).
        let active_reducers = reduce_tasks.min(reduce_slots);
        let transporter = (active_reducers * copies * 10.0).min(nodes * p.network_mbps * 0.5)
            / codec_ratio.max(1e-9)
            * codec_ratio; // rate in compressed MB/s equals logical rate * ratio⁻¹ * ratio
                           // Consumer: reduce-side merge + reduce function.
        let consumer = active_reducers
            / (self.reduce_cpu_ms_per_mb / 1000.0 + 2.0 / p.disk_mbps).max(1e-9)
            * codec_ratio;

        PtcRates {
            producer_mbps: producer,
            transporter_mbps: transporter,
            consumer_mbps: consumer,
        }
    }

    /// Predicted job time: shuffle volume over the bottleneck rate, plus
    /// the non-pipelined head (first map wave) and tail (last merge).
    pub fn predict(&self, config: &Configuration) -> f64 {
        let p = &self.profile;
        // Feasibility guard identical to the full what-if model.
        let committed = config.f64("map_slots_per_node") * config.f64("map_heap_mb")
            + config.f64("reduce_slots_per_node") * config.f64("reduce_heap_mb")
            + 1024.0;
        if committed > p.memory_per_node_mb * 1.3
            || config.f64("io_sort_mb") > config.f64("map_heap_mb") * 0.7
        {
            return 1e7;
        }
        let shuffle_mb = p.input_mb * self.map_output_ratio;
        let rates = self.rates(config);
        let pipeline = shuffle_mb / rates.bottleneck_mbps().max(1e-9);
        let head = config.f64("split_size_mb") / p.disk_mbps + 2.0;
        let tail = shuffle_mb / config.f64("reduce_tasks").max(1.0) / p.disk_mbps;
        8.0 + pipeline + head + tail
    }

    /// MRTuner's plan search: enumerate the small candidate lattice the
    /// PTC balance equations admit (reducer counts near slot multiples,
    /// spill-free sort buffers, compression on/off) and return the best
    /// few plans by predicted time.
    pub fn candidate_plans(
        &self,
        space: &autotune_core::ConfigSpace,
        top: usize,
    ) -> Vec<Configuration> {
        let p = &self.profile;
        let nodes = p.nodes as f64;
        let cores = p.cores_per_node as f64;
        let mut plans: Vec<(f64, Configuration)> = Vec::new();
        for &map_frac in &[0.25, 0.5, 0.75] {
            for &red_frac in &[0.25, 0.5] {
                for &waves in &[1.0, 1.5, 3.0] {
                    for &compress in &[false, true] {
                        let map_slots = (cores * map_frac).max(1.0).round();
                        let red_slots = (cores * red_frac).max(1.0).round();
                        let reducers = (red_slots * nodes * waves).round().max(1.0);
                        // Spill-free sort buffer for the expected map output.
                        let split = 128.0;
                        let want_buffer = (split * self.map_output_ratio / 0.8).clamp(64.0, 1024.0);
                        let heap = (want_buffer * 2.0).clamp(512.0, 4096.0);
                        let mut c = space.default_config();
                        let set_int = |c: &mut Configuration, k: &str, v: f64| {
                            c.set(k, ParamValue::Int(v.round() as i64));
                        };
                        set_int(&mut c, "map_slots_per_node", map_slots);
                        set_int(&mut c, "reduce_slots_per_node", red_slots);
                        set_int(&mut c, "reduce_tasks", reducers.min(512.0));
                        set_int(&mut c, "io_sort_mb", want_buffer);
                        set_int(&mut c, "map_heap_mb", heap);
                        set_int(&mut c, "reduce_heap_mb", heap);
                        set_int(&mut c, "io_sort_factor", 64.0);
                        c.set("compress_map_output", ParamValue::Bool(compress));
                        c.set("compress_codec", ParamValue::Str("snappy".into()));
                        c.set("slowstart_completed_maps", ParamValue::Float(0.5));
                        set_int(&mut c, "shuffle_parallel_copies", 20.0);
                        if space.validate_config(&c).is_err() {
                            continue;
                        }
                        plans.push((self.predict(&c), c));
                    }
                }
            }
        }
        plans.sort_by(|a, b| a.0.total_cmp(&b.0));
        plans.into_iter().map(|(_, c)| c).take(top).collect()
    }
}

/// The MRTuner tuner: profile once, enumerate PTC-balanced plans, validate
/// the best few on the real system.
#[derive(Debug, Default)]
pub struct MrTuner {
    model: Option<PtcModel>,
    plans: Vec<Configuration>,
    cursor: usize,
}

impl MrTuner {
    /// Creates the tuner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fitted PTC model.
    pub fn model(&self) -> Option<&PtcModel> {
        self.model.as_ref()
    }
}

impl Tuner for MrTuner {
    fn name(&self) -> &str {
        "mrtuner"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::CostModeling
    }

    fn min_history(&self) -> usize {
        1
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        if history.is_empty() {
            return ctx.space.default_config(); // profiling run
        }
        if self.model.is_none() {
            let model = PtcModel::from_observation(&history.all()[0], &ctx.profile);
            self.plans = model.candidate_plans(&ctx.space, 6);
            self.model = Some(model);
        }
        let c = self
            .plans
            .get(self.cursor.min(self.plans.len().saturating_sub(1)))
            .cloned()
            .unwrap_or_else(|| ctx.space.default_config());
        self.cursor += 1;
        c
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => {
                let rationale = match &self.model {
                    Some(m) => format!(
                        "PTC-balanced plan; bottleneck at recommendation: {}",
                        m.rates(&b.config).bottleneck_stage()
                    ),
                    None => "profiling incomplete".into(),
                };
                Recommendation {
                    config: b.config.clone(),
                    expected_runtime: Some(b.runtime_secs),
                    rationale,
                }
            }
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no runs".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::cluster::ClusterSpec;
    use autotune_sim::hadoop::{HadoopJob, HadoopSimulator};
    use autotune_sim::noise::NoiseModel;
    use rand::SeedableRng;

    fn model_for(sim: &HadoopSimulator) -> PtcModel {
        let default = sim.space().default_config();
        let run = sim.simulate(&default);
        let obs = autotune_core::Observation {
            config: default,
            runtime_secs: run.runtime_secs,
            cost: run.runtime_secs,
            metrics: run.metrics,
            failed: false,
        };
        PtcModel::from_observation(&obs, &sim.profile())
    }

    #[test]
    fn default_config_bottlenecks_on_the_reduce_side() {
        // One reducer: either its fetch (transporter) or its merge
        // (consumer) serializes the pipeline — never the map side.
        let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let model = model_for(&sim);
        let rates = model.rates(&sim.space().default_config());
        assert_ne!(rates.bottleneck_stage(), "producer (map)");
        assert!(
            rates.imbalance() > 5.0,
            "imbalance {:.1}",
            rates.imbalance()
        );
    }

    #[test]
    fn balanced_plans_have_lower_imbalance() {
        let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let model = model_for(&sim);
        let default_imbalance = model.rates(&sim.space().default_config()).imbalance();
        let plans = model.candidate_plans(sim.space(), 3);
        assert!(!plans.is_empty());
        let best_imbalance = model.rates(&plans[0]).imbalance();
        assert!(
            best_imbalance < default_imbalance / 2.0,
            "default {default_imbalance:.1} vs plan {best_imbalance:.1}"
        );
    }

    #[test]
    fn mrtuner_beats_defaults_in_few_runs() {
        let mut sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = MrTuner::new();
        let out = tune(&mut sim, &mut tuner, 5, 1);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < default_rt * 0.2,
            "default={default_rt} mrtuner={best}"
        );
        assert!(out.recommendation.rationale.contains("bottleneck"));
    }

    #[test]
    fn plans_are_feasible_and_valid() {
        let sim = HadoopSimulator::new(
            ClusterSpec::homogeneous(4, autotune_sim::NodeSpec::default()),
            HadoopJob::wordcount(8_192.0),
        )
        .with_noise(NoiseModel::none());
        let model = model_for(&sim);
        let plans = model.candidate_plans(sim.space(), 10);
        let mut rng = StdRng::seed_from_u64(2);
        let _ = &mut rng;
        for p in &plans {
            assert!(sim.space().validate_config(p).is_ok());
            assert!(!sim.simulate(p).failed, "plan OOMs: {p}");
        }
    }

    #[test]
    fn prediction_orders_good_and_bad_configs() {
        let sim = HadoopSimulator::terasort_default().with_noise(NoiseModel::none());
        let model = model_for(&sim);
        let default = sim.space().default_config();
        let plan = &model.candidate_plans(sim.space(), 1)[0];
        assert!(model.predict(plan) < model.predict(&default));
    }
}
