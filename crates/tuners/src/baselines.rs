//! Baseline tuners every comparison needs: vendor defaults (no tuning),
//! pure random search, and uniform grid search.

use autotune_core::{Configuration, History, Tuner, TunerFamily, TuningContext};
use rand::rngs::StdRng;

/// "Tuner" that always proposes the vendor defaults — the untuned
/// baseline every speedup in the paper is measured against.
#[derive(Debug, Default)]
pub struct DefaultConfigTuner;

impl Tuner for DefaultConfigTuner {
    fn name(&self) -> &str {
        "default-config"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::RuleBased
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        _rng: &mut StdRng,
    ) -> Configuration {
        ctx.space.default_config()
    }
}

/// Uniform random search — the honest black-box baseline.
#[derive(Debug, Default)]
pub struct RandomSearchTuner;

impl Tuner for RandomSearchTuner {
    fn name(&self) -> &str {
        "random-search"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        ctx.space.random_config(rng)
    }
}

/// Axis-aligned grid search: enumerates `levels^dim` lattice points in a
/// deterministic order (only sensible for small spaces / subspaces).
#[derive(Debug)]
pub struct GridSearchTuner {
    levels: usize,
    cursor: usize,
}

impl GridSearchTuner {
    /// Grid with `levels` points per dimension.
    pub fn new(levels: usize) -> Self {
        assert!(levels >= 2, "grid needs at least 2 levels");
        GridSearchTuner { levels, cursor: 0 }
    }
}

impl Tuner for GridSearchTuner {
    fn name(&self) -> &str {
        "grid-search"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::ExperimentDriven
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        _history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let dim = ctx.space.dim();
        let total = self.levels.pow(dim.min(12) as u32);
        if self.cursor >= total {
            // Grid exhausted: fall back to random refinement.
            return ctx.space.random_config(rng);
        }
        let mut idx = self.cursor;
        self.cursor += 1;
        let point: Vec<f64> = (0..dim)
            .map(|_| {
                let level = idx % self.levels;
                idx /= self.levels;
                level as f64 / (self.levels - 1) as f64
            })
            .collect();
        ctx.space.decode(&point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, ConfigSpace, FunctionObjective, ParamSpec};

    fn objective() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(vec![
            ParamSpec::float("a", 0.0, 1.0, 0.0, ""),
            ParamSpec::float("b", 0.0, 1.0, 0.0, ""),
        ]);
        FunctionObjective::new(space, "bowl", |x| {
            (x[0] - 0.6).powi(2) + (x[1] - 0.4).powi(2)
        })
    }

    #[test]
    fn default_tuner_never_moves() {
        let mut obj = objective();
        let mut t = DefaultConfigTuner;
        let out = tune(&mut obj, &mut t, 5, 1);
        let d = out.history.all()[0].config.clone();
        assert!(out.history.all().iter().all(|o| o.config == d));
    }

    #[test]
    fn random_beats_default_on_offset_bowl() {
        let mut obj = objective();
        let mut d = DefaultConfigTuner;
        let base = tune(&mut obj, &mut d, 1, 1).best.unwrap().runtime_secs;
        let mut obj = objective();
        let mut r = RandomSearchTuner;
        let found = tune(&mut obj, &mut r, 50, 1).best.unwrap().runtime_secs;
        assert!(found < base);
    }

    #[test]
    fn grid_enumerates_lattice() {
        let mut obj = objective();
        let mut g = GridSearchTuner::new(3);
        let out = tune(&mut obj, &mut g, 9, 1);
        // 9 distinct lattice points for 3 levels x 2 dims.
        let distinct: std::collections::HashSet<String> = out
            .history
            .all()
            .iter()
            .map(|o| format!("{}", o.config))
            .collect();
        assert_eq!(distinct.len(), 9);
        // Best lattice point is (0.5, 0.5).
        assert!(out.best.unwrap().runtime_secs <= 0.021);
    }

    #[test]
    fn grid_falls_back_after_exhaustion() {
        let mut obj = objective();
        let mut g = GridSearchTuner::new(2);
        let out = tune(&mut obj, &mut g, 10, 1);
        assert_eq!(out.evaluations, 10); // 4 lattice + 6 random
    }
}
