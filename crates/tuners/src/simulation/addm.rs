//! ADDM-style automatic performance diagnosis (Dias et al., CIDR 2005:
//! "Automatic Performance Diagnosis and Tuning in Oracle").
//!
//! ADDM attributes database time ("DB time") to wait/consumption
//! categories using an internal DAG model of the system, ranks findings by
//! time impact, and attaches concrete tuning recommendations to each. This
//! module reproduces the workflow against the simulated DBMS's metric
//! vocabulary: each [`Finding`] names the implicated component, its time
//! impact, and the knob adjustment that addresses it; [`AddmTuner`]
//! applies the top finding each round — diagnosis-driven iterative tuning.

use autotune_core::{
    Configuration, History, Observation, ParamValue, Recommendation, Tuner, TunerFamily,
    TuningContext,
};
use rand::rngs::StdRng;

/// A knob adjustment attached to a finding.
#[derive(Debug, Clone, PartialEq)]
pub enum Adjustment {
    /// Multiply an integer knob by a factor (clamped into its domain).
    Scale {
        /// Knob name.
        knob: String,
        /// Multiplier.
        factor: f64,
    },
    /// Set a knob to a specific value.
    Set {
        /// Knob name.
        knob: String,
        /// New value.
        value: ParamValue,
    },
}

impl Adjustment {
    /// Applies the adjustment to a configuration, clamping into domain.
    pub fn apply(&self, space: &autotune_core::ConfigSpace, config: &mut Configuration) {
        match self {
            Adjustment::Scale { knob, factor } => {
                let Some(spec) = space.spec(knob) else { return };
                if let (
                    Some(ParamValue::Int(v)),
                    autotune_core::ParamDomain::Int { min, max, .. },
                ) = (config.get(knob).cloned(), &spec.domain)
                {
                    let new = ((v as f64 * factor).round() as i64).clamp(*min, *max);
                    config.set(knob, ParamValue::Int(new));
                }
            }
            Adjustment::Set { knob, value } => {
                if space.spec(knob).is_some() {
                    config.set(knob, value.clone());
                }
            }
        }
    }
}

/// One ranked diagnosis.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Component at fault, e.g. `"buffer pool"`.
    pub component: String,
    /// Estimated share of run time attributable (seconds).
    pub impact_secs: f64,
    /// What to do about it.
    pub adjustments: Vec<Adjustment>,
    /// Human-readable diagnosis.
    pub diagnosis: String,
}

/// Diagnoses a DBMS observation into ranked findings.
///
/// Metric names follow `autotune-sim`'s DBMS engine (a real deployment
/// would read the wait-event interface).
pub fn diagnose_dbms(obs: &Observation) -> Vec<Finding> {
    let m = &obs.metrics;
    let get = |k: &str| m.get(k).copied().unwrap_or(0.0);
    let mut findings = Vec::new();

    // Memory overcommit dominates everything when present.
    if get("mem_overcommit") > 1.0 {
        findings.push(Finding {
            component: "memory".into(),
            impact_secs: obs.runtime_secs * 0.8,
            adjustments: vec![
                Adjustment::Scale {
                    knob: "shared_buffers_mb".into(),
                    factor: 0.5,
                },
                Adjustment::Scale {
                    knob: "work_mem_mb".into(),
                    factor: 0.5,
                },
            ],
            diagnosis: "configured memory exceeds physical RAM; the server is swapping".into(),
        });
    }
    let rand_secs = get("io_rand_secs");
    if rand_secs > 0.0 {
        findings.push(Finding {
            component: "buffer pool".into(),
            impact_secs: rand_secs * (1.0 - get("buffer_hit_ratio")),
            adjustments: vec![Adjustment::Scale {
                knob: "shared_buffers_mb".into(),
                factor: 2.0,
            }],
            diagnosis: format!(
                "random reads spend {rand_secs:.1}s at hit ratio {:.2}; grow the buffer pool",
                get("buffer_hit_ratio")
            ),
        });
    }
    let spills = get("sort_spills") + get("hash_spills");
    if spills > 0.0 {
        findings.push(Finding {
            component: "sort/hash memory".into(),
            impact_secs: get("temp_files_mb") / 200.0, // I/O time of temp traffic
            adjustments: vec![Adjustment::Scale {
                knob: "work_mem_mb".into(),
                factor: 4.0,
            }],
            diagnosis: format!("{spills:.0} operators spilled to disk; grow work_mem"),
        });
    }
    let burst = get("checkpoint_burst_secs");
    if burst > 0.0 {
        findings.push(Finding {
            component: "checkpointing".into(),
            impact_secs: burst,
            adjustments: vec![
                Adjustment::Scale {
                    knob: "checkpoint_timeout_s".into(),
                    factor: 2.0,
                },
                Adjustment::Scale {
                    knob: "bgwriter_delay_ms".into(),
                    factor: 0.5,
                },
            ],
            diagnosis: "checkpoint write bursts stall foreground I/O".into(),
        });
    }
    let locks = get("lock_wait_secs");
    if locks > 0.0 {
        findings.push(Finding {
            component: "locking".into(),
            impact_secs: locks,
            adjustments: vec![Adjustment::Scale {
                knob: "deadlock_timeout_ms".into(),
                factor: 2.0,
            }],
            diagnosis: "sessions wait on locks; raise deadlock detection timeout".into(),
        });
    }
    if get("plan_quality") < 0.9 && get("plan_quality") > 0.0 {
        findings.push(Finding {
            component: "query planner".into(),
            impact_secs: obs.runtime_secs * (1.0 - get("plan_quality")) * 0.5,
            adjustments: vec![Adjustment::Set {
                knob: "default_statistics_target".into(),
                value: ParamValue::Int(250),
            }],
            diagnosis: "plans deviate from optimal; collect richer statistics".into(),
        });
    }
    findings.sort_by(|a, b| b.impact_secs.total_cmp(&a.impact_secs));
    findings
}

/// The ADDM tuner: run → diagnose → apply top finding → repeat.
#[derive(Debug, Default)]
pub struct AddmTuner {
    current: Option<Configuration>,
    /// Findings produced in the last diagnosis (for reporting).
    pub last_findings: Vec<String>,
}

impl AddmTuner {
    /// Creates the tuner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Tuner for AddmTuner {
    fn name(&self) -> &str {
        "addm"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::SimulationBased
    }

    fn min_history(&self) -> usize {
        1
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        let Some(best) = history.best() else {
            let d = ctx.space.default_config();
            self.current = Some(d.clone());
            return d;
        };
        // Diagnose the best run so far and apply its findings in impact
        // order, skipping any adjustment whose resulting configuration was
        // already measured (otherwise a finding the system cannot act on —
        // e.g. statistics already collected — wedges the loop).
        let base = best.config.clone();
        let findings = diagnose_dbms(best);
        self.last_findings = findings.iter().map(|f| f.diagnosis.clone()).collect();
        for finding in &findings {
            let mut next = base.clone();
            for adj in &finding.adjustments {
                adj.apply(&ctx.space, &mut next);
            }
            if !history.contains_config(&next) {
                self.current = Some(next.clone());
                return next;
            }
        }
        // Every diagnosis exhausted: local refinement around the best.
        let next = ctx.space.neighbor(&base, 0.05, 0.3, rng);
        self.current = Some(next.clone());
        next
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: format!(
                    "diagnosis-driven tuning; last findings: {}",
                    self.last_findings.join(" | ")
                ),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no runs".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::DbmsSimulator;
    use rand::SeedableRng;

    fn observe(sim: &DbmsSimulator, cfg: &Configuration) -> Observation {
        let run = sim.simulate(cfg);
        Observation {
            config: cfg.clone(),
            runtime_secs: run.runtime_secs,
            cost: run.runtime_secs,
            metrics: run.metrics,
            failed: run.failed,
        }
    }

    #[test]
    fn diagnoses_low_hit_ratio_on_defaults() {
        let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let obs = observe(&sim, &sim.space().default_config());
        let findings = diagnose_dbms(&obs);
        assert!(!findings.is_empty());
        let components: Vec<&str> = findings.iter().map(|f| f.component.as_str()).collect();
        assert!(components.contains(&"buffer pool"), "{components:?}");
        assert!(components.contains(&"sort/hash memory"), "{components:?}");
    }

    #[test]
    fn diagnoses_swap_as_top_finding() {
        let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let mut cfg = sim.space().default_config();
        cfg.set("shared_buffers_mb", ParamValue::Int(8192));
        cfg.set("work_mem_mb", ParamValue::Int(400));
        let obs = observe(&sim, &cfg);
        let findings = diagnose_dbms(&obs);
        assert_eq!(findings[0].component, "memory");
    }

    #[test]
    fn findings_ranked_by_impact() {
        let sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let obs = observe(&sim, &sim.space().default_config());
        let findings = diagnose_dbms(&obs);
        for w in findings.windows(2) {
            assert!(w[0].impact_secs >= w[1].impact_secs);
        }
    }

    #[test]
    fn addm_tuner_improves_iteratively() {
        let mut sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let default_rt = sim.simulate(&sim.space().default_config()).runtime_secs;
        let mut tuner = AddmTuner::new();
        let out = tune(&mut sim, &mut tuner, 10, 1);
        let best = out.best.unwrap().runtime_secs;
        assert!(best < default_rt * 0.7, "default={default_rt} addm={best}");
        // Convergence curve should be (weakly) improving.
        let curve = out.history.best_so_far();
        assert!(curve.last().unwrap() <= &curve[0]);
    }

    #[test]
    fn adjustments_respect_domains() {
        let sim = DbmsSimulator::oltp_default();
        let space = sim.space();
        let mut cfg = space.default_config();
        let adj = Adjustment::Scale {
            knob: "shared_buffers_mb".into(),
            factor: 1e9,
        };
        adj.apply(space, &mut cfg);
        assert!(space.validate_config(&cfg).is_ok());
        assert_eq!(cfg.i64("shared_buffers_mb"), 65536);
    }

    #[test]
    fn proposals_always_valid() {
        let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let ctx = TuningContext {
            space: sim.space().clone(),
            profile: sim.profile(),
        };
        let mut tuner = AddmTuner::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut history = History::new();
        for _ in 0..6 {
            let cfg = tuner.propose(&ctx, &history, &mut rng);
            assert!(ctx.space.validate_config(&cfg).is_ok());
            history.push(sim.evaluate(&cfg, &mut rng));
        }
    }
}
