//! Trace-driven simulation and simulator-search tuning.
//!
//! Two pieces of the tutorial's category 3 live here:
//!
//! * [`TraceReplayPredictor`] — Narayanan/Thereska/Ailamaki (MASCOTS'05,
//!   "Continuous Resource Monitoring for Self-Predicting DBMS", the
//!   "Dushyanth" row of Table 2): record per-phase resource demand during
//!   normal operation, then answer *what-if* questions ("what if the disk
//!   were twice as fast? two more cores?") by replaying the trace against
//!   hypothetical hardware.
//! * [`SimulationSearchTuner`] — the generic "build a simulator of your
//!   deployment, search it offline, validate the winners on the real
//!   system" workflow. A [`DistortedShadow`] wrapper injects a systematic
//!   model-reality gap so experiments can quantify Table 1's "hard to
//!   comprehensively simulate complex internal dynamics".

use autotune_core::{Configuration, History, Recommendation, Tuner, TunerFamily, TuningContext};
use autotune_sim::trace::{ReplayHardware, ResourceTrace};
use rand::rngs::StdRng;
use rand::RngExt;

/// Replay-based what-if predictor over a recorded resource trace.
#[derive(Debug, Clone)]
pub struct TraceReplayPredictor {
    /// The recorded trace.
    pub trace: ResourceTrace,
    /// Hardware the trace was recorded on.
    pub baseline: ReplayHardware,
}

impl TraceReplayPredictor {
    /// Creates a predictor from a recorded trace.
    pub fn new(trace: ResourceTrace, baseline: ReplayHardware) -> Self {
        TraceReplayPredictor { trace, baseline }
    }

    /// Predicted runtime on the recording hardware.
    pub fn baseline_runtime(&self) -> f64 {
        self.trace.replay(&self.baseline)
    }

    /// What-if: predicted runtime under hypothetical hardware.
    pub fn what_if(&self, hw: &ReplayHardware) -> f64 {
        self.trace.replay(hw)
    }

    /// Predicted speedup from a hardware change.
    pub fn speedup(&self, hw: &ReplayHardware) -> f64 {
        let b = self.baseline_runtime();
        let w = self.what_if(hw);
        if w > 0.0 {
            b / w
        } else {
            1.0
        }
    }

    /// The resource to upgrade first (bottleneck analysis).
    pub fn bottleneck(&self) -> &'static str {
        self.trace.bottleneck(&self.baseline)
    }
}

/// A cheap stand-in for the real system that a simulation-based tuner
/// searches offline.
pub trait ShadowSimulator {
    /// Predicted runtime of a configuration (seconds).
    fn predict(&self, config: &Configuration) -> f64;
}

impl<F: Fn(&Configuration) -> f64> ShadowSimulator for F {
    fn predict(&self, config: &Configuration) -> f64 {
        self(config)
    }
}

/// Wraps a shadow simulator with a deterministic, configuration-dependent
/// distortion: `predicted * (1 + gap * sin(h(config)))`. Emulates the
/// systematic model-reality gap of an imperfect simulator — the gap is
/// *not* random noise, it consistently mis-ranks some configurations.
pub struct DistortedShadow<S> {
    inner: S,
    gap: f64,
}

impl<S: ShadowSimulator> DistortedShadow<S> {
    /// Wraps `inner` with relative distortion magnitude `gap` (e.g. 0.2).
    pub fn new(inner: S, gap: f64) -> Self {
        DistortedShadow { inner, gap }
    }
}

impl<S: ShadowSimulator> ShadowSimulator for DistortedShadow<S> {
    fn predict(&self, config: &Configuration) -> f64 {
        let base = self.inner.predict(config);
        // Deterministic pseudo-hash of the configuration text.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{config}").bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let phase = (h % 10_000) as f64 / 10_000.0 * std::f64::consts::TAU;
        base * (1.0 + self.gap * phase.sin())
    }
}

/// Simulated-annealing search over a shadow simulator, validating the top
/// candidates on the real system.
pub struct SimulationSearchTuner<S> {
    shadow: S,
    /// Shadow evaluations per search (cheap).
    pub shadow_budget: usize,
    /// Distinct candidates to validate on the real system.
    pub validate_top: usize,
    candidates: Vec<Configuration>,
    cursor: usize,
    searched: bool,
}

impl<S: ShadowSimulator> SimulationSearchTuner<S> {
    /// Creates the tuner around a shadow simulator.
    pub fn new(shadow: S) -> Self {
        SimulationSearchTuner {
            shadow,
            shadow_budget: 3000,
            validate_top: 8,
            candidates: Vec::new(),
            cursor: 0,
            searched: false,
        }
    }

    /// Simulated annealing in the unit cube of the space.
    fn anneal(&self, ctx: &TuningContext, rng: &mut StdRng) -> Vec<Configuration> {
        let space = &ctx.space;
        let mut current = space.default_config();
        let mut current_v = self.shadow.predict(&current);
        let mut pool: Vec<(f64, Configuration)> = vec![(current_v, current.clone())];
        let steps = self.shadow_budget.max(10);
        for step in 0..steps {
            let temp = 1.0 - step as f64 / steps as f64;
            let neighbor = space.neighbor(&current, 0.15 + 0.35 * temp, 0.3, rng);
            let v = self.shadow.predict(&neighbor);
            let accept = v < current_v || {
                let scale = current_v.abs().max(1e-9);
                let delta = (v - current_v) / scale;
                rng.random_range(0.0..1.0) < (-delta / (0.3 * temp + 1e-3)).exp()
            };
            if accept {
                current = neighbor.clone();
                current_v = v;
            }
            pool.push((v, neighbor));
        }
        pool.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out: Vec<Configuration> = Vec::new();
        for (_, c) in pool {
            if !out.contains(&c) {
                out.push(c);
            }
            if out.len() >= self.validate_top {
                break;
            }
        }
        out
    }
}

impl<S: ShadowSimulator> Tuner for SimulationSearchTuner<S> {
    fn name(&self) -> &str {
        "simulation-search"
    }

    fn family(&self) -> TunerFamily {
        TunerFamily::SimulationBased
    }

    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration {
        if !self.searched {
            self.candidates = self.anneal(ctx, rng);
            self.searched = true;
        }
        if self.cursor < self.candidates.len() {
            let c = self.candidates[self.cursor].clone();
            self.cursor += 1;
            return c;
        }
        // Validation budget left over: refine around the best real run.
        match history.best() {
            Some(b) => ctx.space.neighbor(&b.config, 0.08, 0.3, rng),
            None => ctx.space.random_config(rng),
        }
    }

    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(b) => Recommendation {
                config: b.config.clone(),
                expected_runtime: Some(b.runtime_secs),
                rationale: format!(
                    "best of {} simulator-suggested candidates validated on the real system",
                    self.candidates.len()
                ),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no validation runs".into(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::{tune, Objective};
    use autotune_sim::noise::NoiseModel;
    use autotune_sim::trace::PhaseTrace;
    use autotune_sim::{DbmsSimulator, NodeSpec};

    #[test]
    fn replay_what_if_faster_disk() {
        let sim = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let trace = sim.record_trace(&sim.space().default_config());
        let baseline = ReplayHardware::from_node(&NodeSpec::default());
        let pred = TraceReplayPredictor::new(trace, baseline);
        let mut fast = baseline;
        fast.disk_mbps *= 4.0;
        let speedup = pred.speedup(&fast);
        assert!(
            speedup > 1.5,
            "OLAP is I/O bound; 4x disk should speed up ≥1.5x, got {speedup}"
        );
    }

    #[test]
    fn replay_identifies_bottleneck() {
        let mut trace = ResourceTrace::default();
        trace.push(PhaseTrace {
            name: "net-heavy".into(),
            cpu_core_secs: 1.0,
            seq_io_mb: 10.0,
            rand_io_ops: 0.0,
            net_mb: 100_000.0,
            parallelism: 8,
        });
        let pred =
            TraceReplayPredictor::new(trace, ReplayHardware::from_node(&NodeSpec::default()));
        assert_eq!(pred.bottleneck(), "network");
    }

    #[test]
    fn replay_speedup_capped_by_other_resources() {
        let sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let trace = sim.record_trace(&sim.space().default_config());
        let baseline = ReplayHardware::from_node(&NodeSpec::default());
        let pred = TraceReplayPredictor::new(trace, baseline);
        let mut more_cores = baseline;
        more_cores.cores *= 8;
        // OLTP on a default box is random-I/O bound: cores alone help little.
        assert!(pred.speedup(&more_cores) < 1.5);
    }

    #[test]
    fn perfect_shadow_finds_near_optimal() {
        let shadow_sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let shadow = move |c: &Configuration| shadow_sim.simulate(c).runtime_secs;
        let mut tuner = SimulationSearchTuner::new(shadow);
        tuner.shadow_budget = 1500;
        let mut real = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let default_rt = real.simulate(&real.space().default_config()).runtime_secs;
        let out = tune(&mut real, &mut tuner, 10, 1);
        let best = out.best.unwrap().runtime_secs;
        assert!(
            best < default_rt * 0.5,
            "default={default_rt} sim-search={best}"
        );
    }

    #[test]
    fn distorted_shadow_is_worse_but_still_useful() {
        let mk_shadow = || {
            let s = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
            move |c: &Configuration| s.simulate(c).runtime_secs
        };
        let run = |gap: f64, seed: u64| {
            let mut tuner = SimulationSearchTuner::new(DistortedShadow::new(mk_shadow(), gap));
            tuner.shadow_budget = 1200;
            let mut real = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
            tune(&mut real, &mut tuner, 8, seed)
                .best
                .unwrap()
                .runtime_secs
        };
        let mut perfect_wins = 0;
        for seed in 0..5 {
            if run(0.0, seed) <= run(0.5, seed) * 1.02 {
                perfect_wins += 1;
            }
        }
        assert!(
            perfect_wins >= 3,
            "perfect shadow should usually beat heavily distorted one: {perfect_wins}/5"
        );
        // Even the distorted shadow beats defaults.
        let real = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
        let default_rt = real.simulate(&real.space().default_config()).runtime_secs;
        assert!(run(0.5, 11) < default_rt);
    }

    #[test]
    fn distortion_is_deterministic() {
        let shadow = DistortedShadow::new(|_c: &Configuration| 100.0, 0.3);
        let sim = DbmsSimulator::oltp_default();
        let c = sim.space().default_config();
        assert_eq!(shadow.predict(&c), shadow.predict(&c));
        let c2 = {
            let mut x = c.clone();
            x.set("work_mem_mb", autotune_core::ParamValue::Int(8));
            x
        };
        assert_ne!(shadow.predict(&c), shadow.predict(&c2));
    }
}
