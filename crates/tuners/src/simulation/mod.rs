//! **Category 3 — Simulation-based tuning** (§2.1): predict performance by
//! simulating the system. [`tracesim`] reproduces trace-replay what-if
//! prediction (Narayanan et al.) and the search-the-simulator workflow;
//! [`addm`] reproduces Oracle ADDM's diagnosis-driven tuning.

pub mod addm;
pub mod tracesim;

pub use addm::{diagnose_dbms, AddmTuner, Adjustment, Finding};
pub use tracesim::{DistortedShadow, ShadowSimulator, SimulationSearchTuner, TraceReplayPredictor};
