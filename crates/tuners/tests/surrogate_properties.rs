//! Property and determinism tests for the sparse-GP surrogate backends:
//! SoD/Nyström predictions must converge to the exact GP as the budget
//! approaches the training-set size, the `auto` policy must be
//! deterministic across same-seed runs, and the default configuration
//! must reproduce the historical exact-GP trajectories exactly.

use autotune_core::{tune, ConfigSpace, FunctionObjective, Objective, Tuner, TuningContext};
use autotune_core::{History, ParamSpec};
use autotune_math::gp::{GaussianProcess, Kernel, KernelKind};
use autotune_math::kmeans::farthest_point_subset;
use autotune_math::surrogate::{NystromGp, SodGp, Surrogate, SurrogateConfig, SurrogateKind};
use autotune_sim::{DbmsSimulator, NoiseModel};
use autotune_tuners::experiment::ITunedTuner;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn wavy(x: &[f64]) -> f64 {
    (4.0 * x[0]).sin() + 0.7 * (3.0 * x[1]).cos() + 0.3 * x[0] * x[1]
}

fn sample_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)])
        .collect();
    let ys = xs.iter().map(|x| wavy(x)).collect();
    (xs, ys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// As the inducing budget m reaches n, Nyström predictions collapse
    /// onto the exact GP (same kernel) within tolerance, and intermediate
    /// budgets never do worse than the coarsest one by a large factor.
    #[test]
    fn nystrom_converges_to_exact_as_m_reaches_n(seed in 0u64..1000, n in 15usize..40) {
        let (xs, ys) = sample_data(n, seed);
        let mut kernel = Kernel::new(KernelKind::Matern52, 2, 0.5);
        kernel.noise_variance = 1e-4;
        let exact = GaussianProcess::fit(kernel.clone(), xs.clone(), &ys).unwrap();
        let mut qrng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
        let queries: Vec<Vec<f64>> = (0..12)
            .map(|_| vec![qrng.random_range(0.0..1.0), qrng.random_range(0.0..1.0)])
            .collect();
        let ny = NystromGp::fit(kernel, xs.clone(), &ys, xs).unwrap();
        for q in &queries {
            let (em, ev) = exact.predict(q);
            let (nm, nv) = Surrogate::predict(&ny, q);
            prop_assert!((em - nm).abs() < 1e-5, "mean {em} vs {nm} at m=n");
            prop_assert!((ev - nv).abs() < 1e-5, "var {ev} vs {nv} at m=n");
        }
    }

    /// SoD with a budget covering the data is the exact GP, bit for bit.
    #[test]
    fn sod_converges_to_exact_at_full_budget(seed in 0u64..1000, n in 10usize..30) {
        let (xs, ys) = sample_data(n, seed);
        let sod = SodGp::fit_auto(KernelKind::Matern52, false, xs.clone(), &ys, n).unwrap();
        let exact = GaussianProcess::fit_auto(KernelKind::Matern52, xs, &ys).unwrap();
        let mut qrng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        for _ in 0..10 {
            let q = vec![qrng.random_range(0.0..1.0), qrng.random_range(0.0..1.0)];
            let (sm, sv) = Surrogate::predict(&sod, &q);
            let (em, ev) = exact.predict(&q);
            prop_assert_eq!(sm.to_bits(), em.to_bits());
            prop_assert_eq!(sv.to_bits(), ev.to_bits());
        }
    }

    /// The deterministic subset selection is stable under repetition and
    /// monotone in m (a bigger budget extends coverage, never reshuffles
    /// determinism).
    #[test]
    fn subset_selection_is_pure(seed in 0u64..1000, n in 8usize..40, m in 1usize..12) {
        let (xs, _) = sample_data(n, seed);
        let a = farthest_point_subset(&xs, m);
        let b = farthest_point_subset(&xs, m);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), m.min(n));
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]));
    }
}

fn bowl(dim: usize) -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
    let space = ConfigSpace::new(
        (0..dim)
            .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.8, ""))
            .collect(),
    );
    FunctionObjective::new(space, "bowl", |x| {
        x.iter().map(|v| (v - 0.4) * (v - 0.4)).sum::<f64>() + 1.0
    })
}

/// Runs iTuned with the given surrogate config and returns the proposed
/// trajectory (encoded configs) plus the best runtime.
fn ituned_trajectory(cfg: SurrogateConfig, budget: usize, seed: u64) -> (Vec<Vec<f64>>, f64) {
    let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic());
    let ctx = TuningContext {
        space: sim.space().clone(),
        profile: sim.profile(),
    };
    let mut tuner = ITunedTuner::new().with_init(6).with_surrogate(cfg);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = History::new();
    let mut trajectory = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..budget {
        let cfg = tuner.propose(&ctx, &history, &mut rng);
        trajectory.push(ctx.space.encode(&cfg));
        let obs = sim.evaluate(&cfg, &mut rng);
        best = best.min(obs.runtime_secs);
        tuner.observe(&obs);
        history.push(obs);
    }
    (trajectory, best)
}

/// `surrogate=auto` must give identical trajectories across two runs with
/// the same seed — including across the exact→Nyström switch point, which
/// this auto threshold forces mid-run.
#[test]
fn auto_surrogate_trajectories_are_deterministic() {
    let auto = SurrogateConfig {
        kind: SurrogateKind::Auto,
        budget: 8,
        auto_threshold: 10,
    };
    let (t1, b1) = ituned_trajectory(auto, 18, 42);
    let (t2, b2) = ituned_trajectory(auto, 18, 42);
    assert_eq!(t1.len(), t2.len());
    for (a, b) in t1.iter().zip(&t2) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "trajectory diverged");
        }
    }
    assert_eq!(b1.to_bits(), b2.to_bits());
}

/// The default surrogate config (auto, threshold 256) must reproduce the
/// explicit exact backend bit-for-bit at test-scale budgets — the
/// guarantee that this PR changes no seeded trajectory by default.
#[test]
fn default_auto_matches_exact_below_threshold() {
    let (auto_t, auto_b) = ituned_trajectory(SurrogateConfig::default(), 16, 7);
    let (exact_t, exact_b) = ituned_trajectory(SurrogateConfig::exact(), 16, 7);
    for (a, b) in auto_t.iter().zip(&exact_t) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "default auto drifted from exact");
        }
    }
    assert_eq!(auto_b.to_bits(), exact_b.to_bits());
}

/// Sparse backends still tune: on a smooth objective each backend's best
/// found value is within a modest factor of the exact backend's.
#[test]
fn sparse_backends_keep_tuning_quality() {
    let budget = 26;
    let run = |cfg: SurrogateConfig| -> f64 {
        let mut obj = bowl(4);
        let mut tuner = ITunedTuner::new().with_surrogate(cfg);
        tune(&mut obj, &mut tuner, budget, 11)
            .best
            .unwrap()
            .runtime_secs
    };
    let exact = run(SurrogateConfig::exact());
    let sod = run(SurrogateConfig::sod(12));
    let nystrom = run(SurrogateConfig::nystrom(12));
    assert!(sod <= exact * 1.10, "sod {sod} vs exact {exact}");
    assert!(
        nystrom <= exact * 1.10,
        "nystrom {nystrom} vs exact {exact}"
    );
}

/// Surrogate stats surface through the Tuner trait once a model exists.
#[test]
fn surrogate_stats_report_backend_and_sizes() {
    let mut sim = DbmsSimulator::oltp_default().with_noise(NoiseModel::none());
    let ctx = TuningContext {
        space: sim.space().clone(),
        profile: sim.profile(),
    };
    let mut tuner = ITunedTuner::new()
        .with_init(6)
        .with_surrogate(SurrogateConfig {
            kind: SurrogateKind::Nystrom,
            budget: 5,
            auto_threshold: 256,
        });
    let mut rng = StdRng::seed_from_u64(3);
    let mut history = History::new();
    assert!(tuner.surrogate_stats().is_none(), "no model before fitting");
    for _ in 0..10 {
        let cfg = tuner.propose(&ctx, &history, &mut rng);
        history.push(sim.evaluate(&cfg, &mut rng));
    }
    let stats = tuner.surrogate_stats().expect("model fitted");
    assert_eq!(stats.kind, "nystrom");
    assert_eq!(stats.active, 5);
    assert!(stats.observed >= 6, "observed={}", stats.observed);
    assert!(stats.fits >= 1);
}
