//! Property-based tests over tuner invariants: every tuner proposes only
//! valid configurations, SPEX repair always lands in the feasible region,
//! and rule books clamp arbitrary profiles into knob domains.

use autotune_core::{History, Objective, SystemProfile, Tuner, TuningContext};
use autotune_sim::{DbmsSimulator, HadoopSimulator, NoiseModel, SparkSimulator};
use autotune_tuners::adaptive::{
    ColtTuner, DynamicPartitionTuner, MrMoulderTuner, OnlineMemoryTuner, RecommendationRepository,
    TempoTuner,
};
use autotune_tuners::cost::{SparkCostTuner, StmmTuner, WhatIfTuner};
use autotune_tuners::experiment::{AdaptiveSamplingTuner, ITunedTuner, RrsTuner, SardTuner};
use autotune_tuners::ml::{OtterTuneTuner, RoddTuner, WorkloadRepository};
use autotune_tuners::rule::{rulebook_for, ConstraintSet, RuleBasedTuner, SpexTuner};
use autotune_tuners::simulation::AddmTuner;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn objectives() -> Vec<Box<dyn Objective>> {
    vec![
        Box::new(DbmsSimulator::oltp_default().with_noise(NoiseModel::realistic())),
        Box::new(HadoopSimulator::terasort_default().with_noise(NoiseModel::realistic())),
        Box::new(SparkSimulator::aggregation_default().with_noise(NoiseModel::realistic())),
    ]
}

fn all_tuners(
    space: &autotune_core::ConfigSpace,
    system: autotune_core::SystemKind,
) -> Vec<Box<dyn Tuner>> {
    use autotune_core::SystemKind::*;
    // System-agnostic tuners run everywhere…
    let mut tuners: Vec<Box<dyn Tuner>> = vec![
        Box::new(RuleBasedTuner::new("rules", rulebook_for(system))),
        Box::new(SpexTuner::new(space)),
        Box::new(StmmTuner::new()),
        Box::new(AddmTuner::new()),
        Box::new(SardTuner::new(3)),
        Box::new(AdaptiveSamplingTuner::new()),
        Box::new(ITunedTuner::new().with_init(4)),
        Box::new(RrsTuner::new()),
        Box::new(OtterTuneTuner::new(WorkloadRepository::new())),
        Box::new(RoddTuner {
            bootstrap: 4,
            epochs: 40,
            ..RoddTuner::new()
        }),
        Box::new(ColtTuner::new()),
        Box::new(OnlineMemoryTuner::new()),
        Box::new(DynamicPartitionTuner::new()),
        Box::new(MrMoulderTuner::new(RecommendationRepository::new())),
        Box::new(TempoTuner::new()),
    ];
    // …while the analytic cost models speak one system's knob vocabulary.
    match system {
        Hadoop => tuners.push(Box::new(WhatIfTuner::new())),
        Spark => tuners.push(Box::new(SparkCostTuner::new())),
        Dbms | Other => {}
    }
    tuners
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every tuner, on every system, proposes only domain-valid
    /// configurations for its first several rounds under arbitrary seeds.
    #[test]
    fn all_proposals_are_valid_configs(seed in 0u64..5000) {
        for mut obj in objectives() {
            let ctx = TuningContext {
                space: obj.space().clone(),
                profile: obj.profile(),
            };
            for mut tuner in all_tuners(&ctx.space, ctx.profile.system) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut history = History::new();
                for round in 0..6 {
                    let cfg = tuner.propose(&ctx, &history, &mut rng);
                    prop_assert!(
                        ctx.space.validate_config(&cfg).is_ok(),
                        "{} round {round} on {} proposed invalid config",
                        tuner.name(),
                        obj.name()
                    );
                    let obs = obj.evaluate(&cfg, &mut rng);
                    tuner.observe(&obs);
                    history.push(obs);
                }
                let rec = tuner.recommend(&ctx, &history);
                prop_assert!(ctx.space.validate_config(&rec.config).is_ok());
            }
        }
    }

    /// SPEX repair is idempotent and always reaches feasibility on the
    /// DBMS space.
    #[test]
    fn spex_repair_reaches_fixpoint(seed in 0u64..5000) {
        let sim = DbmsSimulator::oltp_default();
        let set = ConstraintSet::infer_for(sim.space());
        let profile = SystemProfile {
            memory_per_node_mb: 16384.0,
            ..SystemProfile::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = sim.space().random_config(&mut rng);
        let (fixed, _) = set.repair(sim.space(), &cfg, &profile);
        prop_assert!(set.check(&fixed, &profile).is_empty());
        let (fixed2, repairs2) = set.repair(sim.space(), &fixed, &profile);
        prop_assert_eq!(repairs2, 0, "repair must be a fixpoint");
        prop_assert_eq!(&fixed2, &fixed);
        prop_assert!(sim.space().validate_config(&fixed).is_ok());
    }
}
