//! WAter-style workload-signature compression: deterministic reduction of
//! a metric vector to a low-dimensional signature.
//!
//! Workload mapping (OtterTune §2.2) and drift detection both compare
//! metric vectors by Euclidean distance. As systems expose more internal
//! metrics the vectors grow, and every comparison — and every ball-tree
//! node — pays for the full dimensionality even though most metrics are
//! redundant or constant. WAter's observation is that a cheap two-stage
//! summary preserves the comparisons that matter:
//!
//! 1. **Feature selection**: rank dimensions by variance across the
//!    fitted population and drop the flat ones — a constant column
//!    contributes nothing to any distance.
//! 2. **Projection**: map the surviving features to `out_dim` components
//!    with a sparse random projection (Achlioptas 2003: entries
//!    `±√(3/out_dim)` with probability 1/6 each, else 0). By the
//!    Johnson–Lindenstrauss lemma pairwise distances are preserved up to
//!    a small multiplicative error with high probability, so
//!    nearest-neighbour answers on compressed signatures agree with the
//!    full-signature answers almost always (the recall gap is quantified
//!    in `bench_results/drift_recovery.json`).
//!
//! Determinism is load-bearing: the serve layer replays sessions
//! byte-identically through crashes, so the projection matrix must be a
//! pure function of `(seed, i, j)` — each entry is derived by hashing its
//! coordinates with SplitMix64, never by drawing from a stateful RNG
//! whose output would depend on iteration order.

/// SplitMix64 (Steele et al.) — the standard seed-spreading finalizer.
/// Duplicated from `autotune-serve` because `core` sits below it in the
/// crate graph; both copies are pinned by tests to the reference vector.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fitted signature compressor: variance-ranked feature selection plus
/// a seeded sparse random projection. Cloneable and cheap — the
/// projection matrix is recomputed entry-by-entry from the seed, so the
/// struct stores only the selection and the seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SignatureSummarizer {
    /// Dimensionality the summarizer was fitted over.
    input_dim: usize,
    /// Surviving input dimensions, ascending index order.
    selected: Vec<usize>,
    /// Target dimensionality of [`Self::compress`] when projecting.
    out_dim: usize,
    /// Seed of the projection matrix.
    seed: u64,
    /// Whether compression projects (`selected.len() > out_dim`) or just
    /// gathers the selected features.
    project: bool,
}

impl SignatureSummarizer {
    /// Fits a summarizer over a population of signature vectors (rows must
    /// share one dimension; ragged rows read missing entries as 0).
    ///
    /// Feature selection keeps the `4 × out_dim` highest-variance
    /// dimensions (ties break toward the lower index); zero-variance
    /// dimensions are kept only to fill that quota. With fewer than two
    /// rows there is no variance information, so every dimension survives
    /// in index order and only the projection stage compresses.
    pub fn fit(rows: &[Vec<f64>], out_dim: usize, seed: u64) -> Self {
        let out_dim = out_dim.max(1);
        let input_dim = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut selected: Vec<usize> = (0..input_dim).collect();
        if rows.len() >= 2 {
            let n = rows.len() as f64;
            let variance: Vec<f64> = (0..input_dim)
                .map(|d| {
                    let mean = rows
                        .iter()
                        .map(|r| r.get(d).copied().unwrap_or(0.0))
                        .sum::<f64>()
                        / n;
                    rows.iter()
                        .map(|r| {
                            let x = r.get(d).copied().unwrap_or(0.0) - mean;
                            x * x
                        })
                        .sum::<f64>()
                        / n
                })
                .collect();
            selected.sort_by(|&a, &b| variance[b].total_cmp(&variance[a]).then(a.cmp(&b)));
            selected.truncate((4 * out_dim).max(out_dim).min(input_dim));
            // Restore index order: distances don't care about feature
            // order, and a no-projection compress then passes the
            // selected sub-vector through unpermuted.
            selected.sort_unstable();
        }
        let project = selected.len() > out_dim;
        SignatureSummarizer {
            input_dim,
            selected,
            out_dim,
            seed,
            project,
        }
    }

    /// An identity summarizer over `dim` dimensions — what `fit` produces
    /// when no compression is warranted (`dim ≤ out_dim`).
    pub fn identity(dim: usize) -> Self {
        SignatureSummarizer {
            input_dim: dim,
            selected: (0..dim).collect(),
            out_dim: dim.max(1),
            seed: 0,
            project: false,
        }
    }

    /// Dimensionality [`Self::compress`] produces.
    pub fn output_dim(&self) -> usize {
        if self.project {
            self.out_dim
        } else {
            self.selected.len()
        }
    }

    /// Dimensionality the summarizer was fitted over.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Whether compression actually projects (vs merely gathering the
    /// selected features).
    pub fn is_projecting(&self) -> bool {
        self.project
    }

    /// One entry of the sparse projection matrix — a pure function of
    /// `(seed, row, column)`, so the matrix never has to be materialized
    /// or serialized.
    fn entry(&self, row: usize, col: usize) -> f64 {
        let h = splitmix64(splitmix64(self.seed ^ (row as u64 + 1)) ^ (col as u64 + 1));
        // Achlioptas weights: ±√3 with probability 1/6 each, else 0,
        // scaled by 1/√out_dim for the JL norm guarantee.
        let scale = (3.0 / self.out_dim as f64).sqrt();
        match h % 6 {
            0 => scale,
            1 => -scale,
            _ => 0.0,
        }
    }

    /// Compresses one signature vector (entries beyond the fitted
    /// dimensionality are ignored; missing entries read as 0).
    pub fn compress(&self, v: &[f64]) -> Vec<f64> {
        if !self.project {
            return self
                .selected
                .iter()
                .map(|&d| v.get(d).copied().unwrap_or(0.0))
                .collect();
        }
        (0..self.out_dim)
            .map(|i| {
                self.selected
                    .iter()
                    .enumerate()
                    .map(|(j, &d)| self.entry(i, j) * v.get(d).copied().unwrap_or(0.0))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random value in [0, 1).
    fn unit(seed: u64, i: u64) -> f64 {
        (splitmix64(seed ^ splitmix64(i)) % 1_000_000) as f64 / 1e6
    }

    fn population(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|r| {
                (0..dim)
                    .map(|d| unit(seed, (r * dim + d) as u64) * (d as f64 + 1.0))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn splitmix_reference_vector() {
        // Same constant the serve-layer copy is pinned to.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn fit_is_deterministic_and_row_order_insensitive() {
        let rows = population(50, 40, 7);
        let mut reversed = rows.clone();
        reversed.reverse();
        let a = SignatureSummarizer::fit(&rows, 8, 42);
        let b = SignatureSummarizer::fit(&reversed, 8, 42);
        assert_eq!(a, b);
        let v = &rows[3];
        assert_eq!(a.compress(v), b.compress(v));
        assert_eq!(a.output_dim(), 8);
        assert!(a.is_projecting());
    }

    #[test]
    fn small_inputs_pass_through_unprojected() {
        let rows = population(10, 4, 1);
        let s = SignatureSummarizer::fit(&rows, 8, 0);
        assert!(!s.is_projecting());
        assert_eq!(s.output_dim(), 4);
        assert_eq!(s.compress(&rows[0]), rows[0]);
        let id = SignatureSummarizer::identity(3);
        assert_eq!(id.compress(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        assert_eq!(id.input_dim(), 3);
    }

    #[test]
    fn flat_dimensions_are_dropped_first() {
        // 20 informative dims + 20 constant dims; out_dim 4 keeps 16
        // selected dims, all of which must be informative.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|r| {
                let mut v: Vec<f64> = (0..20).map(|d| unit(3, (r * 20 + d) as u64)).collect();
                v.extend(std::iter::repeat_n(5.0, 20));
                v
            })
            .collect();
        let s = SignatureSummarizer::fit(&rows, 4, 9);
        assert!(s.selected.iter().all(|&d| d < 20), "{:?}", s.selected);
        assert_eq!(s.selected.len(), 16);
    }

    #[test]
    fn projection_is_linear() {
        let rows = population(20, 64, 5);
        let s = SignatureSummarizer::fit(&rows, 8, 11);
        let a = &rows[0];
        let b = &rows[1];
        let diff: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
        let ca = s.compress(a);
        let cb = s.compress(b);
        let cd = s.compress(&diff);
        for i in 0..8 {
            assert!((ca[i] - cb[i] - cd[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn compression_roughly_preserves_distances() {
        // JL sanity: over a modest population the compressed/full distance
        // ratio stays within a loose band for the overwhelming majority of
        // pairs. out_dim 16 from 64 input dims.
        let rows = population(40, 64, 13);
        let s = SignatureSummarizer::fit(&rows, 16, 17);
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mut ok = 0usize;
        let mut total = 0usize;
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let full = dist(&rows[i], &rows[j]);
                let comp = dist(&s.compress(&rows[i]), &s.compress(&rows[j]));
                total += 1;
                if comp > 0.4 * full && comp < 1.9 * full {
                    ok += 1;
                }
            }
        }
        let frac = ok as f64 / total as f64;
        assert!(frac > 0.95, "distance preservation too weak: {frac}");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Compressed nearest-neighbour agrees with full-signature
        /// nearest-neighbour whenever the query matches a corpus member:
        /// the projection is linear, so a zero difference vector
        /// compresses to exactly zero and the true neighbour keeps
        /// distance 0 in the compressed space — no JL distortion can
        /// demote it. (The recall gap for *perturbed* queries is
        /// quantified in the serve-layer ann tests and the
        /// drift_recovery bench.)
        #[test]
        fn member_queries_agree_with_full_nn(
            seed in 0u64..512,
            n in 4usize..24,
            dim in 33usize..72,
            pick in 0usize..64,
        ) {
            let rows = population(n, dim, seed);
            let s = SignatureSummarizer::fit(&rows, 16, seed ^ 0xA5A5);
            let q = &rows[pick % n];
            let dist = |a: &[f64], b: &[f64]| {
                a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
            };
            let argmin = |ds: Vec<f64>| {
                ds.iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap()
            };
            let full = argmin(rows.iter().map(|r| dist(q, r)).collect());
            let cq = s.compress(q);
            let comp = argmin(rows.iter().map(|r| dist(&cq, &s.compress(r))).collect());
            proptest::prop_assert_eq!(full, pick % n);
            proptest::prop_assert_eq!(comp, full);
            proptest::prop_assert!(dist(&cq, &s.compress(&rows[pick % n])) == 0.0);
        }
    }

    #[test]
    fn empty_and_ragged_inputs_are_safe() {
        let s = SignatureSummarizer::fit(&[], 4, 0);
        assert_eq!(s.output_dim(), 0);
        assert!(s.compress(&[1.0, 2.0]).is_empty());
        let rows = vec![vec![1.0, 2.0, 3.0], vec![1.0]];
        let s = SignatureSummarizer::fit(&rows, 2, 0);
        // Ragged short row reads missing dims as 0; no panic.
        let _ = s.compress(&[5.0]);
    }
}
