//! Objectives: the thing a tuner optimizes. An objective wraps a target
//! system (real or simulated), evaluates configurations, and reports
//! [`Observation`]s — runtime plus the internal metric vector that
//! metric-driven tuners (OtterTune, ADDM) consume.

use crate::space::{ConfigSpace, Configuration};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Named runtime metrics collected during one evaluation (buffer hit
/// ratios, spill counts, GC time, …).
pub type Metrics = BTreeMap<String, f64>;

/// Which class of system an objective models — mirrors the tutorial's three
/// target platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// Centralized or parallel database system.
    Dbms,
    /// Hadoop MapReduce.
    Hadoop,
    /// Spark.
    Spark,
    /// Anything else (synthetic test functions, …).
    Other,
}

/// Broad workload class, used by rule-based tuners to pick rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Short transactional operations.
    Oltp,
    /// Analytical scans/joins/aggregations.
    Olap,
    /// Mixed transactional + analytical.
    Mixed,
    /// One-pass batch jobs (MapReduce style).
    Batch,
    /// Iterative computation (ML training, PageRank).
    Iterative,
    /// Micro-batch / streaming.
    Streaming,
}

/// Static description of the deployment a tuner is tuning — the information
/// a human expert (or a rule engine) would consult before touching knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Target platform.
    pub system: SystemKind,
    /// Workload class.
    pub workload: WorkloadClass,
    /// Total RAM per node in MB.
    pub memory_per_node_mb: f64,
    /// CPU cores per node.
    pub cores_per_node: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Sequential disk bandwidth per node, MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth per node, MB/s.
    pub network_mbps: f64,
    /// Input data size in MB.
    pub input_mb: f64,
}

impl SystemProfile {
    /// Cluster-wide memory in MB.
    pub fn total_memory_mb(&self) -> f64 {
        self.memory_per_node_mb * self.nodes as f64
    }

    /// Cluster-wide core count.
    pub fn total_cores(&self) -> usize {
        self.cores_per_node * self.nodes
    }
}

impl Default for SystemProfile {
    fn default() -> Self {
        SystemProfile {
            system: SystemKind::Other,
            workload: WorkloadClass::Batch,
            memory_per_node_mb: 16384.0,
            cores_per_node: 8,
            nodes: 1,
            disk_mbps: 200.0,
            network_mbps: 1000.0,
            input_mb: 10240.0,
        }
    }
}

/// One measured run of the target system under a configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Observation {
    /// The configuration that was run.
    pub config: Configuration,
    /// End-to-end runtime in seconds (the minimized objective).
    pub runtime_secs: f64,
    /// Monetary/abstract cost of the run (cluster-seconds by default).
    pub cost: f64,
    /// Internal runtime metrics exposed by the system.
    pub metrics: Metrics,
    /// Whether the run failed (OOM, crash); failed runs report the
    /// timeout/penalty runtime.
    pub failed: bool,
}

impl Observation {
    /// Convenience constructor for successful runs.
    pub fn ok(config: Configuration, runtime_secs: f64) -> Self {
        Observation {
            config,
            runtime_secs,
            cost: runtime_secs,
            metrics: Metrics::new(),
            failed: false,
        }
    }
}

/// A tunable target system.
///
/// `evaluate` is the expensive operation every tuner economizes: for
/// experiment-driven tuners each call is a real run; for cost-model and
/// simulation tuners the wrapped model is itself cheap but the trait is
/// identical, letting the bench harness compare families fairly.
pub trait Objective {
    /// The knob space this objective exposes.
    fn space(&self) -> &ConfigSpace;

    /// Static deployment description (hardware, workload class).
    fn profile(&self) -> SystemProfile;

    /// Runs the system under `config` and reports what happened.
    fn evaluate(&mut self, config: &Configuration, rng: &mut StdRng) -> Observation;

    /// Positions the objective at evaluation `step` (0-based) before
    /// `evaluate` is called for that step. Most objectives are stateless
    /// across evaluations and ignore this; time-varying objectives (a
    /// workload that shifts mid-session) use it so their phase is a pure
    /// function of the observation index — crash recovery replays
    /// observations without re-evaluating, and an internal call counter
    /// would desynchronize from the replayed history.
    fn seek(&mut self, _step: u64) {}

    /// Human-readable objective name.
    fn name(&self) -> &str {
        "objective"
    }
}

/// Evaluation budget for a tuning session.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum number of `evaluate` calls.
    pub max_evaluations: usize,
}

impl Budget {
    /// Budget with a fixed number of runs.
    pub fn evaluations(n: usize) -> Self {
        Budget { max_evaluations: n }
    }
}

/// A synthetic objective wrapping a closure over the unit cube — used
/// throughout the test suites to validate tuners against known optima.
pub struct FunctionObjective<F: FnMut(&[f64]) -> f64> {
    space: ConfigSpace,
    f: F,
    name: String,
}

impl<F: FnMut(&[f64]) -> f64> FunctionObjective<F> {
    /// Wraps `f` (which receives the unit-cube encoding of the config).
    pub fn new(space: ConfigSpace, name: &str, f: F) -> Self {
        FunctionObjective {
            space,
            f,
            name: name.to_string(),
        }
    }
}

impl<F: FnMut(&[f64]) -> f64> Objective for FunctionObjective<F> {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn profile(&self) -> SystemProfile {
        SystemProfile::default()
    }

    fn evaluate(&mut self, config: &Configuration, _rng: &mut StdRng) -> Observation {
        let x = self.space.encode(config);
        let runtime = (self.f)(&x);
        Observation::ok(config.clone(), runtime)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpec;
    use rand::SeedableRng;

    fn unit_space(dim: usize) -> ConfigSpace {
        ConfigSpace::new(
            (0..dim)
                .map(|i| ParamSpec::float(&format!("x{i}"), 0.0, 1.0, 0.5, ""))
                .collect(),
        )
    }

    #[test]
    fn function_objective_evaluates_encoding() {
        let space = unit_space(2);
        let mut obj = FunctionObjective::new(space, "sum", |x| x.iter().sum());
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = obj.space().default_config();
        let obs = obj.evaluate(&cfg, &mut rng);
        assert!((obs.runtime_secs - 1.0).abs() < 1e-12);
        assert!(!obs.failed);
    }

    #[test]
    fn profile_totals() {
        let p = SystemProfile {
            nodes: 4,
            cores_per_node: 8,
            memory_per_node_mb: 1024.0,
            ..SystemProfile::default()
        };
        assert_eq!(p.total_cores(), 32);
        assert!((p.total_memory_mb() - 4096.0).abs() < 1e-12);
    }

    #[test]
    fn observation_ok_defaults() {
        let obs = Observation::ok(Configuration::new(), 12.5);
        assert_eq!(obs.cost, 12.5);
        assert!(obs.metrics.is_empty());
        assert!(!obs.failed);
    }

    #[test]
    fn budget_constructor() {
        assert_eq!(Budget::evaluations(30).max_evaluations, 30);
    }
}
