//! Machine-readable knob constraints compiled by `autotune-lint
//! --emit-constraints`.
//!
//! The artifact (`bench_results/knob_constraints.json`) merges what the
//! workspace's own sources provably imply about feasible knob values
//! (the K4–K6 dataflow facts: guard-narrowed ranges, cross-knob
//! dependencies) with the declarative knowledge already encoded in the
//! rule DSL (best-practice rules, vendor spec sheets, confnav levels).
//! Tuners consume it opt-in via `tuners::util`: reduced bounds shrink
//! the search box, priors seed the initial design, and dependencies
//! filter candidate pools. This module owns the schema so every
//! producer and consumer round-trips through one type.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Constraints for one knob of one target system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobConstraint {
    /// Declared domain lower bound (numeric encoding; booleans are 0/1,
    /// categoricals are choice indices).
    pub declared_lo: f64,
    /// Declared domain upper bound.
    pub declared_hi: f64,
    /// Reduced feasible lower bound (`>= declared_lo`); equal to the
    /// declared bound when no source narrows it.
    pub reduced_lo: f64,
    /// Reduced feasible upper bound (`<= declared_hi`).
    pub reduced_hi: f64,
    /// Whether the knob is declared log-scaled (orders-of-magnitude
    /// domains such as buffer sizes); a prior-shaping hint.
    pub log_scale: bool,
    /// The vendor default, when numeric — priors centre here absent
    /// stronger knowledge.
    pub default: Option<f64>,
    /// Declared unit string (e.g. `"MB"`, `"ms"`), when any.
    pub unit: Option<String>,
    /// Point priors: concrete values knowledge sources recommend.
    pub priors: Vec<Prior>,
    /// Provenance tags (`"K4:<file>:<line>"`, `"bestpractice:<rule>"`,
    /// ...), sorted and deduplicated.
    pub sources: Vec<String>,
}

/// One recommended value for a knob, with provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prior {
    /// The recommended value, in the knob's natural scale.
    pub value: f64,
    /// Relative weight among this knob's priors (higher = stronger).
    pub weight: f64,
    /// Which knowledge source produced it.
    pub source: String,
}

/// A pairwise or aggregate inter-knob constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dependency {
    /// `a <= factor * b` (e.g. sort buffer at most 60% of task heap).
    LeFactor {
        /// Constrained knob.
        a: String,
        /// Bounding knob.
        b: String,
        /// Multiplier on `b`.
        factor: f64,
        /// Provenance tag.
        source: String,
    },
    /// `prod(term_value * coef) <= limit` over the listed knobs
    /// (e.g. per-executor memory × executor count under cluster memory).
    ProductLe {
        /// `(knob, coefficient)` factors of the product.
        terms: Vec<(String, f64)>,
        /// Upper limit on the product.
        limit: f64,
        /// Provenance tag.
        source: String,
    },
    /// `sum(term_value * coef) <= limit` (e.g. DBMS memory regions under
    /// a fraction of system RAM).
    SumLe {
        /// `(knob, coefficient)` terms of the sum.
        terms: Vec<(String, f64)>,
        /// Upper limit on the sum.
        limit: f64,
        /// Provenance tag.
        source: String,
    },
}

/// All constraints for one target system (one params module).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConstraints {
    /// Per-knob bounds and priors, keyed by knob name. Every knob the
    /// system declares appears here, narrowed or not.
    pub knobs: BTreeMap<String, KnobConstraint>,
    /// Inter-knob dependencies, in a deterministic order.
    pub deps: Vec<Dependency>,
}

/// The full committed artifact: constraints for every target system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobConstraints {
    /// Schema version (bumped on incompatible change).
    pub version: u32,
    /// Tool that produced the artifact.
    pub generator: String,
    /// Per-system constraints, keyed `"dbms"` / `"hadoop"` / `"spark"`.
    pub systems: BTreeMap<String, SystemConstraints>,
}

impl KnobConstraints {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Parses the artifact from its JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let parsed: KnobConstraints =
            serde_json::from_str(text).map_err(|e| format!("knob constraints parse: {e}"))?;
        if parsed.version != Self::VERSION {
            return Err(format!(
                "knob constraints version {} unsupported (expected {})",
                parsed.version,
                Self::VERSION
            ));
        }
        Ok(parsed)
    }

    /// Reads and parses the artifact from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("knob constraints read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Serializes the artifact as deterministic pretty JSON (BTreeMap
    /// ordering; byte-stable for the CI drift check). Serialization of
    /// this plain-data type cannot realistically fail, but the error is
    /// surfaced rather than panicking inside a library.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("knob constraints serialize: {e}"))
    }

    /// Constraints for one system, if present.
    pub fn system(&self, name: &str) -> Option<&SystemConstraints> {
        self.systems.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnobConstraints {
        let mut knobs = BTreeMap::new();
        knobs.insert(
            "exec_mem_mb".to_string(),
            KnobConstraint {
                declared_lo: 512.0,
                declared_hi: 16384.0,
                reduced_lo: 1024.0,
                reduced_hi: 16384.0,
                log_scale: true,
                default: Some(2048.0),
                unit: Some("MB".to_string()),
                priors: vec![Prior {
                    value: 4096.0,
                    weight: 1.0,
                    source: "bestpractice:mem".to_string(),
                }],
                sources: vec!["K4:crates/sim/src/spark/engine.rs:10".to_string()],
            },
        );
        let mut systems = BTreeMap::new();
        systems.insert(
            "spark".to_string(),
            SystemConstraints {
                knobs,
                deps: vec![Dependency::ProductLe {
                    terms: vec![
                        ("exec_mem_mb".to_string(), 1.0),
                        ("executors".to_string(), 1.0),
                    ],
                    limit: 65536.0,
                    source: "K6".to_string(),
                }],
            },
        );
        KnobConstraints {
            version: KnobConstraints::VERSION,
            generator: "autotune-lint --emit-constraints".to_string(),
            systems,
        }
    }

    #[test]
    fn round_trips_through_json() {
        let c = sample();
        let text = c.to_json().expect("serializes");
        let back = KnobConstraints::from_json(&text).expect("parses");
        assert_eq!(back, c);
    }

    #[test]
    fn serialization_is_deterministic() {
        let c = sample();
        let text = c.to_json().expect("serializes");
        assert_eq!(text, c.clone().to_json().expect("serializes"));
        let reparsed = KnobConstraints::from_json(&text).expect("parses");
        assert_eq!(reparsed.to_json().expect("serializes"), text);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut c = sample();
        c.version = 99;
        let text = c.to_json().expect("serializes");
        let err = KnobConstraints::from_json(&text).expect_err("rejected");
        assert!(err.contains("version 99"));
    }
}
