//! Typed configuration parameters ("knobs").
//!
//! Database systems expose hundreds of tuning knobs, Hadoop and Spark about
//! 200 each (§1 of the tutorial). Each knob here carries a typed domain
//! (integer, float, boolean, categorical), an optional logarithmic scale
//! for knobs spanning orders of magnitude (e.g. buffer sizes), a default,
//! and documentation — enough for every tuner family to reason about it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete value for one parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Integer-valued knob (e.g. `shuffle.partitions`).
    Int(i64),
    /// Continuous knob (e.g. `memory.fraction`).
    Float(f64),
    /// On/off switch (e.g. `compress.map.output`).
    Bool(bool),
    /// Categorical choice (e.g. serializer = `java` | `kryo`).
    Str(String),
}

impl ParamValue {
    /// The value as f64 if numeric (`Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            ParamValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            ParamValue::Str(_) => None,
        }
    }

    /// The value as i64 if it is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as bool if it is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as &str if it is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v:.4}"),
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// The domain a parameter ranges over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamDomain {
    /// Integers in `[min, max]`; `log` scales the unit-interval encoding
    /// logarithmically (for knobs like buffer sizes spanning 1 MB – 32 GB).
    Int {
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
        /// Log-scale encoding (requires `min >= 1`).
        log: bool,
    },
    /// Floats in `[min, max]`, optionally log-scaled.
    Float {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
        /// Log-scale encoding (requires `min > 0`).
        log: bool,
    },
    /// Boolean switch.
    Bool,
    /// One of a fixed set of strings.
    Categorical {
        /// Allowed choices, in a stable order.
        choices: Vec<String>,
    },
}

impl ParamDomain {
    /// Whether `value` lies inside this domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (ParamDomain::Int { min, max, .. }, ParamValue::Int(v)) => v >= min && v <= max,
            (ParamDomain::Float { min, max, .. }, ParamValue::Float(v)) => *v >= *min && *v <= *max,
            (ParamDomain::Bool, ParamValue::Bool(_)) => true,
            (ParamDomain::Categorical { choices }, ParamValue::Str(s)) => {
                choices.iter().any(|c| c == s)
            }
            _ => false,
        }
    }

    /// Encodes a value into `[0, 1]`.
    ///
    /// # Panics
    /// Panics if the value is not in the domain (callers validate first).
    pub fn encode(&self, value: &ParamValue) -> f64 {
        assert!(self.contains(value), "encode: {value} not in domain");
        match (self, value) {
            (ParamDomain::Int { min, max, log }, ParamValue::Int(v)) => {
                if *log {
                    debug_assert!(*min >= 1, "log-scale int domain needs min >= 1");
                    let lo = (*min as f64).ln();
                    let hi = (*max as f64).ln();
                    if hi > lo {
                        ((*v as f64).ln() - lo) / (hi - lo)
                    } else {
                        0.5
                    }
                } else if max > min {
                    (*v - *min) as f64 / (*max - *min) as f64
                } else {
                    0.5
                }
            }
            (ParamDomain::Float { min, max, log }, ParamValue::Float(v)) => {
                if *log {
                    debug_assert!(*min > 0.0, "log-scale float domain needs min > 0");
                    let lo = min.ln();
                    let hi = max.ln();
                    if hi > lo {
                        (v.ln() - lo) / (hi - lo)
                    } else {
                        0.5
                    }
                } else if max > min {
                    (v - min) / (max - min)
                } else {
                    0.5
                }
            }
            (ParamDomain::Bool, ParamValue::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            (ParamDomain::Categorical { choices }, ParamValue::Str(s)) => {
                // lint:allow(unwrap) contains() already validated s is one of choices
                let idx = choices.iter().position(|c| c == s).expect("validated");
                if choices.len() > 1 {
                    idx as f64 / (choices.len() - 1) as f64
                } else {
                    0.5
                }
            }
            _ => unreachable!("contains() validated the pairing"),
        }
    }

    /// Decodes a unit-interval coordinate (clamped) back into the domain.
    pub fn decode(&self, u: f64) -> ParamValue {
        let u = u.clamp(0.0, 1.0);
        match self {
            ParamDomain::Int { min, max, log } => {
                let v = if *log {
                    let lo = (*min as f64).ln();
                    let hi = (*max as f64).ln();
                    (lo + u * (hi - lo)).exp()
                } else {
                    *min as f64 + u * (*max - *min) as f64
                };
                ParamValue::Int((v.round() as i64).clamp(*min, *max))
            }
            ParamDomain::Float { min, max, log } => {
                let v = if *log {
                    (min.ln() + u * (max.ln() - min.ln())).exp()
                } else {
                    min + u * (max - min)
                };
                ParamValue::Float(v.clamp(*min, *max))
            }
            ParamDomain::Bool => ParamValue::Bool(u >= 0.5),
            ParamDomain::Categorical { choices } => {
                let idx = if choices.len() > 1 {
                    ((u * (choices.len() - 1) as f64).round() as usize).min(choices.len() - 1)
                } else {
                    0
                };
                ParamValue::Str(choices[idx].clone())
            }
        }
    }
}

/// Full specification of one tunable parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Knob name, e.g. `"shared_buffers_mb"`.
    pub name: String,
    /// Value domain.
    pub domain: ParamDomain,
    /// Vendor default (the "untuned" setting).
    pub default: ParamValue,
    /// Optional unit for display, e.g. `"MB"`.
    pub unit: Option<String>,
    /// Human description (what the knob controls).
    pub description: String,
}

impl ParamSpec {
    /// Integer knob.
    pub fn int(name: &str, min: i64, max: i64, default: i64, desc: &str) -> Self {
        let spec = ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Int {
                min,
                max,
                log: false,
            },
            default: ParamValue::Int(default),
            unit: None,
            description: desc.to_string(),
        };
        spec.validate();
        spec
    }

    /// Integer knob with logarithmic encoding (e.g. memory sizes).
    pub fn int_log(name: &str, min: i64, max: i64, default: i64, desc: &str) -> Self {
        assert!(min >= 1, "log-scale int knob {name} needs min >= 1");
        let spec = ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Int {
                min,
                max,
                log: true,
            },
            default: ParamValue::Int(default),
            unit: None,
            description: desc.to_string(),
        };
        spec.validate();
        spec
    }

    /// Float knob.
    pub fn float(name: &str, min: f64, max: f64, default: f64, desc: &str) -> Self {
        let spec = ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Float {
                min,
                max,
                log: false,
            },
            default: ParamValue::Float(default),
            unit: None,
            description: desc.to_string(),
        };
        spec.validate();
        spec
    }

    /// Float knob with logarithmic encoding.
    pub fn float_log(name: &str, min: f64, max: f64, default: f64, desc: &str) -> Self {
        assert!(min > 0.0, "log-scale float knob {name} needs min > 0");
        let spec = ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Float {
                min,
                max,
                log: true,
            },
            default: ParamValue::Float(default),
            unit: None,
            description: desc.to_string(),
        };
        spec.validate();
        spec
    }

    /// Boolean knob.
    pub fn boolean(name: &str, default: bool, desc: &str) -> Self {
        ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Bool,
            default: ParamValue::Bool(default),
            unit: None,
            description: desc.to_string(),
        }
    }

    /// Categorical knob.
    pub fn categorical(name: &str, choices: &[&str], default: &str, desc: &str) -> Self {
        let spec = ParamSpec {
            name: name.to_string(),
            domain: ParamDomain::Categorical {
                choices: choices.iter().map(|s| s.to_string()).collect(),
            },
            default: ParamValue::Str(default.to_string()),
            unit: None,
            description: desc.to_string(),
        };
        spec.validate();
        spec
    }

    /// Attaches a display unit.
    pub fn with_unit(mut self, unit: &str) -> Self {
        self.unit = Some(unit.to_string());
        self
    }

    /// Asserts internal consistency (default inside domain, sane bounds).
    pub fn validate(&self) {
        match &self.domain {
            ParamDomain::Int { min, max, .. } => {
                assert!(min <= max, "knob {}: min > max", self.name)
            }
            ParamDomain::Float { min, max, .. } => {
                assert!(min <= max, "knob {}: min > max", self.name)
            }
            ParamDomain::Bool => {}
            ParamDomain::Categorical { choices } => {
                assert!(!choices.is_empty(), "knob {}: no choices", self.name)
            }
        }
        assert!(
            self.domain.contains(&self.default),
            "knob {}: default {} outside domain",
            self.name,
            self.default
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encode_decode_roundtrip() {
        let d = ParamDomain::Int {
            min: 10,
            max: 110,
            log: false,
        };
        for v in [10i64, 35, 60, 110] {
            let u = d.encode(&ParamValue::Int(v));
            assert_eq!(d.decode(u), ParamValue::Int(v));
        }
    }

    #[test]
    fn log_scale_centers_geometric_mean() {
        let d = ParamDomain::Int {
            min: 1,
            max: 1024,
            log: true,
        };
        // u = 0.5 should decode to ~32 (geometric midpoint), not ~512.
        let mid = d.decode(0.5);
        assert_eq!(mid, ParamValue::Int(32));
    }

    #[test]
    fn float_roundtrip_and_clamp() {
        let d = ParamDomain::Float {
            min: 0.1,
            max: 0.9,
            log: false,
        };
        let u = d.encode(&ParamValue::Float(0.5));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(d.decode(-3.0), ParamValue::Float(0.1));
        assert_eq!(d.decode(9.0), ParamValue::Float(0.9));
    }

    #[test]
    fn bool_encoding() {
        let d = ParamDomain::Bool;
        assert_eq!(d.encode(&ParamValue::Bool(true)), 1.0);
        assert_eq!(d.decode(0.2), ParamValue::Bool(false));
        assert_eq!(d.decode(0.8), ParamValue::Bool(true));
    }

    #[test]
    fn categorical_roundtrip() {
        let d = ParamDomain::Categorical {
            choices: vec!["java".into(), "kryo".into(), "custom".into()],
        };
        for c in ["java", "kryo", "custom"] {
            let u = d.encode(&ParamValue::Str(c.to_string()));
            assert_eq!(d.decode(u), ParamValue::Str(c.to_string()));
        }
    }

    #[test]
    fn contains_rejects_wrong_type_and_range() {
        let d = ParamDomain::Int {
            min: 0,
            max: 10,
            log: false,
        };
        assert!(!d.contains(&ParamValue::Int(11)));
        assert!(!d.contains(&ParamValue::Float(5.0)));
        assert!(!d.contains(&ParamValue::Str("5".into())));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn builder_rejects_bad_default() {
        ParamSpec::int("x", 0, 10, 42, "bad");
    }

    #[test]
    fn display_formatting() {
        assert_eq!(ParamValue::Int(7).to_string(), "7");
        assert_eq!(ParamValue::Bool(true).to_string(), "true");
        assert_eq!(ParamValue::Str("kryo".into()).to_string(), "kryo");
    }

    #[test]
    fn singleton_domains_encode_to_half() {
        let d = ParamDomain::Int {
            min: 5,
            max: 5,
            log: false,
        };
        assert_eq!(d.encode(&ParamValue::Int(5)), 0.5);
        assert_eq!(d.decode(0.9), ParamValue::Int(5));
    }

    #[test]
    fn as_accessors() {
        assert_eq!(ParamValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(ParamValue::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(ParamValue::Bool(true).as_f64(), Some(1.0));
        assert_eq!(ParamValue::Str("x".into()).as_f64(), None);
        assert_eq!(ParamValue::Int(3).as_i64(), Some(3));
        assert_eq!(ParamValue::Bool(false).as_bool(), Some(false));
        assert_eq!(ParamValue::Str("y".into()).as_str(), Some("y"));
    }
}
