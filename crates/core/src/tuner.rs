//! The [`Tuner`] trait and the six-family taxonomy from the tutorial.
//!
//! Every concrete tuner in `autotune-tuners` implements this trait; the
//! [`crate::session::TuningSession`] drives the propose → evaluate →
//! observe loop uniformly, so the bench harness can compare families
//! head-to-head (Table 1 of the paper).

use crate::history::History;
use crate::objective::SystemProfile;
use crate::space::{ConfigSpace, Configuration};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six categories of automatic parameter tuning approaches
/// (§2.1 of Lu et al., VLDB 2019).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TunerFamily {
    /// Expert rules / tuning guides, no model.
    RuleBased,
    /// Analytical cost models over system internals.
    CostModeling,
    /// Modular or complete system simulation.
    SimulationBased,
    /// Search guided by actual experiment runs.
    ExperimentDriven,
    /// Black-box models learned from observations.
    MachineLearning,
    /// Online adjustment while the application runs.
    Adaptive,
}

impl TunerFamily {
    /// All six families in the paper's order.
    pub fn all() -> [TunerFamily; 6] {
        [
            TunerFamily::RuleBased,
            TunerFamily::CostModeling,
            TunerFamily::SimulationBased,
            TunerFamily::ExperimentDriven,
            TunerFamily::MachineLearning,
            TunerFamily::Adaptive,
        ]
    }
}

impl fmt::Display for TunerFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TunerFamily::RuleBased => "rule-based",
            TunerFamily::CostModeling => "cost modeling",
            TunerFamily::SimulationBased => "simulation-based",
            TunerFamily::ExperimentDriven => "experiment-driven",
            TunerFamily::MachineLearning => "machine learning",
            TunerFamily::Adaptive => "adaptive",
        };
        f.write_str(s)
    }
}

/// Everything a tuner may consult besides the observation history.
#[derive(Debug, Clone)]
pub struct TuningContext {
    /// The knob space being tuned.
    pub space: ConfigSpace,
    /// Deployment profile (hardware, workload class, data size).
    pub profile: SystemProfile,
}

/// A snapshot of the surrogate model a GP-backed tuner currently holds,
/// surfaced through [`Tuner::surrogate_stats`] for observability (the
/// serve layer's `/metrics` endpoint reports it per session).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateStats {
    /// Backend label: `"exact"`, `"sod"`, or `"nystrom"`.
    pub kind: String,
    /// Observations the model has absorbed.
    pub observed: usize,
    /// Active training-set / inducing-point size the per-prediction cost
    /// scales with.
    pub active: usize,
    /// Full hyper-parameter-search fits performed so far.
    pub fits: u64,
}

/// Final output of a tuning session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The recommended configuration.
    pub config: Configuration,
    /// Expected runtime under the recommendation, if the tuner has a model.
    pub expected_runtime: Option<f64>,
    /// Why the tuner recommends this configuration.
    pub rationale: String,
}

/// An automatic parameter tuner.
///
/// The contract: the session repeatedly calls [`Tuner::propose`], runs the
/// objective, and feeds the result back through [`Tuner::observe`]. When
/// the budget is spent it asks for a final [`Tuner::recommend`]ation.
/// Tuners that do not search (rule-based, cost models) simply propose
/// their computed configuration every time.
pub trait Tuner {
    /// Short identifier, e.g. `"ituned"`.
    fn name(&self) -> &str;

    /// Which of the paper's six families this tuner belongs to.
    fn family(&self) -> TunerFamily;

    /// Chooses the next configuration to evaluate.
    fn propose(
        &mut self,
        ctx: &TuningContext,
        history: &History,
        rng: &mut StdRng,
    ) -> Configuration;

    /// Receives the result of the last proposal. Default: no-op.
    fn observe(&mut self, _obs: &crate::objective::Observation) {}

    /// Produces the final recommendation given everything observed.
    fn recommend(&self, ctx: &TuningContext, history: &History) -> Recommendation {
        match history.best() {
            Some(best) => Recommendation {
                config: best.config.clone(),
                expected_runtime: Some(best.runtime_secs),
                rationale: format!(
                    "best of {} observed runs ({} tuner)",
                    history.len(),
                    self.name()
                ),
            },
            None => Recommendation {
                config: ctx.space.default_config(),
                expected_runtime: None,
                rationale: "no observations; falling back to defaults".to_string(),
            },
        }
    }

    /// How many observations this tuner wants before its model is useful
    /// (sessions may surface this to users). Default 0.
    fn min_history(&self) -> usize {
        0
    }

    /// Stats about the surrogate model currently held, if the tuner is
    /// model-based and has fitted one. Default: `None` (model-free tuners
    /// and tuners still in their initial design phase).
    fn surrogate_stats(&self) -> Option<SurrogateStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{Observation, SystemProfile};
    use crate::param::ParamSpec;
    use rand::SeedableRng;

    struct FixedTuner {
        cfg: Configuration,
    }

    impl Tuner for FixedTuner {
        fn name(&self) -> &str {
            "fixed"
        }
        fn family(&self) -> TunerFamily {
            TunerFamily::RuleBased
        }
        fn propose(
            &mut self,
            _ctx: &TuningContext,
            _history: &History,
            _rng: &mut StdRng,
        ) -> Configuration {
            self.cfg.clone()
        }
    }

    fn ctx() -> TuningContext {
        TuningContext {
            space: ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")]),
            profile: SystemProfile::default(),
        }
    }

    #[test]
    fn family_display_and_all() {
        assert_eq!(TunerFamily::all().len(), 6);
        assert_eq!(TunerFamily::RuleBased.to_string(), "rule-based");
        assert_eq!(TunerFamily::MachineLearning.to_string(), "machine learning");
    }

    #[test]
    fn default_recommend_uses_best_history() {
        let c = ctx();
        let mut t = FixedTuner {
            cfg: c.space.default_config(),
        };
        let mut h = History::new();
        h.push(Observation::ok(c.space.decode(&[0.2]), 8.0));
        h.push(Observation::ok(c.space.decode(&[0.8]), 3.0));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = t.propose(&c, &h, &mut rng);
        let rec = t.recommend(&c, &h);
        assert_eq!(rec.expected_runtime, Some(3.0));
        assert_eq!(rec.config, c.space.decode(&[0.8]));
    }

    #[test]
    fn default_recommend_falls_back_to_defaults() {
        let c = ctx();
        let t = FixedTuner {
            cfg: c.space.default_config(),
        };
        let rec = t.recommend(&c, &History::new());
        assert_eq!(rec.config, c.space.default_config());
        assert!(rec.expected_runtime.is_none());
    }
}
