//! Exporting tuning artifacts: histories as CSV for analysis notebooks
//! and configurations in `key = value` form for dropping into real config
//! files.

use crate::history::History;
use crate::space::{ConfigSpace, Configuration};
use std::fmt::Write as _;

/// Renders a history as CSV: one row per observation with the knob
/// columns of `space`, the runtime, cost, failure flag, and every metric
/// seen anywhere in the history (missing values empty).
pub fn history_to_csv(history: &History, space: &ConfigSpace) -> String {
    let metric_names = history.metric_names();
    let mut out = String::new();
    // Header. Knob and metric names are user-controlled strings, so every
    // header cell is escaped just like the value cells below — a metric
    // named `lock waits, total` must not shift all following columns.
    out.push_str("run");
    for p in space.params() {
        let _ = write!(out, ",{}", csv_escape(&p.name));
    }
    out.push_str(",runtime_secs,cost,failed");
    for m in &metric_names {
        let _ = write!(out, ",{}", csv_escape(m));
    }
    out.push('\n');
    // Rows.
    for (i, obs) in history.all().iter().enumerate() {
        let _ = write!(out, "{i}");
        for p in space.params() {
            match obs.config.get(&p.name) {
                Some(v) => {
                    let _ = write!(out, ",{}", csv_escape(&v.to_string()));
                }
                None => out.push(','),
            }
        }
        let _ = write!(out, ",{},{},{}", obs.runtime_secs, obs.cost, obs.failed);
        for m in &metric_names {
            match obs.metrics.get(m) {
                Some(v) => {
                    let _ = write!(out, ",{}", csv_escape(&v.to_string()));
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a configuration as a `key = value` properties block, sorted by
/// key — ready to paste into a `postgresql.conf`-style file.
pub fn config_to_properties(config: &Configuration) -> String {
    let mut out = String::new();
    for (k, v) in config.iter() {
        let _ = writeln!(out, "{k} = {v}");
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Observation;
    use crate::param::ParamSpec;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::int("mem", 1, 100, 10, ""),
            ParamSpec::categorical("codec", &["a,b", "plain"], "plain", ""),
        ])
    }

    #[test]
    fn csv_shape_and_metrics_union() {
        let s = space();
        let mut h = History::new();
        let mut o1 = Observation::ok(s.default_config(), 5.0);
        o1.metrics.insert("hits".into(), 0.9);
        h.push(o1);
        let mut o2 = Observation::ok(s.default_config(), 7.0);
        o2.metrics.insert("spills".into(), 3.0);
        h.push(o2);
        let csv = history_to_csv(&h, &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "run,mem,codec,runtime_secs,cost,failed,hits,spills"
        );
        assert!(lines[1].starts_with("0,10,plain,5,5,false,0.9,"));
        assert!(lines[2].ends_with(",3"));
    }

    #[test]
    fn csv_escapes_commas() {
        let s = space();
        let mut cfg = s.default_config();
        cfg.set("codec", crate::param::ParamValue::Str("a,b".into()));
        let mut h = History::new();
        h.push(Observation::ok(cfg, 1.0));
        let csv = history_to_csv(&h, &s);
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    fn csv_escapes_header_and_metric_cells() {
        let s = space();
        let mut h = History::new();
        let mut o = Observation::ok(s.default_config(), 1.0);
        o.metrics.insert("lock waits, total".into(), 2.0);
        o.metrics.insert("hit \"ratio\"".into(), 0.5);
        h.push(o);
        let csv = history_to_csv(&h, &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(
            lines[0].contains("\"lock waits, total\""),
            "comma-bearing metric name must be quoted: {}",
            lines[0]
        );
        assert!(
            lines[0].contains("\"hit \"\"ratio\"\"\""),
            "quote-bearing metric name must be doubled: {}",
            lines[0]
        );
        // Every row must have the same number of (unquoted) columns as the
        // header; count separators outside quoted cells.
        let cols = |line: &str| {
            let mut n = 1;
            let mut quoted = false;
            for c in line.chars() {
                match c {
                    '"' => quoted = !quoted,
                    ',' if !quoted => n += 1,
                    _ => {}
                }
            }
            n
        };
        assert_eq!(cols(lines[0]), cols(lines[1]), "csv={csv}");
    }

    #[test]
    fn properties_block_is_sorted_lines() {
        let s = space();
        let text = config_to_properties(&s.default_config());
        assert_eq!(text, "codec = plain\nmem = 10\n");
    }
}
