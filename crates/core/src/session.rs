//! Tuning sessions: the driver loop that connects a [`Tuner`] to an
//! [`Objective`] under a [`Budget`], records history, and produces the
//! final outcome used by examples and the bench harness.

use crate::history::History;
use crate::objective::{Budget, Objective, Observation};
use crate::tuner::{Recommendation, Tuner, TuningContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Result of a completed tuning session.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Final recommendation from the tuner.
    pub recommendation: Recommendation,
    /// Best observation actually measured.
    pub best: Option<Observation>,
    /// Full observation history.
    pub history: History,
    /// Number of objective evaluations consumed.
    pub evaluations: usize,
    /// Wall-clock seconds spent inside the session (tuner + objective).
    pub wall_secs: f64,
    /// Wall-clock seconds spent inside tuner proposals only — the tuner's
    /// own overhead, one of the Table 1 comparison axes.
    pub tuner_overhead_secs: f64,
}

impl TuningOutcome {
    /// Speedup of the best found configuration over a baseline runtime
    /// (`baseline / best`); returns 1.0 if nothing was observed or if even
    /// the best observation failed — a failed run's runtime is a timeout
    /// penalty, not a measurement, so no speedup claim can rest on it.
    pub fn speedup_over(&self, baseline_runtime: f64) -> f64 {
        match &self.best {
            Some(b) if !b.failed && b.runtime_secs > 0.0 => baseline_runtime / b.runtime_secs,
            _ => 1.0,
        }
    }
}

/// Drives one tuner against one objective.
pub struct TuningSession<'a> {
    objective: &'a mut dyn Objective,
    tuner: &'a mut dyn Tuner,
    budget: Budget,
    seed: u64,
    /// Skip proposals whose exact configuration was already measured
    /// (deduplication); the duplicate still counts against the budget to
    /// keep family comparisons honest.
    pub reuse_duplicates: bool,
}

impl<'a> TuningSession<'a> {
    /// Creates a session with the given RNG seed (sessions are fully
    /// deterministic given seed + objective).
    pub fn new(
        objective: &'a mut dyn Objective,
        tuner: &'a mut dyn Tuner,
        budget: Budget,
        seed: u64,
    ) -> Self {
        TuningSession {
            objective,
            tuner,
            budget,
            seed,
            reuse_duplicates: true,
        }
    }

    /// Runs the propose → evaluate → observe loop to budget exhaustion.
    pub fn run(self) -> TuningOutcome {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ctx = TuningContext {
            space: self.objective.space().clone(),
            profile: self.objective.profile(),
        };
        let mut history = History::new();
        let mut tuner_secs = 0.0;
        let mut evaluations = 0usize;

        while evaluations < self.budget.max_evaluations {
            let t0 = Instant::now();
            let config = self.tuner.propose(&ctx, &history, &mut rng);
            tuner_secs += t0.elapsed().as_secs_f64();

            let obs = if self.reuse_duplicates && history.contains_config(&config) {
                // Replay the stored observation instead of re-running.
                history
                    .all()
                    .iter()
                    .find(|o| o.config == config)
                    // lint:allow(unwrap) contains_config() guarantees a match exists
                    .expect("contains_config checked")
                    .clone()
            } else {
                // Position time-varying objectives at the observation index
                // before evaluating (no-op for stateless objectives).
                self.objective.seek(history.len() as u64);
                self.objective.evaluate(&config, &mut rng)
            };
            evaluations += 1;

            let t1 = Instant::now();
            self.tuner.observe(&obs);
            tuner_secs += t1.elapsed().as_secs_f64();
            history.push(obs);
        }

        let t2 = Instant::now();
        let recommendation = self.tuner.recommend(&ctx, &history);
        tuner_secs += t2.elapsed().as_secs_f64();

        TuningOutcome {
            recommendation,
            best: history.best().cloned(),
            history,
            evaluations,
            wall_secs: start.elapsed().as_secs_f64(),
            tuner_overhead_secs: tuner_secs,
        }
    }
}

/// Convenience: run `tuner` against `objective` for `evals` evaluations.
pub fn tune(
    objective: &mut dyn Objective,
    tuner: &mut dyn Tuner,
    evals: usize,
    seed: u64,
) -> TuningOutcome {
    TuningSession::new(objective, tuner, Budget::evaluations(evals), seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FunctionObjective;
    use crate::param::ParamSpec;
    use crate::space::{ConfigSpace, Configuration};
    use crate::tuner::{TunerFamily, TuningContext};

    /// Pure random-search tuner used to exercise the session plumbing.
    struct RandomTuner;

    impl Tuner for RandomTuner {
        fn name(&self) -> &str {
            "random"
        }
        fn family(&self) -> TunerFamily {
            TunerFamily::ExperimentDriven
        }
        fn propose(
            &mut self,
            ctx: &TuningContext,
            _history: &History,
            rng: &mut StdRng,
        ) -> Configuration {
            ctx.space.random_config(rng)
        }
    }

    fn sphere_objective() -> FunctionObjective<impl FnMut(&[f64]) -> f64> {
        let space = ConfigSpace::new(vec![
            ParamSpec::float("a", 0.0, 1.0, 0.9, ""),
            ParamSpec::float("b", 0.0, 1.0, 0.9, ""),
        ]);
        FunctionObjective::new(space, "sphere", |x| {
            x.iter().map(|v| (v - 0.2) * (v - 0.2)).sum::<f64>() + 1.0
        })
    }

    #[test]
    fn session_respects_budget_and_finds_improvement() {
        let mut obj = sphere_objective();
        let mut tuner = RandomTuner;
        let outcome = tune(&mut obj, &mut tuner, 40, 7);
        assert_eq!(outcome.evaluations, 40);
        assert_eq!(outcome.history.len(), 40);
        let best = outcome.best.as_ref().unwrap();
        // Default config scores (0.7)^2*2 + 1 = 1.98; random search should
        // land well below that in 40 tries.
        assert!(best.runtime_secs < 1.5, "best={}", best.runtime_secs);
        assert_eq!(
            outcome.recommendation.expected_runtime,
            Some(best.runtime_secs)
        );
    }

    #[test]
    fn session_deterministic_under_seed() {
        let run = |seed| {
            let mut obj = sphere_objective();
            let mut tuner = RandomTuner;
            tune(&mut obj, &mut tuner, 15, seed)
                .best
                .unwrap()
                .runtime_secs
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn duplicate_proposals_reuse_observations() {
        struct ConstantTuner;
        impl Tuner for ConstantTuner {
            fn name(&self) -> &str {
                "const"
            }
            fn family(&self) -> TunerFamily {
                TunerFamily::RuleBased
            }
            fn propose(
                &mut self,
                ctx: &TuningContext,
                _h: &History,
                _rng: &mut StdRng,
            ) -> Configuration {
                ctx.space.default_config()
            }
        }
        let space = ConfigSpace::new(vec![ParamSpec::float("a", 0.0, 1.0, 0.5, "")]);
        let mut calls = 0usize;
        let mut obj = FunctionObjective::new(space, "counter", move |_x| {
            calls += 1;
            calls as f64 // would differ per call if re-evaluated
        });
        let mut tuner = ConstantTuner;
        let outcome = tune(&mut obj, &mut tuner, 5, 1);
        // All 5 observations identical because the first was replayed.
        let rts = outcome.history.runtimes();
        assert!(rts.iter().all(|&r| r == rts[0]), "{rts:?}");
    }

    #[test]
    fn speedup_helper() {
        let mut obj = sphere_objective();
        let mut tuner = RandomTuner;
        let outcome = tune(&mut obj, &mut tuner, 20, 3);
        let s = outcome.speedup_over(2.0);
        assert!(s > 1.0);
    }

    #[test]
    fn speedup_ignores_failed_best() {
        let mut obj = sphere_objective();
        let mut tuner = RandomTuner;
        let mut outcome = tune(&mut obj, &mut tuner, 5, 4);
        // An all-failed session must not claim a speedup from the penalty
        // runtime of its least-bad failure.
        let mut failed = outcome.best.clone().unwrap();
        failed.failed = true;
        failed.runtime_secs = 0.001; // absurdly good-looking penalty value
        outcome.best = Some(failed);
        assert_eq!(outcome.speedup_over(100.0), 1.0);
        // And an absent best stays at 1.0 too.
        outcome.best = None;
        assert_eq!(outcome.speedup_over(100.0), 1.0);
    }
}
