//! Configuration spaces: an ordered set of [`ParamSpec`]s together with
//! encoding into (and decoding out of) the unit hypercube `[0,1]^d` that
//! the search algorithms operate in.

use crate::error::CoreError;
use crate::param::{ParamSpec, ParamValue};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A complete assignment of values to every knob of a [`ConfigSpace`].
///
/// Stored as a name → value map so configurations are self-describing,
/// serializable, and independent of parameter ordering.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Configuration {
    values: BTreeMap<String, ParamValue>,
}

impl Configuration {
    /// Empty configuration (used as a builder).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a knob value (builder style).
    pub fn with(mut self, name: &str, value: ParamValue) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Sets a knob value in place.
    pub fn set(&mut self, name: &str, value: ParamValue) {
        self.values.insert(name.to_string(), value);
    }

    /// Gets a knob value.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Gets a numeric knob as f64 (panics with a clear message if absent —
    /// simulators use this for knobs they define themselves).
    pub fn f64(&self, name: &str) -> f64 {
        self.values
            .get(name)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("knob {name} missing or non-numeric"))
    }

    /// Gets an integer knob (panics if absent/mistyped; see [`Self::f64`]).
    pub fn i64(&self, name: &str) -> i64 {
        self.values
            .get(name)
            .and_then(|v| v.as_i64())
            .unwrap_or_else(|| panic!("knob {name} missing or not an int"))
    }

    /// Gets a boolean knob (panics if absent/mistyped).
    pub fn bool(&self, name: &str) -> bool {
        self.values
            .get(name)
            .and_then(|v| v.as_bool())
            .unwrap_or_else(|| panic!("knob {name} missing or not a bool"))
    }

    /// Gets a categorical knob (panics if absent/mistyped).
    pub fn str(&self, name: &str) -> &str {
        self.values
            .get(name)
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("knob {name} missing or not categorical"))
    }

    /// Iterates over (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ParamValue)> {
        self.values.iter()
    }

    /// Stable 64-bit FNV-1a hash of the full assignment, independent of
    /// process and platform (floats hash by bit pattern, names in their
    /// sorted map order). Used for cheap duplicate detection and as the
    /// configuration part of evaluation-memo keys.
    pub fn stable_hash(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        }
        let mut h = 0xcbf2_9ce4_8422_2325;
        for (k, v) in &self.values {
            h = eat(h, k.as_bytes());
            h = match v {
                ParamValue::Int(i) => eat(eat(h, &[1]), &i.to_le_bytes()),
                ParamValue::Float(f) => eat(eat(h, &[2]), &f.to_bits().to_le_bytes()),
                ParamValue::Bool(b) => eat(h, &[3, u8::from(*b)]),
                ParamValue::Str(s) => eat(eat(h, &[4]), s.as_bytes()),
            };
            // Separate entries so (name, value) boundaries can't alias.
            h = eat(h, &[0xff]);
        }
        h
    }

    /// Number of knobs set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no knobs are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (k, v) in &self.values {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// An ordered collection of knobs forming the search space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSpace {
    params: Vec<ParamSpec>,
}

impl ConfigSpace {
    /// Builds a space from specs.
    ///
    /// # Panics
    /// Panics on duplicate knob names or invalid specs.
    pub fn new(params: Vec<ParamSpec>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        for p in &params {
            p.validate();
            assert!(seen.insert(p.name.clone()), "duplicate knob {}", p.name);
        }
        ConfigSpace { params }
    }

    /// Number of knobs (the dimensionality of the unit-cube encoding).
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Knob specs in order.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Looks up a spec by name.
    pub fn spec(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Position of a knob in the encoding order.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Knob names in encoding order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// The vendor-default configuration.
    pub fn default_config(&self) -> Configuration {
        let mut c = Configuration::new();
        for p in &self.params {
            c.set(&p.name, p.default.clone());
        }
        c
    }

    /// Validates that `config` assigns an in-domain value to every knob.
    pub fn validate_config(&self, config: &Configuration) -> Result<(), CoreError> {
        for p in &self.params {
            match config.get(&p.name) {
                None => return Err(CoreError::MissingParam(p.name.clone())),
                Some(v) if !p.domain.contains(v) => {
                    return Err(CoreError::OutOfDomain {
                        param: p.name.clone(),
                        value: v.to_string(),
                    })
                }
                Some(_) => {}
            }
        }
        for (name, _) in config.iter() {
            if self.spec(name).is_none() {
                return Err(CoreError::UnknownParam(name.clone()));
            }
        }
        Ok(())
    }

    /// Encodes a configuration into `[0,1]^dim`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid for this space (call
    /// [`Self::validate_config`] at trust boundaries).
    pub fn encode(&self, config: &Configuration) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| {
                let v = config
                    .get(&p.name)
                    .unwrap_or_else(|| panic!("encode: knob {} missing", p.name));
                p.domain.encode(v)
            })
            .collect()
    }

    /// Decodes a unit-cube point into a configuration (coordinates are
    /// clamped; integers and categoricals snap to the nearest level).
    ///
    /// # Panics
    /// Panics if `point.len() != self.dim()`.
    pub fn decode(&self, point: &[f64]) -> Configuration {
        assert_eq!(point.len(), self.dim(), "decode: wrong dimension");
        let mut c = Configuration::new();
        for (p, &u) in self.params.iter().zip(point) {
            c.set(&p.name, p.domain.decode(u));
        }
        c
    }

    /// Uniform random configuration.
    pub fn random_config(&self, rng: &mut StdRng) -> Configuration {
        let point: Vec<f64> = (0..self.dim())
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        self.decode(&point)
    }

    /// A random neighbour of `config`: each coordinate is perturbed by
    /// uniform noise in `±step` with probability `flip_prob`, then decoded
    /// back (so at least one coordinate always moves).
    pub fn neighbor(
        &self,
        config: &Configuration,
        step: f64,
        flip_prob: f64,
        rng: &mut StdRng,
    ) -> Configuration {
        let mut point = self.encode(config);
        let forced = rng.random_range(0..point.len());
        for (i, u) in point.iter_mut().enumerate() {
            if i == forced || rng.random_range(0.0..1.0) < flip_prob {
                *u = (*u + rng.random_range(-step..step)).clamp(0.0, 1.0);
            }
        }
        self.decode(&point)
    }

    /// Restricted copy of this space containing only the named knobs (in
    /// the given order). Used by tuners that first *rank* knobs and then
    /// search only the top-k (SARD → iTuned pipelines).
    ///
    /// # Panics
    /// Panics if a name is unknown.
    pub fn subspace(&self, names: &[&str]) -> ConfigSpace {
        let params = names
            .iter()
            .map(|n| {
                self.spec(n)
                    .unwrap_or_else(|| panic!("subspace: unknown knob {n}"))
                    .clone()
            })
            .collect();
        ConfigSpace::new(params)
    }

    /// Completes a partial configuration with defaults for missing knobs.
    pub fn complete_with_defaults(&self, partial: &Configuration) -> Configuration {
        let mut c = self.default_config();
        for (k, v) in partial.iter() {
            if self.spec(k).is_some() {
                c.set(k, v.clone());
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpec;
    use rand::SeedableRng;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            ParamSpec::int_log("mem_mb", 64, 65536, 1024, "memory"),
            ParamSpec::float("fraction", 0.0, 1.0, 0.6, "fraction"),
            ParamSpec::boolean("compress", false, "compression"),
            ParamSpec::categorical("codec", &["lz4", "snappy", "zstd"], "lz4", "codec"),
        ])
    }

    #[test]
    fn default_config_is_valid() {
        let s = space();
        let d = s.default_config();
        assert!(s.validate_config(&d).is_ok());
        assert_eq!(d.i64("mem_mb"), 1024);
        assert_eq!(d.str("codec"), "lz4");
    }

    #[test]
    fn encode_decode_roundtrip_default() {
        let s = space();
        let d = s.default_config();
        let enc = s.encode(&d);
        assert_eq!(enc.len(), 4);
        let back = s.decode(&enc);
        assert_eq!(back, d);
    }

    #[test]
    fn random_configs_valid_and_diverse() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let c = s.random_config(&mut rng);
            assert!(s.validate_config(&c).is_ok());
            distinct.insert(format!("{c}"));
        }
        assert!(
            distinct.len() > 25,
            "only {} distinct configs",
            distinct.len()
        );
    }

    #[test]
    fn validate_rejects_missing_and_unknown() {
        let s = space();
        let mut c = s.default_config();
        c.set("bogus", ParamValue::Int(1));
        assert!(matches!(
            s.validate_config(&c),
            Err(CoreError::UnknownParam(_))
        ));
        let c2 = Configuration::new().with("mem_mb", ParamValue::Int(128));
        assert!(matches!(
            s.validate_config(&c2),
            Err(CoreError::MissingParam(_))
        ));
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let s = space();
        let mut c = s.default_config();
        c.set("fraction", ParamValue::Float(1.5));
        assert!(matches!(
            s.validate_config(&c),
            Err(CoreError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn neighbor_changes_at_least_one_knob_encoding() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let d = s.default_config();
        let mut moved = 0;
        for _ in 0..20 {
            let n = s.neighbor(&d, 0.3, 0.5, &mut rng);
            assert!(s.validate_config(&n).is_ok());
            if n != d {
                moved += 1;
            }
        }
        assert!(moved >= 15, "neighbor rarely moved: {moved}/20");
    }

    #[test]
    fn subspace_preserves_specs() {
        let s = space();
        let sub = s.subspace(&["fraction", "codec"]);
        assert_eq!(sub.dim(), 2);
        assert_eq!(sub.names(), vec!["fraction", "codec"]);
    }

    #[test]
    fn complete_with_defaults_fills_gaps() {
        let s = space();
        let partial = Configuration::new().with("compress", ParamValue::Bool(true));
        let full = s.complete_with_defaults(&partial);
        assert!(s.validate_config(&full).is_ok());
        assert!(full.bool("compress"));
        assert_eq!(full.i64("mem_mb"), 1024);
    }

    #[test]
    #[should_panic(expected = "duplicate knob")]
    fn duplicate_names_rejected() {
        ConfigSpace::new(vec![
            ParamSpec::int("x", 0, 1, 0, ""),
            ParamSpec::int("x", 0, 2, 1, ""),
        ]);
    }

    #[test]
    fn index_and_names_align_with_encoding() {
        let s = space();
        assert_eq!(s.index_of("fraction"), Some(1));
        let d = s.default_config();
        let enc = s.encode(&d);
        // fraction default 0.6 encodes to 0.6 at index 1.
        assert!((enc[1] - 0.6).abs() < 1e-12);
    }
}
