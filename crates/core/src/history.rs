//! Observation history: everything a tuner has seen so far, with the
//! encodings and summaries the model-based tuners need.

use crate::objective::Observation;
use crate::space::{ConfigSpace, Configuration};
use autotune_math::Matrix;
use serde::{Deserialize, Serialize};

/// Append-only log of observations made during a tuning session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct History {
    observations: Vec<Observation>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// History rebuilt from a recorded observation log (oldest first) —
    /// the write-ahead-log replay path of persistent session stores.
    pub fn from_observations(observations: Vec<Observation>) -> Self {
        History { observations }
    }

    /// Consumes the history, yielding the raw observation log.
    pub fn into_observations(self) -> Vec<Observation> {
        self.observations
    }

    /// Appends an observation.
    pub fn push(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    /// All observations, oldest first.
    pub fn all(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The best (lowest-runtime, non-failed) observation, if any; falls
    /// back to the best failed one when everything failed.
    pub fn best(&self) -> Option<&Observation> {
        let ok_best = self
            .observations
            .iter()
            .filter(|o| !o.failed)
            .min_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
        ok_best.or_else(|| {
            self.observations
                .iter()
                .min_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs))
        })
    }

    /// Best runtime value (∞ when empty).
    pub fn best_runtime(&self) -> f64 {
        self.best().map(|o| o.runtime_secs).unwrap_or(f64::INFINITY)
    }

    /// Runtime of every observation, in order.
    pub fn runtimes(&self) -> Vec<f64> {
        self.observations.iter().map(|o| o.runtime_secs).collect()
    }

    /// Best-so-far runtime after each observation (a convergence curve).
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.observations
            .iter()
            .map(|o| {
                if !o.failed {
                    best = best.min(o.runtime_secs);
                }
                best
            })
            .collect()
    }

    /// Encodes all configurations into a design matrix (`n x dim`).
    pub fn design_matrix(&self, space: &ConfigSpace) -> Matrix {
        let rows: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| space.encode(&o.config))
            .collect();
        if rows.is_empty() {
            Matrix::zeros(0, space.dim())
        } else {
            Matrix::from_rows(&rows)
        }
    }

    /// Encoded points paired with runtimes — the GP training set.
    pub fn training_set(&self, space: &ConfigSpace) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs = self
            .observations
            .iter()
            .map(|o| space.encode(&o.config))
            .collect();
        (xs, self.runtimes())
    }

    /// Whether an (exactly equal) configuration was already evaluated.
    pub fn contains_config(&self, config: &Configuration) -> bool {
        self.observations.iter().any(|o| &o.config == config)
    }

    /// Union of metric names seen in any observation, sorted.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .observations
            .iter()
            .flat_map(|o| o.metrics.keys().cloned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Matrix of metric values (`n x metrics`), with 0.0 for metrics a run
    /// did not report. Column order matches [`Self::metric_names`].
    pub fn metric_matrix(&self) -> (Vec<String>, Matrix) {
        let names = self.metric_names();
        let rows: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| {
                names
                    .iter()
                    .map(|n| o.metrics.get(n).copied().unwrap_or(0.0))
                    .collect()
            })
            .collect();
        let m = if rows.is_empty() {
            Matrix::zeros(0, names.len())
        } else {
            Matrix::from_rows(&rows)
        };
        (names, m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Observation;
    use crate::param::ParamSpec;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")])
    }

    fn obs(space: &ConfigSpace, x: f64, rt: f64) -> Observation {
        let cfg = space.decode(&[x]);
        Observation::ok(cfg, rt)
    }

    #[test]
    fn best_tracks_minimum() {
        let s = space();
        let mut h = History::new();
        h.push(obs(&s, 0.1, 10.0));
        h.push(obs(&s, 0.2, 5.0));
        h.push(obs(&s, 0.3, 7.0));
        assert_eq!(h.best().unwrap().runtime_secs, 5.0);
        assert_eq!(h.best_so_far(), vec![10.0, 5.0, 5.0]);
    }

    #[test]
    fn failed_runs_excluded_from_best_unless_all_failed() {
        let s = space();
        let mut h = History::new();
        let mut bad = obs(&s, 0.1, 1.0);
        bad.failed = true;
        h.push(bad);
        h.push(obs(&s, 0.2, 9.0));
        assert_eq!(h.best().unwrap().runtime_secs, 9.0);

        let mut h2 = History::new();
        let mut bad2 = obs(&s, 0.5, 3.0);
        bad2.failed = true;
        h2.push(bad2);
        assert_eq!(h2.best().unwrap().runtime_secs, 3.0);
    }

    #[test]
    fn training_set_shapes() {
        let s = space();
        let mut h = History::new();
        h.push(obs(&s, 0.25, 4.0));
        h.push(obs(&s, 0.75, 2.0));
        let (xs, ys) = h.training_set(&s);
        assert_eq!(xs.len(), 2);
        assert_eq!(ys, vec![4.0, 2.0]);
        let m = h.design_matrix(&s);
        assert_eq!(m.shape(), (2, 1));
    }

    #[test]
    fn metric_matrix_aligns_columns() {
        let s = space();
        let mut h = History::new();
        let mut o1 = obs(&s, 0.1, 1.0);
        o1.metrics.insert("hit_ratio".into(), 0.9);
        o1.metrics.insert("spills".into(), 2.0);
        let mut o2 = obs(&s, 0.2, 2.0);
        o2.metrics.insert("hit_ratio".into(), 0.5);
        h.push(o1);
        h.push(o2);
        let (names, m) = h.metric_matrix();
        assert_eq!(names, vec!["hit_ratio".to_string(), "spills".to_string()]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m[(1, 1)], 0.0, "missing metric defaults to 0");
    }

    #[test]
    fn empty_history() {
        let h = History::new();
        assert!(h.best().is_none());
        assert_eq!(h.best_runtime(), f64::INFINITY);
        assert!(h.best_so_far().is_empty());
    }

    #[test]
    fn contains_config_detects_duplicates() {
        let s = space();
        let mut h = History::new();
        h.push(obs(&s, 0.5, 1.0));
        assert!(h.contains_config(&s.decode(&[0.5])));
        assert!(!h.contains_config(&s.decode(&[0.9])));
    }
}
