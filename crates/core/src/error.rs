//! Error types for the tuning framework.

use std::fmt;

/// Errors surfaced by the core framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A configuration refers to a knob the space does not define.
    UnknownParam(String),
    /// A configuration omits a knob the space requires.
    MissingParam(String),
    /// A knob value falls outside its domain.
    OutOfDomain {
        /// Knob name.
        param: String,
        /// Offending value (rendered).
        value: String,
    },
    /// The evaluation budget was exhausted before any observation was made.
    EmptyBudget,
    /// A tuner needed training history it did not have.
    InsufficientHistory {
        /// Observations required.
        needed: usize,
        /// Observations available.
        available: usize,
    },
    /// A numerical subroutine failed.
    Numerical(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownParam(p) => write!(f, "unknown parameter: {p}"),
            CoreError::MissingParam(p) => write!(f, "missing parameter: {p}"),
            CoreError::OutOfDomain { param, value } => {
                write!(f, "value {value} out of domain for parameter {param}")
            }
            CoreError::EmptyBudget => write!(f, "evaluation budget is empty"),
            CoreError::InsufficientHistory { needed, available } => write!(
                f,
                "insufficient history: need {needed} observations, have {available}"
            ),
            CoreError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<autotune_math::LinAlgError> for CoreError {
    fn from(e: autotune_math::LinAlgError) -> Self {
        CoreError::Numerical(e.to_string())
    }
}

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CoreError::UnknownParam("x".into()).to_string(),
            "unknown parameter: x"
        );
        assert!(CoreError::InsufficientHistory {
            needed: 5,
            available: 2
        }
        .to_string()
        .contains("need 5"));
    }

    #[test]
    fn linalg_conversion() {
        let e: CoreError = autotune_math::LinAlgError::NotPositiveDefinite.into();
        assert!(matches!(e, CoreError::Numerical(_)));
    }
}
