//! # autotune-core
//!
//! The tuning framework at the centre of the `autotune` workspace: typed
//! knob specifications and configuration spaces, the [`Objective`]
//! abstraction over tunable systems, the [`Tuner`] trait with the paper's
//! six-family taxonomy, observation histories, knob rankings, and the
//! session driver that runs a tuner against an objective under a budget.
//!
//! This crate is deliberately system-agnostic: the simulated DBMS, Hadoop,
//! and Spark targets live in `autotune-sim`, and the concrete tuner
//! implementations in `autotune-tuners`. A downstream user tuning a *real*
//! system only needs to implement [`Objective`].
//!
//! ```
//! use autotune_core::prelude::*;
//!
//! // A two-knob space and its vendor-default configuration.
//! let space = ConfigSpace::new(vec![
//!     ParamSpec::int_log("buffer_mb", 64, 8192, 128, "buffer pool size"),
//!     ParamSpec::float("fraction", 0.0, 1.0, 0.25, "memory fraction"),
//! ]);
//! let default = space.default_config();
//! assert!(space.validate_config(&default).is_ok());
//! let encoded = space.encode(&default);
//! assert_eq!(encoded.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod constraints;
pub mod error;
pub mod export;
pub mod history;
pub mod id;
pub mod objective;
pub mod param;
pub mod pareto;
pub mod ranking;
pub mod session;
pub mod signature;
pub mod space;
pub mod tuner;

pub use constraints::{Dependency, KnobConstraint, KnobConstraints, Prior, SystemConstraints};
pub use error::{CoreError, CoreResult};
pub use export::{config_to_properties, history_to_csv};
pub use history::History;
pub use id::SessionId;
pub use objective::{
    Budget, FunctionObjective, Metrics, Objective, Observation, SystemKind, SystemProfile,
    WorkloadClass,
};
pub use param::{ParamDomain, ParamSpec, ParamValue};
pub use pareto::{cheapest_within_deadline, hypervolume, pareto_front, ParetoPoint};
pub use ranking::KnobRanking;
pub use session::{tune, TuningOutcome, TuningSession};
pub use signature::SignatureSummarizer;
pub use space::{ConfigSpace, Configuration};
pub use tuner::{Recommendation, SurrogateStats, Tuner, TunerFamily, TuningContext};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::export::{config_to_properties, history_to_csv};
    pub use crate::history::History;
    pub use crate::id::SessionId;
    pub use crate::objective::{
        Budget, FunctionObjective, Metrics, Objective, Observation, SystemKind, SystemProfile,
        WorkloadClass,
    };
    pub use crate::param::{ParamDomain, ParamSpec, ParamValue};
    pub use crate::pareto::{cheapest_within_deadline, pareto_front, ParetoPoint};
    pub use crate::ranking::KnobRanking;
    pub use crate::session::{tune, TuningOutcome, TuningSession};
    pub use crate::space::{ConfigSpace, Configuration};
    pub use crate::tuner::{Recommendation, Tuner, TunerFamily, TuningContext};
}
