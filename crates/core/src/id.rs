//! Session identifiers for long-lived tuning services.
//!
//! A [`SessionId`] names one tuning session in a persistent session
//! repository (the `autotune-serve` daemon's on-disk store). Ids are
//! counter-based — `s-000042` — so they are deterministic, sortable, and
//! safe to use as directory names; no entropy source is involved.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Identifier of one tuning session in a session repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

impl SessionId {
    /// Id from its numeric counter value.
    pub fn new(n: u64) -> Self {
        SessionId(n)
    }

    /// The numeric counter value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The id that follows this one.
    pub fn next(self) -> SessionId {
        SessionId(self.0 + 1)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s-{:06}", self.0)
    }
}

/// Error parsing a [`SessionId`] from its string form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSessionIdError;

impl fmt::Display for ParseSessionIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("session id must look like `s-000042`")
    }
}

impl std::error::Error for ParseSessionIdError {}

impl FromStr for SessionId {
    type Err = ParseSessionIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("s-").ok_or(ParseSessionIdError)?;
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseSessionIdError);
        }
        digits
            .parse()
            .map(SessionId)
            .map_err(|_| ParseSessionIdError)
    }
}

// Serialized as the display string (`"s-000042"`) so ids read naturally in
// JSON APIs and WAL records; plain integers are accepted on input for
// hand-written requests.
impl Serialize for SessionId {
    fn to_value(&self) -> Value {
        Value::Text(self.to_string())
    }
}

impl Deserialize for SessionId {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Text(s) => s
                .parse()
                .map_err(|e: ParseSessionIdError| serde::Error::custom(e)),
            Value::Int(i) if *i >= 0 => Ok(SessionId(*i as u64)),
            Value::UInt(u) => Ok(SessionId(*u)),
            other => Err(serde::Error::custom(format!(
                "expected session id string, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let id = SessionId::new(42);
        assert_eq!(id.to_string(), "s-000042");
        assert_eq!("s-000042".parse::<SessionId>().unwrap(), id);
        assert_eq!("s-7".parse::<SessionId>().unwrap(), SessionId::new(7));
        assert!("x-1".parse::<SessionId>().is_err());
        assert!("s-".parse::<SessionId>().is_err());
        assert!("s-12a".parse::<SessionId>().is_err());
    }

    #[test]
    fn ordering_follows_counters() {
        assert!(SessionId::new(2) < SessionId::new(10));
        assert_eq!(SessionId::new(5).next(), SessionId::new(6));
    }

    #[test]
    fn serde_roundtrip_and_integer_input() {
        let id = SessionId::new(9);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"s-000009\"");
        let back: SessionId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
        let from_int: SessionId = serde_json::from_str("9").unwrap();
        assert_eq!(from_int, id);
    }
}
