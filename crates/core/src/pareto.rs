//! Multi-objective (time vs. cost) utilities — the §2.5 "cloud computing"
//! challenge framed as data: in a pay-per-use setting a tuner should not
//! return one configuration but the *Pareto frontier* over runtime and
//! monetary cost, and let policy (deadline, budget) pick the point.

use crate::history::History;
use crate::objective::Observation;
use serde::Serialize;

/// A point considered for the frontier.
#[derive(Debug, Clone, Serialize)]
pub struct ParetoPoint {
    /// Index into the history it came from.
    pub index: usize,
    /// Runtime objective (seconds).
    pub runtime_secs: f64,
    /// Cost objective (e.g. node-seconds or cents).
    pub cost: f64,
}

/// Indices of the Pareto-optimal (non-dominated) observations of a
/// history over (runtime, cost), failures excluded. Lower is better on
/// both axes.
pub fn pareto_front(history: &History) -> Vec<ParetoPoint> {
    let obs: Vec<(usize, &Observation)> = history
        .all()
        .iter()
        .enumerate()
        .filter(|(_, o)| !o.failed)
        .collect();
    let mut front = Vec::new();
    for &(i, a) in &obs {
        let dominated = obs.iter().any(|&(j, b)| {
            j != i
                && b.runtime_secs <= a.runtime_secs
                && b.cost <= a.cost
                && (b.runtime_secs < a.runtime_secs || b.cost < a.cost)
        });
        if !dominated {
            front.push(ParetoPoint {
                index: i,
                runtime_secs: a.runtime_secs,
                cost: a.cost,
            });
        }
    }
    front.sort_by(|x, y| x.runtime_secs.total_cmp(&y.runtime_secs));
    front
}

/// The cheapest frontier point whose runtime meets `deadline_secs`, if any.
pub fn cheapest_within_deadline(history: &History, deadline_secs: f64) -> Option<ParetoPoint> {
    pareto_front(history)
        .into_iter()
        .filter(|p| p.runtime_secs <= deadline_secs)
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
}

/// Hypervolume indicator w.r.t. a reference point (larger = better
/// front). Standard 2-D sweep.
pub fn hypervolume(front: &[ParetoPoint], ref_runtime: f64, ref_cost: f64) -> f64 {
    let mut pts: Vec<&ParetoPoint> = front
        .iter()
        .filter(|p| p.runtime_secs <= ref_runtime && p.cost <= ref_cost)
        .collect();
    pts.sort_by(|a, b| a.runtime_secs.total_cmp(&b.runtime_secs));
    let mut volume = 0.0;
    let mut prev_cost = ref_cost;
    for p in pts {
        let width = ref_runtime - p.runtime_secs;
        let height = (prev_cost - p.cost).max(0.0);
        volume += width * height;
        prev_cost = prev_cost.min(p.cost);
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamSpec;
    use crate::space::ConfigSpace;

    fn history_with(points: &[(f64, f64)]) -> History {
        let space = ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")]);
        let mut h = History::new();
        for (i, &(rt, cost)) in points.iter().enumerate() {
            let mut o = Observation::ok(space.decode(&[i as f64 / points.len() as f64]), rt);
            o.cost = cost;
            h.push(o);
        }
        h
    }

    #[test]
    fn front_excludes_dominated_points() {
        // (10, 1) and (1, 10) are frontier; (5, 5) is frontier; (6, 6) is
        // dominated by (5, 5); (12, 12) dominated by everything.
        let h = history_with(&[
            (10.0, 1.0),
            (1.0, 10.0),
            (5.0, 5.0),
            (6.0, 6.0),
            (12.0, 12.0),
        ]);
        let front = pareto_front(&h);
        let indices: Vec<usize> = front.iter().map(|p| p.index).collect();
        assert_eq!(indices, vec![1, 2, 0], "sorted by runtime");
    }

    #[test]
    fn failures_never_on_front() {
        let space = ConfigSpace::new(vec![ParamSpec::float("x", 0.0, 1.0, 0.5, "")]);
        let mut h = History::new();
        let mut fast_but_failed = Observation::ok(space.decode(&[0.1]), 0.001);
        fast_but_failed.failed = true;
        h.push(fast_but_failed);
        h.push(Observation::ok(space.decode(&[0.2]), 5.0));
        let front = pareto_front(&h);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].index, 1);
    }

    #[test]
    fn deadline_query() {
        let h = history_with(&[(10.0, 1.0), (1.0, 10.0), (5.0, 5.0)]);
        let p = cheapest_within_deadline(&h, 6.0).unwrap();
        assert_eq!(p.index, 2, "cheapest meeting the 6s deadline is (5,5)");
        assert!(cheapest_within_deadline(&h, 0.5).is_none());
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let weak = pareto_front(&history_with(&[(8.0, 8.0)]));
        let strong = pareto_front(&history_with(&[(2.0, 2.0)]));
        let hv_weak = hypervolume(&weak, 10.0, 10.0);
        let hv_strong = hypervolume(&strong, 10.0, 10.0);
        assert!(hv_strong > hv_weak);
        assert!((hv_weak - 4.0).abs() < 1e-12);
        assert!((hv_strong - 64.0).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_of_multi_point_front() {
        let front = pareto_front(&history_with(&[(2.0, 8.0), (8.0, 2.0)]));
        // (10-2)*(10-8) + (10-8)*(8-2) = 16 + 12 = 28
        assert!((hypervolume(&front, 10.0, 10.0) - 28.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_is_whole_front() {
        let h = history_with(&[(3.0, 3.0)]);
        assert_eq!(pareto_front(&h).len(), 1);
    }
}
