//! Knob-importance rankings — the common output format of SARD,
//! OtterTune's Lasso stage, ConfNav, and the ANOVA sensitivity experiments,
//! with agreement metrics for comparing rankers.

use autotune_math::stats::spearman;
use serde::{Deserialize, Serialize};

/// A ranking of knobs by importance (most important first).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnobRanking {
    entries: Vec<(String, f64)>,
}

impl KnobRanking {
    /// Builds a ranking from (knob, importance) pairs; sorts by descending
    /// importance internally.
    pub fn new(mut entries: Vec<(String, f64)>) -> Self {
        entries.sort_by(|a, b| b.1.total_cmp(&a.1));
        KnobRanking { entries }
    }

    /// (knob, importance) pairs, most important first.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Knob names, most important first.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The `k` most important knob names.
    pub fn top_k(&self, k: usize) -> Vec<&str> {
        self.entries
            .iter()
            .take(k)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    /// Importance of a knob (0.0 if absent).
    pub fn importance(&self, name: &str) -> f64 {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }

    /// Rank position of a knob (0 = most important), if present.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|(n, _)| n == name)
    }

    /// Number of knobs whose importance is at least `threshold` times the
    /// top importance — the "significant knobs" count.
    pub fn significant_count(&self, threshold: f64) -> usize {
        let top = self.entries.first().map(|(_, v)| *v).unwrap_or(0.0);
        if top <= 0.0 {
            return 0;
        }
        self.entries
            .iter()
            .filter(|(_, v)| *v >= threshold * top)
            .count()
    }

    /// Spearman rank agreement with another ranking over the knobs both
    /// share. Returns 0.0 if fewer than 2 knobs are shared.
    pub fn agreement(&self, other: &KnobRanking) -> f64 {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (mine, (n, _)) in self.entries.iter().enumerate() {
            if let Some(theirs) = other.position(n) {
                a.push(mine as f64);
                b.push(theirs as f64);
            }
        }
        if a.len() < 2 {
            return 0.0;
        }
        spearman(&a, &b)
    }

    /// Overlap fraction of the top-`k` sets of two rankings (`|∩| / k`).
    pub fn top_k_overlap(&self, other: &KnobRanking, k: usize) -> f64 {
        if k == 0 {
            return 1.0;
        }
        let mine: std::collections::BTreeSet<&str> = self.top_k(k).into_iter().collect();
        let theirs: std::collections::BTreeSet<&str> = other.top_k(k).into_iter().collect();
        mine.intersection(&theirs).count() as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(pairs: &[(&str, f64)]) -> KnobRanking {
        KnobRanking::new(pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect())
    }

    #[test]
    fn sorted_on_construction() {
        let r = ranking(&[("a", 1.0), ("b", 5.0), ("c", 3.0)]);
        assert_eq!(r.names(), vec!["b", "c", "a"]);
        assert_eq!(r.position("b"), Some(0));
        assert_eq!(r.top_k(2), vec!["b", "c"]);
    }

    #[test]
    fn importance_lookup() {
        let r = ranking(&[("a", 1.0), ("b", 2.0)]);
        assert_eq!(r.importance("a"), 1.0);
        assert_eq!(r.importance("zzz"), 0.0);
    }

    #[test]
    fn significant_count_relative_to_top() {
        let r = ranking(&[("a", 10.0), ("b", 5.0), ("c", 0.4), ("d", 0.1)]);
        assert_eq!(r.significant_count(0.3), 2);
        assert_eq!(r.significant_count(0.01), 4);
    }

    #[test]
    fn agreement_perfect_and_reversed() {
        let r1 = ranking(&[("a", 3.0), ("b", 2.0), ("c", 1.0)]);
        let r2 = ranking(&[("a", 30.0), ("b", 20.0), ("c", 10.0)]);
        assert!((r1.agreement(&r2) - 1.0).abs() < 1e-12);
        let r3 = ranking(&[("a", 1.0), ("b", 2.0), ("c", 3.0)]);
        assert!((r1.agreement(&r3) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_over_shared_subset_only() {
        let r1 = ranking(&[("a", 3.0), ("b", 2.0), ("x", 1.5), ("c", 1.0)]);
        let r2 = ranking(&[("a", 9.0), ("b", 8.0), ("c", 7.0), ("y", 1.0)]);
        assert!(r1.agreement(&r2) > 0.9);
    }

    #[test]
    fn top_k_overlap_fraction() {
        let r1 = ranking(&[("a", 3.0), ("b", 2.0), ("c", 1.0)]);
        let r2 = ranking(&[("a", 9.0), ("c", 8.0), ("b", 7.0)]);
        assert!((r1.top_k_overlap(&r2, 2) - 0.5).abs() < 1e-12);
        assert_eq!(r1.top_k_overlap(&r2, 0), 1.0);
    }

    #[test]
    fn zero_importance_means_none_significant() {
        let r = ranking(&[("a", 0.0), ("b", 0.0)]);
        assert_eq!(r.significant_count(0.5), 0);
    }
}
