//! Serde round-trip properties for the types a persistent session store
//! writes to disk: `Configuration`, `Observation`, and `History`.
//!
//! The `autotune-serve` write-ahead log records one observation per JSONL
//! line and replays them on startup, so these round-trips must be exact:
//! value-equal after parse, and byte-identical after re-serialization
//! (finite floats re-print to the same shortest representation).

use autotune_core::{Configuration, History, Metrics, Observation, ParamValue};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministically builds a configuration with a mix of value kinds.
fn config_from_seed(seed: u64, knobs: usize) -> Configuration {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = Configuration::new();
    for i in 0..knobs {
        let name = format!("knob_{i}");
        let v = match i % 4 {
            0 => ParamValue::Int(rng.random_range(-1_000_000..1_000_000)),
            1 => ParamValue::Float(rng.random_range(-1e6..1e6)),
            2 => ParamValue::Bool(rng.random_range(0..2) == 1),
            _ => ParamValue::Str(format!("level-{}", rng.random_range(0..5))),
        };
        cfg.set(&name, v);
    }
    cfg
}

/// Deterministically builds an observation with metrics.
fn obs_from_seed(seed: u64, knobs: usize, metrics: usize) -> Observation {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5);
    let mut m = Metrics::new();
    for j in 0..metrics {
        m.insert(format!("metric {j}, scaled"), rng.random_range(0.0..1e4));
    }
    Observation {
        config: config_from_seed(seed, knobs),
        runtime_secs: rng.random_range(1e-3..1e5),
        cost: rng.random_range(0.0..1e5),
        metrics: m,
        failed: rng.random_range(0..8) == 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn configuration_roundtrips_exactly(seed in 0u64..100_000, knobs in 0usize..12) {
        let cfg = config_from_seed(seed, knobs);
        let json = serde_json::to_string(&cfg).expect("serializes");
        let back: Configuration = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(&back, &cfg);
        // Byte-identical re-serialization: the WAL's dedup and the
        // crash-recovery byte-equality check both rest on this.
        let json2 = serde_json::to_string(&back).expect("serializes");
        prop_assert_eq!(json2, json);
        prop_assert_eq!(back.stable_hash(), cfg.stable_hash());
    }

    #[test]
    fn observation_roundtrips_exactly(
        seed in 0u64..100_000,
        knobs in 0usize..8,
        metrics in 0usize..6,
    ) {
        let obs = obs_from_seed(seed, knobs, metrics);
        // NaN-free invariant: everything the generator produces is finite,
        // and the parsed copy must stay finite (non-finite floats would
        // serialize as `null` and fail the typed parse).
        prop_assert!(obs.runtime_secs.is_finite() && obs.cost.is_finite());
        let json = serde_json::to_string(&obs).expect("serializes");
        let back: Observation = serde_json::from_str(&json).expect("parses");
        prop_assert!(back.runtime_secs.is_finite() && back.cost.is_finite());
        prop_assert!(back.metrics.values().all(|v| v.is_finite()));
        prop_assert_eq!(back.runtime_secs.to_bits(), obs.runtime_secs.to_bits());
        prop_assert_eq!(back.cost.to_bits(), obs.cost.to_bits());
        prop_assert_eq!(&back.config, &obs.config);
        prop_assert_eq!(back.failed, obs.failed);
        prop_assert_eq!(&back.metrics, &obs.metrics);
        prop_assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
    }

    #[test]
    fn history_roundtrips_exactly(seed in 0u64..50_000, n in 0usize..10) {
        let mut h = History::new();
        for i in 0..n {
            h.push(obs_from_seed(seed.wrapping_add(i as u64), 5, 3));
        }
        let json = serde_json::to_string(&h).expect("serializes");
        let back: History = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(back.len(), h.len());
        prop_assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
        // The rebuilt history computes identical summaries.
        prop_assert_eq!(back.best_runtime().to_bits(), h.best_runtime().to_bits());
        prop_assert_eq!(back.metric_names(), h.metric_names());
    }
}

#[test]
fn from_observations_matches_pushed_history() {
    let obs: Vec<Observation> = (0..4).map(|i| obs_from_seed(i, 3, 2)).collect();
    let mut pushed = History::new();
    for o in &obs {
        pushed.push(o.clone());
    }
    let rebuilt = History::from_observations(obs.clone());
    assert_eq!(
        serde_json::to_string(&rebuilt).unwrap(),
        serde_json::to_string(&pushed).unwrap()
    );
    assert_eq!(rebuilt.into_observations().len(), 4);
}

#[test]
fn non_finite_floats_do_not_roundtrip_silently() {
    // A NaN runtime serializes as `null`; parsing it back as a typed
    // Observation must fail rather than smuggle a NaN into a replayed
    // history. The WAL's append path never writes one (observations come
    // from simulators that clamp), but recovery must stay honest.
    let mut obs = obs_from_seed(1, 2, 0);
    obs.runtime_secs = f64::NAN;
    let json = serde_json::to_string(&obs).unwrap();
    assert!(serde_json::from_str::<Observation>(&json).is_err());
}
