//! Property tests for the statement/expression parser: randomly generated
//! nestings of blocks, calls, closures, match arms, and string/comment
//! noise must round-trip through the lexer and `parse_body` without
//! panicking, with every recorded span inside the token stream — and the
//! same must hold on the fail-open paths, exercised by truncating the
//! source mid-token.

use autotune_lint::items::ItemKind;
use autotune_lint::lexer::{lex, Token};
use autotune_lint::parser::{self, Block, Stmt};
use proptest::prelude::*;

const NAMES: &[&str] = &[
    "alpha", "beta", "gamma", "queue", "commit", "sink", "ticket", "state", "x", "y",
];

fn ident() -> BoxedStrategy<String> {
    (0usize..NAMES.len())
        .prop_map(|i| NAMES[i].to_string())
        .boxed()
}

/// One expression, `depth` levels of nesting allowed.
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        ident(),
        Just("42".to_string()),
        Just("1_000_000u64".to_string()),
        // Strings full of braces and quotes: lexed opaquely, so they must
        // never unbalance the statement tree.
        Just("\"noise { } {{ \\\" } fn bogus() {\"".to_string()),
        (ident(), ident()).prop_map(|(f, a)| format!("{f}(&{a})")),
        (ident(), ident(), ident()).prop_map(|(r, m, a)| format!("{r}.{m}({a})")),
        (ident(), ident()).prop_map(|(t, m)| format!("{t}::{m}(7)")),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    prop_oneof![
        leaf,
        (ident(), expr(depth - 1)).prop_map(|(f, e)| format!("{f}({e})")),
        expr(depth - 1).prop_map(|e| format!("({e})")),
        (expr(depth - 1), ident()).prop_map(|(e, m)| format!("{e}.{m}()")),
        // Closure with a block body.
        (ident(), expr(depth - 1)).prop_map(|(a, e)| format!("move |{a}| {{ {e} }}")),
    ]
    .boxed()
}

/// One statement, `depth` levels of control-flow nesting allowed.
fn stmt(depth: u32) -> BoxedStrategy<String> {
    let base = prop_oneof![
        (ident(), expr(1)).prop_map(|(n, e)| format!("let {n} = {e};")),
        (ident(), ident(), expr(1)).prop_map(|(a, b, e)| format!("let ({a}, {b}) = {e};")),
        expr(1).prop_map(|e| format!("{e};")),
        Just("// line comment with braces {{ }} and a \" quote".to_string()),
        Just("/* block } comment { */".to_string()),
        Just("return Ok(0);".to_string()),
    ];
    if depth == 0 {
        return base.boxed();
    }
    prop_oneof![
        base,
        (expr(depth - 1), block(depth - 1), block(depth - 1))
            .prop_map(|(c, t, e)| format!("if {c} {{\n{t}\n}} else {{\n{e}\n}}")),
        (expr(depth - 1), block(depth - 1)).prop_map(|(c, b)| format!("while {c} {{\n{b}\n}}")),
        block(depth - 1).prop_map(|b| format!("loop {{\n{b}\n}}")),
        (expr(depth - 1), block(depth - 1), expr(depth - 1)).prop_map(|(s, a, e)| {
            format!("match {s} {{\n    Some(v) => {{\n{a}\n    }}\n    _ => {e},\n}}")
        }),
        (ident(), block(depth - 1)).prop_map(|(f, b)| format!("{f}(move |q| {{\n{b}\n}});")),
    ]
    .boxed()
}

/// A sequence of statements.
fn block(depth: u32) -> BoxedStrategy<String> {
    collection::vec(stmt(depth), 0..4)
        .prop_map(|stmts| stmts.join("\n"))
        .boxed()
}

/// A whole source file: `n` functions with generated bodies.
fn source(fns: usize) -> BoxedStrategy<String> {
    collection::vec(block(3), fns..fns + 1)
        .prop_map(|bodies| {
            bodies
                .iter()
                .enumerate()
                .map(|(i, b)| format!("pub fn gen_{i}(state: &Shared) -> u64 {{\n{b}\n}}\n"))
                .collect::<String>()
        })
        .boxed()
}

/// Arbitrary brace/quote/paren junk.
fn junk() -> BoxedStrategy<String> {
    const CHARS: &[char] = &[
        '{', '}', '(', ')', ';', 'a', 'z', ' ', '\n', '"', '/', '*', '|', ',',
    ];
    collection::vec(0usize..CHARS.len(), 0..41)
        .prop_map(|ix| ix.into_iter().map(|i| CHARS[i]).collect())
        .boxed()
}

/// Recursively asserts every recorded span/token index/line stays inside
/// the token stream.
fn check_block(block: &Block, tokens: &[Token], max_line: u32) {
    assert!(block.span.0 <= block.span.1, "block span ordered");
    assert!(block.span.1 <= tokens.len(), "block span in bounds");
    let mut prev_start = 0;
    for stmt in &block.stmts {
        check_stmt(stmt, tokens, max_line);
        assert!(
            stmt.span.0 >= prev_start,
            "sibling statements in token order"
        );
        prev_start = stmt.span.0;
    }
}

fn check_stmt(stmt: &Stmt, tokens: &[Token], max_line: u32) {
    assert!(stmt.span.0 <= stmt.span.1, "stmt span ordered");
    assert!(stmt.span.1 <= tokens.len(), "stmt span in bounds");
    assert!(stmt.head_end <= tokens.len(), "head_end in bounds");
    assert!(stmt.line >= 1 && stmt.line <= max_line, "stmt line in file");
    for call in &stmt.calls {
        assert!(call.tok < tokens.len(), "call token in bounds");
        assert!(call.line >= 1 && call.line <= max_line, "call line in file");
        assert!(!call.callee.is_empty(), "callee nonempty");
    }
    for blk in stmt.blocks() {
        check_block(blk, tokens, max_line);
    }
}

/// Lexes + parses `src`, checks every fn body, and returns how many fn
/// items carried a parseable body.
fn parse_and_check(src: &str) -> usize {
    let lexed = lex(src);
    let tree = parser::parse(&lexed.tokens);
    let max_line = src.lines().count().max(1) as u32;
    let mut bodies = 0;
    tree.walk(&mut |item| {
        if item.kind != ItemKind::Fn {
            return;
        }
        if let Some((bs, be)) = item.body_span {
            assert!(bs <= be && be <= lexed.tokens.len(), "body span in bounds");
            let block = parser::parse_body(&lexed.tokens, bs, be);
            check_block(&block, &lexed.tokens, max_line);
            bodies += 1;
        }
    });
    bodies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn generated_sources_parse_without_panic_and_spans_stay_in_bounds(
        src in source(3)
    ) {
        let bodies = parse_and_check(&src);
        // Round-trip: every generated fn survives lexing + item parsing
        // with an addressable body — brace noise inside strings and
        // comments never splits or swallows a function.
        prop_assert_eq!(bodies, 3, "all generated fns parse: \n{}", src);
    }

    #[test]
    fn truncated_sources_stay_fail_open(
        src in source(2),
        cut in 0.0f64..1.0
    ) {
        // Cut mid-source (on a char boundary) to exercise unbalanced
        // braces, dangling `let`s, and half-finished calls: the parser
        // must degrade (fewer/looser statements), never panic or point
        // outside the token stream.
        let at = ((src.len() as f64) * cut) as usize;
        let at = (0..=at).rev().find(|i| src.is_char_boundary(*i)).unwrap_or(0);
        parse_and_check(&src[..at]);
    }

    #[test]
    fn noise_prefixed_bodies_parse(
        body in block(2),
        junk in junk()
    ) {
        // Arbitrary brace/quote junk ahead of a valid fn: the item
        // scanner may or may not recover the fn, but nothing panics and
        // whatever parses stays in bounds.
        let src = format!("{junk}\npub fn tail() {{\n{body}\n}}\n");
        parse_and_check(&src);
    }
}
