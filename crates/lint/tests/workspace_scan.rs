//! Fixture-based rule tests, JSON round-trip, SARIF snapshot, workspace
//! self-scan, and binary exit-code checks for `autotune-lint`.

use std::path::Path;
use std::process::Command;

use autotune_lint::fixtures;
use autotune_lint::{find_workspace_root, scan_source, scan_sources, scan_workspace, Report};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
}

/// Scans a multi-file fixture as one mini-workspace.
fn scan_multi(fx: &fixtures::MultiFixture) -> Report {
    let files: Vec<(String, String)> = fx
        .files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    scan_sources(&files)
}

#[test]
fn fixtures_produce_expected_rules() {
    for fx in fixtures::ALL {
        let mut got: Vec<String> = scan_source(fx.path, fx.src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        got.sort();
        assert_eq!(
            got, fx.expect,
            "fixture `{}` (scanned as {}) produced unexpected findings",
            fx.label, fx.path
        );
    }
}

#[test]
fn multi_fixtures_produce_expected_rules() {
    for fx in fixtures::ALL_MULTI {
        let got: Vec<String> = scan_multi(fx)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(
            got, fx.expect,
            "multi-fixture `{}` produced unexpected findings",
            fx.label
        );
    }
}

#[test]
fn findings_carry_location_and_snippet() {
    let findings = scan_source(fixtures::D4_BAD.path, fixtures::D4_BAD.src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.file, fixtures::D4_BAD.path);
    assert_eq!(f.line, 3);
    assert!(f.snippet.contains("partial_cmp"));
    assert_eq!(f.name, "nan-ord");
}

#[test]
fn new_rules_fire_at_expected_lines() {
    // Single-file rules.
    for (fx, rule, line) in [
        (&fixtures::U1_BAD, "U1", 3),
        (&fixtures::U2_BAD, "U2", 4),
        (&fixtures::U3_BAD, "U3", 10),
        (&fixtures::K2_DEF_BAD, "K2", 3),
    ] {
        let findings = scan_source(fx.path, fx.src);
        assert_eq!(findings.len(), 1, "fixture `{}`", fx.label);
        assert_eq!(findings[0].rule, rule, "fixture `{}`", fx.label);
        assert_eq!(findings[0].line, line, "fixture `{}`", fx.label);
    }
    // Cross-file rules.
    for (fx, rule, line) in [
        (&fixtures::K1_BAD_MULTI, "K1", 4),
        (&fixtures::K2_SET_BAD_MULTI, "K2", 3),
        (&fixtures::K3_BAD_MULTI, "K3", 10),
    ] {
        let report = scan_multi(fx);
        assert_eq!(report.findings.len(), 1, "fixture `{}`", fx.label);
        assert_eq!(report.findings[0].rule, rule, "fixture `{}`", fx.label);
        assert_eq!(report.findings[0].line, line, "fixture `{}`", fx.label);
    }
}

#[test]
fn k3_is_warning_and_does_not_error_the_report() {
    let report = scan_multi(&fixtures::K3_BAD_MULTI);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].severity, "warning");
    assert!(!report.is_clean());
    assert!(!report.has_errors());
}

#[test]
fn json_report_round_trips() {
    let findings = scan_source(fixtures::D5_BAD.path, fixtures::D5_BAD.src);
    let report = Report::new(findings, 1);
    let back: Report = serde_json::from_str(&report.json()).expect("report JSON parses");
    assert_eq!(back, report);
    assert_eq!(back.findings.len(), 2);
}

#[test]
fn sarif_snapshot_for_one_finding() {
    let findings = scan_source(fixtures::D4_BAD.path, fixtures::D4_BAD.src);
    let report = Report::new(findings, 1);
    let sarif = report.sarif();
    // Shape snapshot: the one result block, byte-exact. (The rule catalog
    // above it is covered by the unit tests.)
    let expected_result = r#"  "runs": [
    {
      "tool": {
        "driver": {
          "name": "autotune-lint","#;
    assert!(
        sarif.contains(expected_result),
        "SARIF run/tool framing changed:\n{sarif}"
    );
    let expected = r#"      "results": [
        {
          "ruleId": "D4",
          "level": "error",
          "message": {
            "text": "NaN-unsafe float ordering panics on NaN; use f64::total_cmp or handle the None"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/bench/src/fixture.rs"
                },
                "region": {
                  "startLine": 3,
                  "snippet": {
                    "text": "xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());"
                  }
                }
              }
            }
          ]
        }
      ]"#;
    assert!(
        sarif.contains(expected),
        "SARIF result shape changed:\n{sarif}"
    );
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        report.is_clean(),
        "workspace self-scan must be clean, found:\n{}",
        report.human()
    );
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 100);
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected clean exit, stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Materializes `(rel_path, src)` pairs under a fresh temp dir, runs the
/// binary on it with `args`, and returns (exit code, stdout).
fn run_on_temp_workspace(
    tag: &str,
    files: &[(&str, &str)],
    args: &[&str],
) -> (Option<i32>, String) {
    let dir = std::env::temp_dir().join(format!("autotune-lint-it-{tag}-{}", std::process::id()));
    for (rel, src) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("temp dir");
        std::fs::write(path, src).expect("write fixture");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .args(args)
        .arg(&dir)
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_bad_source() {
    let (code, stdout) = run_on_temp_workspace(
        "d1",
        &[("crates/tuners/src/fixture.rs", fixtures::D1_BAD.src)],
        &["--json"],
    );
    assert_eq!(code, Some(1));
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D1");
    assert_eq!(report.findings[0].file, "crates/tuners/src/fixture.rs");
}

#[test]
fn binary_catches_injected_knob_typo_across_crates() {
    // The typo lives in a tuner crate; the knob table comes from the sim
    // params module — the finding proves the scan is cross-crate.
    let (code, stdout) =
        run_on_temp_workspace("k1", fixtures::K1_BAD_MULTI.files, &["--format", "json"]);
    assert_eq!(code, Some(1));
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "K1");
    assert_eq!(report.findings[0].file, "crates/tuners/src/fixture.rs");
    assert!(report.findings[0].snippet.contains("executor_memory_mbb"));
}

#[test]
fn binary_warnings_do_not_fail_the_run() {
    let (code, stdout) =
        run_on_temp_workspace("k3", fixtures::K3_BAD_MULTI.files, &["--format", "json"]);
    assert_eq!(code, Some(0), "warnings alone must exit 0:\n{stdout}");
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "K3");
    assert_eq!(report.findings[0].severity, "warning");
}

#[test]
fn binary_emits_sarif() {
    let (code, stdout) = run_on_temp_workspace(
        "sarif",
        &[("crates/tuners/src/fixture.rs", fixtures::D1_BAD.src)],
        &["--format", "sarif"],
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"version\": \"2.1.0\""));
    assert!(stdout.contains("\"ruleId\": \"D1\""));
}
