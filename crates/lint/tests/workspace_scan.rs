//! Fixture-based rule tests, JSON round-trip, SARIF snapshot, workspace
//! self-scan, and binary exit-code checks for `autotune-lint`.

use std::path::Path;
use std::process::Command;

use autotune_lint::fixtures;
use autotune_lint::{find_workspace_root, scan_source, scan_sources, scan_workspace, Report};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
}

/// Scans a multi-file fixture as one mini-workspace.
fn scan_multi(fx: &fixtures::MultiFixture) -> Report {
    let files: Vec<(String, String)> = fx
        .files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    scan_sources(&files)
}

#[test]
fn fixtures_produce_expected_rules() {
    for fx in fixtures::ALL {
        let mut got: Vec<String> = scan_source(fx.path, fx.src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        got.sort();
        assert_eq!(
            got, fx.expect,
            "fixture `{}` (scanned as {}) produced unexpected findings",
            fx.label, fx.path
        );
    }
}

#[test]
fn multi_fixtures_produce_expected_rules() {
    for fx in fixtures::ALL_MULTI {
        let got: Vec<String> = scan_multi(fx)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(
            got, fx.expect,
            "multi-fixture `{}` produced unexpected findings",
            fx.label
        );
    }
}

#[test]
fn findings_carry_location_and_snippet() {
    let findings = scan_source(fixtures::D4_BAD.path, fixtures::D4_BAD.src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.file, fixtures::D4_BAD.path);
    assert_eq!(f.line, 3);
    assert!(f.snippet.contains("partial_cmp"));
    assert_eq!(f.name, "nan-ord");
}

#[test]
fn new_rules_fire_at_expected_lines() {
    // Single-file rules.
    for (fx, rule, line) in [
        (&fixtures::U1_BAD, "U1", 3),
        (&fixtures::U2_BAD, "U2", 4),
        (&fixtures::U3_BAD, "U3", 10),
        (&fixtures::K2_DEF_BAD, "K2", 3),
        (&fixtures::C2_BAD, "C2", 4),
        (&fixtures::C3_BAD, "C3", 5),
        (&fixtures::C4_BAD, "C4", 4),
        (&fixtures::C5_BAD, "C5", 3),
    ] {
        let findings = scan_source(fx.path, fx.src);
        assert_eq!(findings.len(), 1, "fixture `{}`", fx.label);
        assert_eq!(findings[0].rule, rule, "fixture `{}`", fx.label);
        assert_eq!(findings[0].line, line, "fixture `{}`", fx.label);
    }
    // C1 reports both witness acquisitions of the ABBA cycle.
    let findings = scan_source(fixtures::C1_BAD.path, fixtures::C1_BAD.src);
    let got: Vec<(String, u32)> = findings.into_iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![("C1".into(), 4), ("C1".into(), 10)]);
    // Cross-file rules.
    for (fx, rule, line) in [
        (&fixtures::K1_BAD_MULTI, "K1", 4),
        (&fixtures::K2_SET_BAD_MULTI, "K2", 3),
        (&fixtures::K3_BAD_MULTI, "K3", 10),
        (&fixtures::K4_BAD_MULTI, "K4", 4),
        (&fixtures::K4_CALL_BAD_MULTI, "K4", 4),
        (&fixtures::K5_BAD_MULTI, "K5", 5),
        (&fixtures::K6_BAD_MULTI, "K6", 5),
    ] {
        let report = scan_multi(fx);
        assert_eq!(report.findings.len(), 1, "fixture `{}`", fx.label);
        assert_eq!(report.findings[0].rule, rule, "fixture `{}`", fx.label);
        assert_eq!(report.findings[0].line, line, "fixture `{}`", fx.label);
    }
    // The dataflow findings land in the consumer file (for the
    // interprocedural case: at the call site whose argument feeds the
    // dead guard), not in the params module that declared the knob.
    for fx in [&fixtures::K4_BAD_MULTI, &fixtures::K4_CALL_BAD_MULTI] {
        let report = scan_multi(fx);
        assert_eq!(
            report.findings[0].file, "crates/sim/src/fixture/engine.rs",
            "fixture `{}`",
            fx.label
        );
    }
    // C1 across files: the cycle's witnesses are the helper call site
    // (whose lock set comes from the other file's summary) and the
    // directly nested acquisition.
    let report = scan_multi(&fixtures::C1_BAD_MULTI);
    let got: Vec<(String, String, u32)> = report
        .findings
        .into_iter()
        .map(|f| (f.rule, f.file, f.line))
        .collect();
    let flow = "crates/serve/src/fixture/flow.rs".to_string();
    assert_eq!(
        got,
        vec![("C1".into(), flow.clone(), 4), ("C1".into(), flow, 9),]
    );
}

#[test]
fn k3_is_warning_and_does_not_error_the_report() {
    let report = scan_multi(&fixtures::K3_BAD_MULTI);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].severity, "warning");
    assert!(!report.is_clean());
    assert!(!report.has_errors());
}

#[test]
fn json_report_round_trips() {
    let findings = scan_source(fixtures::D5_BAD.path, fixtures::D5_BAD.src);
    let report = Report::new(findings, 1);
    let back: Report = serde_json::from_str(&report.json()).expect("report JSON parses");
    assert_eq!(back, report);
    assert_eq!(back.findings.len(), 2);
}

#[test]
fn sarif_snapshot_for_one_finding() {
    let findings = scan_source(fixtures::D4_BAD.path, fixtures::D4_BAD.src);
    let report = Report::new(findings, 1);
    let sarif = report.sarif();
    // Shape snapshot: the one result block, byte-exact. (The rule catalog
    // above it is covered by the unit tests.)
    let expected_result = r#"  "runs": [
    {
      "tool": {
        "driver": {
          "name": "autotune-lint","#;
    assert!(
        sarif.contains(expected_result),
        "SARIF run/tool framing changed:\n{sarif}"
    );
    let expected = r#"      "results": [
        {
          "ruleId": "D4",
          "level": "error",
          "message": {
            "text": "NaN-unsafe float ordering panics on NaN; use f64::total_cmp or handle the None"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/bench/src/fixture.rs"
                },
                "region": {
                  "startLine": 3,
                  "snippet": {
                    "text": "xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());"
                  }
                }
              }
            }
          ]
        }
      ]"#;
    assert!(
        sarif.contains(expected),
        "SARIF result shape changed:\n{sarif}"
    );
}

#[test]
fn sarif_snapshot_for_c_series_finding() {
    let findings = scan_source(fixtures::C4_BAD.path, fixtures::C4_BAD.src);
    let report = Report::new(findings, 1);
    let sarif = report.sarif();
    // The C-series rules appear in the auto-derived rule catalog …
    for (id, name) in [
        ("C1", "lock-order"),
        ("C2", "blocking-while-locked"),
        ("C3", "condvar-wait-not-in-loop"),
        ("C4", "ack-before-durable"),
        ("C5", "unwaited-ticket"),
    ] {
        assert!(
            sarif.contains(&format!("\"id\": \"{id}\"")),
            "missing catalog entry for {id}:\n{sarif}"
        );
        assert!(
            sarif.contains(&format!("\"name\": \"{name}\"")),
            "missing catalog name for {id}:\n{sarif}"
        );
    }
    // … and a C4 result block is byte-exact.
    let expected = r#"      "results": [
        {
          "ruleId": "C4",
          "level": "error",
          "message": {
            "text": "2xx response on a path that never awaited durability; call the durability wait before acking"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/serve/src/fixture.rs"
                },
                "region": {
                  "startLine": 4,
                  "snippet": {
                    "text": "let resp = Response::json(200, &Cancelled);"
                  }
                }
              }
            }
          ]
        }
      ]"#;
    assert!(
        sarif.contains(expected),
        "SARIF C4 result shape changed:\n{sarif}"
    );
}

#[test]
fn sarif_snapshot_for_k_series_dataflow_finding() {
    let report = scan_multi(&fixtures::K4_BAD_MULTI);
    let sarif = report.sarif();
    // The knob-semantics rules appear in the auto-derived rule catalog …
    for (id, name) in [
        ("K4", "knob-narrow"),
        ("K5", "knob-unit"),
        ("K6", "knob-cross"),
    ] {
        assert!(
            sarif.contains(&format!("\"id\": \"{id}\"")),
            "missing catalog entry for {id}:\n{sarif}"
        );
        assert!(
            sarif.contains(&format!("\"name\": \"{name}\"")),
            "missing catalog name for {id}:\n{sarif}"
        );
    }
    // … and the K4 result block is byte-exact.
    let expected = r#"      "results": [
        {
          "ruleId": "K4",
          "level": "error",
          "message": {
            "text": "knob guard is statically dead against the declared domain; fix the bound or the domain"
          },
          "locations": [
            {
              "physicalLocation": {
                "artifactLocation": {
                  "uri": "crates/sim/src/fixture/engine.rs"
                },
                "region": {
                  "startLine": 4,
                  "snippet": {
                    "text": "assert!(m > 100000.0);"
                  }
                }
              }
            }
          ]
        }
      ]"#;
    assert!(
        sarif.contains(expected),
        "SARIF K4 result shape changed:\n{sarif}"
    );
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        report.is_clean(),
        "workspace self-scan must be clean, found:\n{}",
        report.human()
    );
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 100);
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected clean exit, stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Materializes `(rel_path, src)` pairs under a fresh temp dir, runs the
/// binary on it with `args`, and returns (exit code, stdout).
fn run_on_temp_workspace(
    tag: &str,
    files: &[(&str, &str)],
    args: &[&str],
) -> (Option<i32>, String) {
    let dir = std::env::temp_dir().join(format!("autotune-lint-it-{tag}-{}", std::process::id()));
    for (rel, src) in files {
        let path = dir.join(rel);
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("temp dir");
        std::fs::write(path, src).expect("write fixture");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .args(args)
        .arg(&dir)
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn binary_exits_nonzero_on_bad_source() {
    let (code, stdout) = run_on_temp_workspace(
        "d1",
        &[("crates/tuners/src/fixture.rs", fixtures::D1_BAD.src)],
        &["--json"],
    );
    assert_eq!(code, Some(1));
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D1");
    assert_eq!(report.findings[0].file, "crates/tuners/src/fixture.rs");
}

#[test]
fn binary_catches_injected_knob_typo_across_crates() {
    // The typo lives in a tuner crate; the knob table comes from the sim
    // params module — the finding proves the scan is cross-crate.
    let (code, stdout) =
        run_on_temp_workspace("k1", fixtures::K1_BAD_MULTI.files, &["--format", "json"]);
    assert_eq!(code, Some(1));
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "K1");
    assert_eq!(report.findings[0].file, "crates/tuners/src/fixture.rs");
    assert!(report.findings[0].snippet.contains("executor_memory_mbb"));
}

#[test]
fn binary_warnings_do_not_fail_the_run() {
    let (code, stdout) =
        run_on_temp_workspace("k3", fixtures::K3_BAD_MULTI.files, &["--format", "json"]);
    assert_eq!(code, Some(0), "warnings alone must exit 0:\n{stdout}");
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "K3");
    assert_eq!(report.findings[0].severity, "warning");
}

#[test]
fn rules_filter_restricts_report_and_exit_code() {
    let files = &[("crates/serve/src/fixture.rs", fixtures::C4_BAD.src)];
    // Selected rule matches: finding reported, exit 1.
    let (code, stdout) = run_on_temp_workspace("rules-hit", files, &["--rules", "C4", "--json"]);
    assert_eq!(code, Some(1), "{stdout}");
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "C4");
    assert_eq!(report.findings[0].line, 4);
    // Rule names work too.
    let (code, _) = run_on_temp_workspace(
        "rules-name",
        files,
        &["--rules", "ack-before-durable", "--json"],
    );
    assert_eq!(code, Some(1));
    // Filtering to an unrelated rule empties the report and the exit code.
    let (code, stdout) = run_on_temp_workspace("rules-miss", files, &["--rules", "D5", "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert!(report.findings.is_empty());
    // Unknown rules are a usage error.
    let (code, _) = run_on_temp_workspace("rules-bad", files, &["--rules", "C9"]);
    assert_eq!(code, Some(2));
    // The filter applies to SARIF output as well.
    let (code, stdout) = run_on_temp_workspace(
        "rules-sarif",
        files,
        &["--rules", "C4", "--format", "sarif"],
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"ruleId\": \"C4\""));
}

#[test]
fn reintroduced_cancel_ack_bug_is_caught_by_c4() {
    // The exact shape PR 6 shipped and later had to fix: cancel_session
    // builds its 200 before waiting on the Cancelled record's commit
    // ticket, so a crash between the two acknowledges a cancellation the
    // journal never kept.
    let src = r#"
fn cancel_session(state: &DaemonState, id: SessionId) -> ServeResult<Response> {
    let entry = find_session(state, id);
    let mut s = lock(&entry.session);
    s.cancel();
    let summary = SessionSummary { id };
    let response = Response::json(200, &summary);
    let (sink, ticket) = s.durability_barrier();
    drop(s);
    sink.wait_durable(ticket);
    Ok(response)
}
"#;
    let (code, stdout) = run_on_temp_workspace(
        "cancel-ack",
        &[("crates/serve/src/server.rs", src)],
        &["--rules", "C4", "--json"],
    );
    assert_eq!(code, Some(1), "{stdout}");
    let report: Report = serde_json::from_str(&stdout).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, "C4");
    assert_eq!(f.file, "crates/serve/src/server.rs");
    assert_eq!(f.line, 7, "finding anchors at the premature ack");
    assert!(f.snippet.contains("Response::json(200"), "{}", f.snippet);
}

#[test]
fn binary_emits_sarif() {
    let (code, stdout) = run_on_temp_workspace(
        "sarif",
        &[("crates/tuners/src/fixture.rs", fixtures::D1_BAD.src)],
        &["--format", "sarif"],
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"version\": \"2.1.0\""));
    assert!(stdout.contains("\"ruleId\": \"D1\""));
}
