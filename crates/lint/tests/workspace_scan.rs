//! Fixture-based rule tests, JSON round-trip, workspace self-scan, and
//! binary exit-code checks for `autotune-lint`.

use std::path::Path;
use std::process::Command;

use autotune_lint::fixtures;
use autotune_lint::{find_workspace_root, scan_source, scan_workspace, Report};

fn workspace_root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
}

#[test]
fn fixtures_produce_expected_rules() {
    for fx in fixtures::ALL {
        let mut got: Vec<String> = scan_source(fx.path, fx.src)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        got.sort();
        assert_eq!(
            got, fx.expect,
            "fixture `{}` (scanned as {}) produced unexpected findings",
            fx.label, fx.path
        );
    }
}

#[test]
fn findings_carry_location_and_snippet() {
    let findings = scan_source(fixtures::D4_BAD.path, fixtures::D4_BAD.src);
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(f.file, fixtures::D4_BAD.path);
    assert_eq!(f.line, 3);
    assert!(f.snippet.contains("partial_cmp"));
    assert_eq!(f.name, "nan-ord");
}

#[test]
fn json_report_round_trips() {
    let findings = scan_source(fixtures::D5_BAD.path, fixtures::D5_BAD.src);
    let report = Report::new(findings, 1);
    let back: Report = serde_json::from_str(&report.json()).expect("report JSON parses");
    assert_eq!(back, report);
    assert_eq!(back.findings.len(), 2);
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = scan_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        report.is_clean(),
        "workspace self-scan must be clean, found:\n{}",
        report.human()
    );
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 100);
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "expected clean exit, stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn binary_exits_nonzero_on_bad_source() {
    // Materialize one bad fixture into a throwaway workspace layout.
    let dir = std::env::temp_dir().join(format!("autotune-lint-it-{}", std::process::id()));
    let src_dir = dir.join("crates/tuners/src");
    std::fs::create_dir_all(&src_dir).expect("temp dir");
    std::fs::write(src_dir.join("fixture.rs"), fixtures::D1_BAD.src).expect("write fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_autotune-lint"))
        .arg("--json")
        .arg(&dir)
        .output()
        .expect("binary runs");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(out.status.code(), Some(1));
    let report: Report =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("JSON output parses");
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D1");
    assert_eq!(report.findings[0].file, "crates/tuners/src/fixture.rs");
}
