//! Property tests for the K4–K6 interval propagation: for randomly
//! generated arithmetic over a knob read followed by a random guard, any
//! concrete knob value that *survives* the guard at runtime must lie
//! inside the hard narrowed interval the dataflow derives — the
//! constraints compiler shrinks search bounds from these facts, so an
//! unsound interval would exclude live configurations. Unsupported
//! operations (squaring, opaque calls) must fail open to ⊤, which the
//! same property covers: no fact, nothing excluded.

use autotune_lint::callgraph::CrateIndex;
use autotune_lint::dataflow::analyze_file;
use autotune_lint::knobs;
use autotune_lint::rules::prepare;
use proptest::prelude::*;

/// One arithmetic step applied to the tracked value.
#[derive(Debug, Clone)]
enum Op {
    Mul(f64),
    Add(f64),
    Sub(f64),
    /// Unsupported by the affine tracker: must fail open, never produce
    /// an unsound fact.
    Square,
}

impl Op {
    fn render(&self, expr: &str) -> String {
        match self {
            Op::Mul(k) => format!("({expr}) * {k:?}"),
            Op::Add(k) => format!("({expr}) + {k:?}"),
            Op::Sub(k) => format!("({expr}) - {k:?}"),
            Op::Square => format!("({expr}) * ({expr})"),
        }
    }

    fn eval(&self, x: f64) -> f64 {
        match self {
            Op::Mul(k) => x * k,
            Op::Add(k) => x + k,
            Op::Sub(k) => x - k,
            Op::Square => x * x,
        }
    }
}

/// A guard over the derived value: `assert!(x CMP t)` (feasible region
/// is where the condition holds) or `if x CMP t { panic!() }` (feasible
/// region is the complement).
#[derive(Debug, Clone)]
struct Guard {
    cmp: &'static str,
    threshold: f64,
    protective: bool,
}

impl Guard {
    fn render(&self) -> String {
        if self.protective {
            format!(
                "if x {} {:?} {{ panic!(\"bad\"); }}",
                self.cmp, self.threshold
            )
        } else {
            format!("assert!(x {} {:?});", self.cmp, self.threshold)
        }
    }

    /// Whether a concrete derived value survives the guard.
    fn survives(&self, x: f64) -> bool {
        let holds = match self.cmp {
            "<" => x < self.threshold,
            "<=" => x <= self.threshold,
            ">" => x > self.threshold,
            ">=" => x >= self.threshold,
            _ => unreachable!("generator emits only the four comparisons"),
        };
        if self.protective {
            !holds
        } else {
            holds
        }
    }
}

fn op() -> BoxedStrategy<Op> {
    prop_oneof![
        (0.25f64..8.0).prop_map(Op::Mul),
        (-16.0f64..16.0).prop_map(Op::Mul), // negative scales flip the interval
        (-500.0f64..500.0).prop_map(Op::Add),
        (-500.0f64..500.0).prop_map(Op::Sub),
        Just(Op::Square),
    ]
    .boxed()
}

fn guard() -> BoxedStrategy<Guard> {
    (
        prop_oneof![Just("<"), Just("<="), Just(">"), Just(">=")],
        -5000.0f64..50000.0,
        0u32..2,
    )
        .prop_map(|(cmp, threshold, coin)| Guard {
            cmp,
            threshold,
            protective: coin == 1,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hard_narrow_facts_never_exclude_surviving_values(
        lo in 1.0f64..1000.0,
        width in 1.0f64..10000.0,
        ops in proptest::collection::vec(op(), 0..3),
        g in guard(),
    ) {
        let hi = lo + width;
        let params = format!(
            r#"
pub fn space() -> Vec<ParamSpec> {{
    vec![ParamSpec::float("probe_knob", {lo:?}, {hi:?}, {lo:?}, "probe")]
}}
"#
        );
        let mut expr = "m".to_string();
        for o in &ops {
            expr = o.render(&expr);
        }
        let engine = format!(
            r#"
pub fn run(c: &Configuration) {{
    let m = c.f64("probe_knob");
    let x = {expr};
    {}
}}
"#,
            g.render()
        );

        let pp = prepare("crates/sim/src/fixture/params.rs", &params)
            .expect("params prepares");
        let pe = prepare("crates/sim/src/fixture/engine.rs", &engine)
            .expect("engine prepares");
        let table = knobs::extract_table(
            [&pp, &pe]
                .iter()
                .map(|p| (p.rel.as_str(), p.lexed.tokens.as_slice())),
        );
        let analysis = analyze_file(&pe, &table, &CrateIndex::default());

        // Soundness: every concrete domain value whose derived `x`
        // survives the guard must sit inside every hard narrow fact
        // (facts claim "values outside this interval cannot survive").
        let eval = |v: f64| ops.iter().fold(v, |acc, o| o.eval(acc));
        for n in analysis.narrows.iter().filter(|n| n.hard) {
            prop_assert_eq!(&n.knob, "probe_knob");
            for i in 0..=64u32 {
                let v = lo + (hi - lo) * f64::from(i) / 64.0;
                if g.survives(eval(v)) {
                    // Tolerance scaled to the magnitudes involved: the
                    // tracker divides by the accumulated scale.
                    let tol = 1e-6 * (1.0 + v.abs() + n.lo.abs() + n.hi.abs());
                    prop_assert!(
                        v >= n.lo - tol && v <= n.hi + tol,
                        "surviving value {v} outside hard narrow [{}, {}]\n\
                         ops: {ops:?}\nguard: {g:?}\nengine:\n{engine}",
                        n.lo,
                        n.hi,
                    );
                }
            }
        }
    }
}
