//! Embedded good/bad source snippets, one pair per rule, plus suppression
//! cases. The integration tests scan each snippet under its designated
//! workspace-relative path and assert the expected rule ids; keeping the
//! snippets here (rather than as on-disk `.rs` files) means the workspace
//! self-scan can never trip over its own bad examples — string literals are
//! stripped by the lexer.

/// A fixture: source text scanned as if it lived at `path`, expected to
/// produce exactly the rule ids in `expect` (in report order).
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Short label for test diagnostics.
    pub label: &'static str,
    /// Workspace-relative path the snippet is classified under.
    pub path: &'static str,
    /// The snippet source.
    pub src: &'static str,
    /// Expected rule ids, sorted.
    pub expect: &'static [&'static str],
}

/// D1 bad: entropy-seeded RNG in live tuner code.
pub const D1_BAD: Fixture = Fixture {
    label: "d1-bad",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use rand::rngs::StdRng;
pub fn propose() -> f64 {
    let mut rng = rand::thread_rng();
    rng.random_range(0.0..1.0)
}
"#,
    expect: &["D1"],
};

/// D1 good: seeded construction, plus entropy allowed inside tests.
pub const D1_GOOD: Fixture = Fixture {
    label: "d1-good",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use rand::rngs::StdRng;
use rand::SeedableRng;
pub fn propose(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
#[cfg(test)]
mod tests {
    fn entropy_is_fine_here() {
        let _ = rand::thread_rng();
    }
}
"#,
    expect: &[],
};

/// D2 bad: wall-clock read inside a pure-evaluation crate.
pub const D2_BAD: Fixture = Fixture {
    label: "d2-bad",
    path: "crates/math/src/fixture.rs",
    src: r#"
pub fn timed_solve() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
"#,
    expect: &["D2"],
};

/// D2 good: the same read is legitimate in `core` session accounting.
pub const D2_GOOD: Fixture = Fixture {
    label: "d2-good",
    path: "crates/core/src/fixture.rs",
    src: r#"
pub fn session_overhead() -> std::time::Instant {
    std::time::Instant::now()
}
"#,
    expect: &[],
};

/// D3 bad: hash-ordered container in report-feeding code.
pub const D3_BAD: Fixture = Fixture {
    label: "d3-bad",
    path: "crates/bench/src/fixture.rs",
    src: r#"
use std::collections::HashMap;
pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#,
    expect: &["D3", "D3", "D3"],
};

/// D3 good: ordered container, deterministic iteration.
pub const D3_GOOD: Fixture = Fixture {
    label: "d3-good",
    path: "crates/bench/src/fixture.rs",
    src: r#"
use std::collections::BTreeMap;
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#,
    expect: &[],
};

/// D4 bad: NaN-unsafe sort key. Scanned under `bench` (not a D5 crate) so
/// the chained `unwrap` is claimed by D4 alone.
pub const D4_BAD: Fixture = Fixture {
    label: "d4-bad",
    path: "crates/bench/src/fixture.rs",
    src: r#"
pub fn rank(xs: &mut Vec<(String, f64)>) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}
"#,
    expect: &["D4"],
};

/// D4 good: total order over floats.
pub const D4_GOOD: Fixture = Fixture {
    label: "d4-good",
    path: "crates/bench/src/fixture.rs",
    src: r#"
pub fn rank(xs: &mut Vec<(String, f64)>) {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
}
"#,
    expect: &[],
};

/// D5 bad: unwrap and expect in a library crate (two findings).
pub const D5_BAD: Fixture = Fixture {
    label: "d5-bad",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn first_len(xs: &[Vec<f64>]) -> usize {
    let head = xs.first().unwrap();
    let alt = xs.last().expect("nonempty");
    head.len().max(alt.len())
}
"#,
    expect: &["D5", "D5"],
};

/// D5 good: errors propagate.
pub const D5_GOOD: Fixture = Fixture {
    label: "d5-good",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use autotune_core::error::{CoreError, CoreResult};
pub fn first_len(xs: &[Vec<f64>]) -> CoreResult<usize> {
    let head = xs.first().ok_or(CoreError::EmptyBudget)?;
    Ok(head.len())
}
"#,
    expect: &[],
};

/// Suppression with a reason: the finding is waived, no residue.
pub const SUPPRESSED: Fixture = Fixture {
    label: "suppressed",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn head(xs: &[f64]) -> f64 {
    // lint:allow(unwrap) caller guarantees nonempty via ConfigSpace::validate
    *xs.first().unwrap()
}
"#,
    expect: &[],
};

/// A bare allow: the target finding is waived but the reason-less directive
/// is itself reported.
pub const BARE_ALLOW: Fixture = Fixture {
    label: "bare-allow",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn head(xs: &[f64]) -> f64 {
    // lint:allow(unwrap)
    *xs.first().unwrap()
}
"#,
    expect: &["A0"],
};

/// U1 bad: an unsafe block with no `// SAFETY:` justification. Scanned
/// under the allowlisted SIMD file so U2 stays quiet and the U1 finding is
/// isolated.
pub const U1_BAD: Fixture = Fixture {
    label: "u1-bad",
    path: "crates/math/src/simd.rs",
    src: r#"
pub fn read_raw(p: *const f64) -> f64 {
    unsafe { *p }
}
"#,
    expect: &["U1"],
};

/// U1 good: the justification sits directly above the unsafe block.
pub const U1_GOOD: Fixture = Fixture {
    label: "u1-good",
    path: "crates/math/src/simd.rs",
    src: r#"
pub fn read_raw(p: *const f64) -> f64 {
    // SAFETY: caller guarantees `p` is valid for reads and aligned.
    unsafe { *p }
}
"#,
    expect: &[],
};

/// U2 bad: perfectly documented unsafe — in a crate where unsafe is not
/// allowed at all.
pub const U2_BAD: Fixture = Fixture {
    label: "u2-bad",
    path: "crates/core/src/fixture.rs",
    src: r#"
pub fn read_raw(p: *const f64) -> f64 {
    // SAFETY: caller guarantees `p` is valid for reads and aligned.
    unsafe { *p }
}
"#,
    expect: &["U2"],
};

/// U2 good: the same code is fine inside the audited SIMD module.
pub const U2_GOOD: Fixture = Fixture {
    label: "u2-good",
    path: "crates/math/src/simd.rs",
    src: r#"
pub fn read_raw(p: *const f64) -> f64 {
    // SAFETY: caller guarantees `p` is valid for reads and aligned.
    unsafe { *p }
}
"#,
    expect: &[],
};

/// U3 bad: the AVX2 call is feature-guarded but the dispatcher has no
/// reachable scalar fallback — on a non-AVX2 machine the function silently
/// does nothing.
pub const U3_BAD: Fixture = Fixture {
    label: "u3-bad",
    path: "crates/math/src/simd.rs",
    src: r#"
// SAFETY: `unsafe` only due to `#[target_feature]`; callers verify AVX2.
#[target_feature(enable = "avx2")]
unsafe fn sum_avx2(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, |a, b| a + b)
}
pub fn sum(xs: &[f64]) -> f64 {
    if has_avx2() {
        // SAFETY: AVX2 support verified above.
        return unsafe { sum_avx2(xs) };
    }
    0.0
}
"#,
    expect: &["U3"],
};

/// U3 good: guarded dispatch with a scalar fallback function.
pub const U3_GOOD: Fixture = Fixture {
    label: "u3-good",
    path: "crates/math/src/simd.rs",
    src: r#"
// SAFETY: `unsafe` only due to `#[target_feature]`; callers verify AVX2.
#[target_feature(enable = "avx2")]
unsafe fn sum_avx2(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, |a, b| a + b)
}
fn sum_scalar(xs: &[f64]) -> f64 {
    let mut s = 0.0;
    for &x in xs {
        s += x;
    }
    s
}
pub fn sum(xs: &[f64]) -> f64 {
    if has_avx2() {
        // SAFETY: AVX2 support verified above.
        return unsafe { sum_avx2(xs) };
    }
    sum_scalar(xs)
}
"#,
    expect: &[],
};

/// K2 bad (definition site): the default lies outside the declared bounds.
/// This check is local to the params module, so a single-file fixture.
pub const K2_DEF_BAD: Fixture = Fixture {
    label: "k2-def-bad",
    path: "crates/sim/src/fixture/params.rs",
    src: r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int("page_cache_mb", 64, 4096, 65536, "default above max")]
}
"#,
    expect: &["K2"],
};

/// K2 good (definition site): bounds and default are consistent.
pub const K2_DEF_GOOD: Fixture = Fixture {
    label: "k2-def-good",
    path: "crates/sim/src/fixture/params.rs",
    src: r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int("page_cache_mb", 64, 65536, 4096, "page cache")]
}
"#,
    expect: &[],
};

/// C1 bad: two functions nest the same two locks in opposite orders — a
/// classic ABBA deadlock. Both witness acquisitions are reported.
pub const C1_BAD: Fixture = Fixture {
    label: "c1-bad",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn queue_then_commit(sh: &Shared) {
    let q = lock(&sh.queue);
    let c = lock(&sh.commit);
    drop(c);
    drop(q);
}
pub fn commit_then_queue(sh: &Shared) {
    let c = lock(&sh.commit);
    let q = lock(&sh.queue);
    drop(q);
    drop(c);
}
"#,
    expect: &["C1", "C1"],
};

/// C1 good: every function agrees on queue-before-commit.
pub const C1_GOOD: Fixture = Fixture {
    label: "c1-good",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn append(sh: &Shared) {
    let q = lock(&sh.queue);
    let c = lock(&sh.commit);
    drop(c);
    drop(q);
}
pub fn drain(sh: &Shared) {
    let q = lock(&sh.queue);
    let c = lock(&sh.commit);
    drop(c);
    drop(q);
}
"#,
    expect: &[],
};

/// C2 bad: fdatasync while the state guard is live — every other thread
/// touching that mutex stalls behind disk latency.
pub const C2_BAD: Fixture = Fixture {
    label: "c2-bad",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn flush(sh: &Shared, file: &mut File) -> std::io::Result<()> {
    let g = lock(&sh.state);
    file.sync_all()?;
    drop(g);
    Ok(())
}
"#,
    expect: &["C2"],
};

/// C2 good: the guard is scoped out before the sync.
pub const C2_GOOD: Fixture = Fixture {
    label: "c2-good",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn flush(sh: &Shared, file: &mut File) -> std::io::Result<()> {
    {
        let g = lock(&sh.state);
        g.clear();
    }
    file.sync_all()
}
"#,
    expect: &[],
};

/// C3 bad: the condvar wait sits under an `if`, so a spurious (or stolen)
/// wakeup proceeds without re-checking the predicate.
pub const C3_BAD: Fixture = Fixture {
    label: "c3-bad",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn take_one(sh: &Shared) -> usize {
    let mut q = lock(&sh.queue);
    if q.pending == 0 {
        q = sh.cv.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    q.pending
}
"#,
    expect: &["C3"],
};

/// C3 good: the wait re-checks its predicate in a `while` loop. The wait
/// atomically releases `q` (passed as the argument), so no C2 either.
pub const C3_GOOD: Fixture = Fixture {
    label: "c3-good",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn take_one(sh: &Shared) -> usize {
    let mut q = lock(&sh.queue);
    while q.pending == 0 {
        q = sh.cv.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    q.pending
}
"#,
    expect: &[],
};

/// C4 bad: the PR-6 cancel-bug shape — a state-mutating handler builds
/// its 2xx before awaiting durability, so a crash between the two acks a
/// mutation the journal never kept.
pub const C4_BAD: Fixture = Fixture {
    label: "c4-bad",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn cancel_session(state: &State) -> ServeResult<Response> {
    let ticket = lock(&state.sessions).cancel();
    let resp = Response::json(200, &Cancelled);
    state.sink.wait_durable(ticket);
    Ok(resp)
}
"#,
    expect: &["C4"],
};

/// C4 good: durability first, then the ack.
pub const C4_GOOD: Fixture = Fixture {
    label: "c4-good",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn cancel_session(state: &State) -> ServeResult<Response> {
    let ticket = lock(&state.sessions).cancel();
    state.sink.wait_durable(ticket);
    Ok(Response::json(200, &Cancelled))
}
"#,
    expect: &[],
};

/// C5 bad: the early-return path drops the commit ticket without ever
/// waiting on it; the finding anchors at the producing statement.
pub const C5_BAD: Fixture = Fixture {
    label: "c5-bad",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn checkpoint(state: &State, skip: bool) -> ServeResult<u64> {
    let (sink, ticket) = state.durability_barrier();
    if skip {
        return Ok(0);
    }
    sink.wait_durable(ticket);
    Ok(ticket)
}
"#,
    expect: &["C5"],
};

/// C5 good: every path discharges the ticket before leaving.
pub const C5_GOOD: Fixture = Fixture {
    label: "c5-good",
    path: "crates/serve/src/fixture.rs",
    src: r#"
pub fn checkpoint(state: &State, skip: bool) -> ServeResult<u64> {
    let (sink, ticket) = state.durability_barrier();
    if skip {
        sink.wait_durable(ticket);
        return Ok(0);
    }
    sink.wait_durable(ticket);
    Ok(ticket)
}
"#,
    expect: &[],
};

/// Every single-file fixture, for exhaustive test loops.
pub const ALL: &[Fixture] = &[
    D1_BAD,
    D1_GOOD,
    D2_BAD,
    D2_GOOD,
    D3_BAD,
    D3_GOOD,
    D4_BAD,
    D4_GOOD,
    D5_BAD,
    D5_GOOD,
    SUPPRESSED,
    BARE_ALLOW,
    U1_BAD,
    U1_GOOD,
    U2_BAD,
    U2_GOOD,
    U3_BAD,
    U3_GOOD,
    K2_DEF_BAD,
    K2_DEF_GOOD,
    C1_BAD,
    C1_GOOD,
    C2_BAD,
    C2_GOOD,
    C3_BAD,
    C3_GOOD,
    C4_BAD,
    C4_GOOD,
    C5_BAD,
    C5_GOOD,
];

/// A multi-file fixture: the K-series consumer rules resolve knob names
/// against a table extracted from the params files, so they need at least
/// two files (definitions + consumer) scanned together.
#[derive(Debug, Clone, Copy)]
pub struct MultiFixture {
    /// Short label for test diagnostics.
    pub label: &'static str,
    /// `(workspace-relative path, source)` pairs scanned as one workspace.
    pub files: &'static [(&'static str, &'static str)],
    /// Expected rule ids, in report order (sorted by file, line, rule).
    pub expect: &'static [&'static str],
}

/// The params module shared by the K-series multi-file fixtures: a
/// two-knob Spark-flavored space with consts, an int range, and a boolean.
const K_PARAMS: (&str, &str) = (
    "crates/sim/src/fixture/params.rs",
    r#"
pub mod knobs {
    pub const EXEC_MEMORY_MB: &str = "executor_memory_mb";
    pub const SHUFFLE_COMPRESS: &str = "shuffle_compress";
}
pub fn space() -> Vec<ParamSpec> {
    use knobs::*;
    vec![
        ParamSpec::int(EXEC_MEMORY_MB, 512, 16384, 2048, "executor memory"),
        ParamSpec::boolean(SHUFFLE_COMPRESS, true, "compress shuffle"),
    ]
}
"#,
);

/// K1 bad: a tuner reads a knob whose name does not resolve (typo). The
/// two valid reads keep K3 quiet so the typo is the only finding.
pub const K1_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k1-bad-multi",
    files: &[
        K_PARAMS,
        (
            "crates/tuners/src/fixture.rs",
            r#"
pub fn apply(c: &Configuration) -> i64 {
    let mem = c.i64("executor_memory_mb");
    let typo = c.i64("executor_memory_mbb");
    let _ = c.bool("shuffle_compress");
    mem + typo
}
"#,
        ),
    ],
    expect: &["K1"],
};

/// K1 good: every referenced name resolves.
pub const K1_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "k1-good-multi",
    files: &[
        K_PARAMS,
        (
            "crates/tuners/src/fixture.rs",
            r#"
pub fn apply(c: &Configuration) -> i64 {
    let _ = c.bool("shuffle_compress");
    c.i64("executor_memory_mb")
}
"#,
        ),
    ],
    expect: &[],
};

/// K2 bad (set site): a literal `set` value outside the declared range.
pub const K2_SET_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k2-set-bad-multi",
    files: &[
        K_PARAMS,
        (
            "crates/bench/src/fixture.rs",
            r#"
pub fn configure(c: &mut Configuration) {
    c.set("executor_memory_mb", ParamValue::Int(999999));
    c.set("shuffle_compress", ParamValue::Bool(true));
}
"#,
        ),
    ],
    expect: &["K2"],
};

/// K2 good (set site): in-range literal and a computed value (computed
/// values are not statically checkable and stay quiet).
pub const K2_SET_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "k2-set-good-multi",
    files: &[
        K_PARAMS,
        (
            "crates/bench/src/fixture.rs",
            r#"
pub fn configure(c: &mut Configuration, nodes: i64) {
    c.set("executor_memory_mb", ParamValue::Int(4096));
    c.set("shuffle_compress", ParamValue::Bool(nodes > 4));
}
"#,
        ),
    ],
    expect: &[],
};

/// K3 bad: `shuffle_compress` is defined but nothing outside the params
/// module references it — a warn-level finding at the builder call.
pub const K3_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k3-bad-multi",
    files: &[
        K_PARAMS,
        (
            "crates/tuners/src/fixture.rs",
            r#"
pub fn apply(c: &Configuration) -> i64 {
    c.i64("executor_memory_mb")
}
"#,
        ),
    ],
    expect: &["K3"],
};

/// C1 interprocedural bad: the lock set crosses files — `enqueue` holds
/// the queue while calling a helper (defined in another file of the same
/// crate) that takes the commit lock, while `drain` nests the two
/// directly in the opposite order. Both edges of the cycle are witnessed
/// in `flow.rs`: the helper call site and the direct nested acquisition.
pub const C1_BAD_MULTI: MultiFixture = MultiFixture {
    label: "c1-bad-multi",
    files: &[
        (
            "crates/serve/src/fixture/wal_util.rs",
            r#"
pub fn note_error(sh: &Shared, msg: String) {
    let c = lock(&sh.commit);
    c.error = Some(msg);
}
"#,
        ),
        (
            "crates/serve/src/fixture/flow.rs",
            r#"
pub fn enqueue(sh: &Shared, msg: String) {
    let q = lock(&sh.queue);
    note_error(sh, msg);
    drop(q);
}
pub fn drain(sh: &Shared) {
    let c = lock(&sh.commit);
    let q = lock(&sh.queue);
    drop(q);
    drop(c);
}
"#,
        ),
    ],
    expect: &["C1", "C1"],
};

/// C1 interprocedural good: the helper is only called after the queue
/// guard is released, so the crate-wide order stays acyclic.
pub const C1_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "c1-good-multi",
    files: &[
        (
            "crates/serve/src/fixture/wal_util.rs",
            r#"
pub fn note_error(sh: &Shared, msg: String) {
    let c = lock(&sh.commit);
    c.error = Some(msg);
}
"#,
        ),
        (
            "crates/serve/src/fixture/flow.rs",
            r#"
pub fn enqueue(sh: &Shared, msg: String) {
    let q = lock(&sh.queue);
    drop(q);
    note_error(sh, msg);
}
pub fn drain(sh: &Shared) {
    let c = lock(&sh.commit);
    let q = lock(&sh.queue);
    drop(q);
    drop(c);
}
"#,
        ),
    ],
    expect: &[],
};

/// K4 bad: the engine asserts a bound no value of the declared
/// `[64, 4096]` domain can meet — the guard is statically dead.
pub const K4_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k4-bad-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache")]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let m = c.f64("io_cache_mb");
    assert!(m > 100000.0);
}
"#,
        ),
    ],
    expect: &["K4"],
};

/// K4 good: both guards are live against the domain — they narrow the
/// feasible range (a fact for the constraints compiler), not findings.
pub const K4_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "k4-good-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache")]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let m = c.f64("io_cache_mb");
    assert!(m >= 128.0);
    if m > 2048.0 {
        shrink();
    }
}
"#,
        ),
    ],
    expect: &[],
};

/// K4 interprocedural bad: the dead assert sits one call away from the
/// accessor, in another file of the same crate — the crate index carries
/// the callee's parameter guard back to the call site.
pub const K4_CALL_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k4-call-bad-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache")]
}
"#,
        ),
        (
            "crates/sim/src/fixture/checks.rs",
            r#"
pub fn validate_cache(mb: f64) {
    assert!(mb >= 1000000000.0);
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let m = c.f64("io_cache_mb");
    validate_cache(m);
}
"#,
        ),
    ],
    expect: &["K4"],
};

/// K5 bad: a memory knob compared against a duration knob — the units
/// make the comparison meaningless regardless of the values.
pub const K5_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k5-bad-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache").with_unit("MB"),
        ParamSpec::int("flush_wait_ms", 1, 1000, 50, "flush wait").with_unit("ms"),
    ]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let cache = c.f64("io_cache_mb");
    let wait = c.f64("flush_wait_ms");
    if cache > wait {
        tune();
    }
}
"#,
        ),
    ],
    expect: &["K5"],
};

/// K5 good: same two knobs, each guarded in its own unit — nothing
/// cross-unit to flag.
pub const K5_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "k5-good-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache").with_unit("MB"),
        ParamSpec::int("flush_wait_ms", 1, 1000, 50, "flush wait").with_unit("ms"),
    ]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let io_cache_mb = c.f64("io_cache_mb");
    let flush_wait_ms = c.f64("flush_wait_ms");
    if io_cache_mb > 1024.0 {
        spill();
    }
    if flush_wait_ms > 100.0 {
        defer();
    }
}
"#,
        ),
    ],
    expect: &[],
};

/// K6 bad: a fraction in `[0.1, 0.9]` asserted below a cache size in
/// `[64, 4096]` — the domains are disjoint, so the check can never bind.
pub const K6_BAD_MULTI: MultiFixture = MultiFixture {
    label: "k6-bad-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::float("cache_fraction", 0.1, 0.9, 0.5, "cache share"),
        ParamSpec::int("io_cache_mb", 64, 4096, 512, "page cache"),
    ]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let frac = c.f64("cache_fraction");
    let cache = c.f64("io_cache_mb");
    assert!(frac < cache);
}
"#,
        ),
    ],
    expect: &["K6"],
};

/// K6 good: overlapping domains keep the comparison live — it becomes a
/// `LeFactor` dependency fact for the constraints compiler, not a finding.
pub const K6_GOOD_MULTI: MultiFixture = MultiFixture {
    label: "k6-good-multi",
    files: &[
        (
            "crates/sim/src/fixture/params.rs",
            r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::float("cache_fraction", 0.1, 0.9, 0.5, "cache share"),
        ParamSpec::float("spill_fraction", 0.2, 0.8, 0.4, "spill share"),
    ]
}
"#,
        ),
        (
            "crates/sim/src/fixture/engine.rs",
            r#"
pub fn run(c: &Configuration) {
    let cache = c.f64("cache_fraction");
    let spill = c.f64("spill_fraction");
    if cache <= spill {
        rebalance();
    }
}
"#,
        ),
    ],
    expect: &[],
};

/// Every multi-file fixture, for exhaustive test loops.
pub const ALL_MULTI: &[MultiFixture] = &[
    K1_BAD_MULTI,
    K1_GOOD_MULTI,
    K2_SET_BAD_MULTI,
    K2_SET_GOOD_MULTI,
    K3_BAD_MULTI,
    K4_BAD_MULTI,
    K4_GOOD_MULTI,
    K4_CALL_BAD_MULTI,
    K5_BAD_MULTI,
    K5_GOOD_MULTI,
    K6_BAD_MULTI,
    K6_GOOD_MULTI,
    C1_BAD_MULTI,
    C1_GOOD_MULTI,
];
