//! Embedded good/bad source snippets, one pair per rule, plus suppression
//! cases. The integration tests scan each snippet under its designated
//! workspace-relative path and assert the expected rule ids; keeping the
//! snippets here (rather than as on-disk `.rs` files) means the workspace
//! self-scan can never trip over its own bad examples — string literals are
//! stripped by the lexer.

/// A fixture: source text scanned as if it lived at `path`, expected to
/// produce exactly the rule ids in `expect` (in report order).
#[derive(Debug, Clone, Copy)]
pub struct Fixture {
    /// Short label for test diagnostics.
    pub label: &'static str,
    /// Workspace-relative path the snippet is classified under.
    pub path: &'static str,
    /// The snippet source.
    pub src: &'static str,
    /// Expected rule ids, sorted.
    pub expect: &'static [&'static str],
}

/// D1 bad: entropy-seeded RNG in live tuner code.
pub const D1_BAD: Fixture = Fixture {
    label: "d1-bad",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use rand::rngs::StdRng;
pub fn propose() -> f64 {
    let mut rng = rand::thread_rng();
    rng.random_range(0.0..1.0)
}
"#,
    expect: &["D1"],
};

/// D1 good: seeded construction, plus entropy allowed inside tests.
pub const D1_GOOD: Fixture = Fixture {
    label: "d1-good",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use rand::rngs::StdRng;
use rand::SeedableRng;
pub fn propose(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
#[cfg(test)]
mod tests {
    fn entropy_is_fine_here() {
        let _ = rand::thread_rng();
    }
}
"#,
    expect: &[],
};

/// D2 bad: wall-clock read inside a pure-evaluation crate.
pub const D2_BAD: Fixture = Fixture {
    label: "d2-bad",
    path: "crates/math/src/fixture.rs",
    src: r#"
pub fn timed_solve() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
"#,
    expect: &["D2"],
};

/// D2 good: the same read is legitimate in `core` session accounting.
pub const D2_GOOD: Fixture = Fixture {
    label: "d2-good",
    path: "crates/core/src/fixture.rs",
    src: r#"
pub fn session_overhead() -> std::time::Instant {
    std::time::Instant::now()
}
"#,
    expect: &[],
};

/// D3 bad: hash-ordered container in report-feeding code.
pub const D3_BAD: Fixture = Fixture {
    label: "d3-bad",
    path: "crates/bench/src/fixture.rs",
    src: r#"
use std::collections::HashMap;
pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#,
    expect: &["D3", "D3", "D3"],
};

/// D3 good: ordered container, deterministic iteration.
pub const D3_GOOD: Fixture = Fixture {
    label: "d3-good",
    path: "crates/bench/src/fixture.rs",
    src: r#"
use std::collections::BTreeMap;
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#,
    expect: &[],
};

/// D4 bad: NaN-unsafe sort key. Scanned under `bench` (not a D5 crate) so
/// the chained `unwrap` is claimed by D4 alone.
pub const D4_BAD: Fixture = Fixture {
    label: "d4-bad",
    path: "crates/bench/src/fixture.rs",
    src: r#"
pub fn rank(xs: &mut Vec<(String, f64)>) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}
"#,
    expect: &["D4"],
};

/// D4 good: total order over floats.
pub const D4_GOOD: Fixture = Fixture {
    label: "d4-good",
    path: "crates/bench/src/fixture.rs",
    src: r#"
pub fn rank(xs: &mut Vec<(String, f64)>) {
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
}
"#,
    expect: &[],
};

/// D5 bad: unwrap and expect in a library crate (two findings).
pub const D5_BAD: Fixture = Fixture {
    label: "d5-bad",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn first_len(xs: &[Vec<f64>]) -> usize {
    let head = xs.first().unwrap();
    let alt = xs.last().expect("nonempty");
    head.len().max(alt.len())
}
"#,
    expect: &["D5", "D5"],
};

/// D5 good: errors propagate.
pub const D5_GOOD: Fixture = Fixture {
    label: "d5-good",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
use autotune_core::error::{CoreError, CoreResult};
pub fn first_len(xs: &[Vec<f64>]) -> CoreResult<usize> {
    let head = xs.first().ok_or(CoreError::EmptyBudget)?;
    Ok(head.len())
}
"#,
    expect: &[],
};

/// Suppression with a reason: the finding is waived, no residue.
pub const SUPPRESSED: Fixture = Fixture {
    label: "suppressed",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn head(xs: &[f64]) -> f64 {
    // lint:allow(unwrap) caller guarantees nonempty via ConfigSpace::validate
    *xs.first().unwrap()
}
"#,
    expect: &[],
};

/// A bare allow: the target finding is waived but the reason-less directive
/// is itself reported.
pub const BARE_ALLOW: Fixture = Fixture {
    label: "bare-allow",
    path: "crates/tuners/src/fixture.rs",
    src: r#"
pub fn head(xs: &[f64]) -> f64 {
    // lint:allow(unwrap)
    *xs.first().unwrap()
}
"#,
    expect: &["A0"],
};

/// Every fixture, for exhaustive test loops.
pub const ALL: &[Fixture] = &[
    D1_BAD, D1_GOOD, D2_BAD, D2_GOOD, D3_BAD, D3_GOOD, D4_BAD, D4_GOOD, D5_BAD, D5_GOOD,
    SUPPRESSED, BARE_ALLOW,
];
