//! Workspace layout knowledge: which crate a file belongs to, whether it is
//! test-only code, and which rules apply where.
//!
//! The scopes mirror the determinism contract documented in DESIGN.md:
//!
//! * **D1 `unseeded-rng`** — everywhere outside `#[cfg(test)]`. Tuner
//!   evaluations must be replayable from a seed, so entropy-based RNG
//!   construction is banned workspace-wide.
//! * **D2 `wall-clock`** — the pure-evaluation crates `math`, `sim`,
//!   `tuners`, plus `serve`: the daemon must replay sessions from the WAL
//!   byte-identically, so clock reads there need an explicit suppression
//!   with a reason (e.g. audit-only creation timestamps). Session overhead
//!   accounting in `core` (and timing in the `bench` harness / criterion
//!   benches) legitimately reads the clock and is out of scope.
//! * **D3 `hash-iter`** — `core`, `tuners`, `bench`, `serve` library
//!   sources. Any `HashMap`/`HashSet` there risks order-dependent iteration
//!   feeding a report (or a WAL); use `BTreeMap`/`BTreeSet` or suppress with
//!   a reason proving the container is never iterated.
//! * **D4 `nan-ord`** — everywhere outside tests. `partial_cmp(..).unwrap()`
//!   panics mid-benchmark on the first NaN; `total_cmp` degrades gracefully.
//! * **D5 `unwrap`** — the library crates `core`, `math`, `sim`, `tuners`,
//!   `serve`. Library code propagates errors (`autotune-core::error`,
//!   `autotune-serve::ServeError`) or justifies the invariant inline.
//!
//! The semantic rules added on top of the item tree:
//!
//! * **U1 `safety-comment`** — every `unsafe` block and `unsafe fn` must be
//!   directly preceded by a `// SAFETY:` comment stating its invariant.
//! * **U2 `unsafe-scope`** — `unsafe` may only appear in the allowlisted
//!   modules ([`ALLOWED_UNSAFE_FILES`]); anywhere else it is reported.
//! * **U3 `simd-fallback`** — every call to an AVX2 kernel
//!   (`#[target_feature(enable = "avx2")]`) must be feature-gated and the
//!   dispatching function must keep a reachable scalar fallback; a kernel
//!   with no dispatcher at all is reported too.
//! * **K1 `knob-unknown`** — a knob-name string (or const) at a knob
//!   consumer site that does not resolve in the workspace knob table.
//! * **K2 `knob-domain`** — a knob default/bound inconsistent at its
//!   definition, or a literal `set(...)` value outside the declared domain.
//! * **K3 `knob-unused`** (warn) — a knob defined in a params module but
//!   never referenced anywhere else in the workspace.
//!
//! The dataflow-driven knob-semantics rules (see [`crate::dataflow`]):
//!
//! * **K4 `knob-narrow`** — a guard/assert over a knob value that is
//!   statically dead against the declared domain (always-false check, or
//!   a protective branch that always panics). Live guards are not
//!   findings; they become range facts for `--emit-constraints`.
//! * **K5 `knob-unit`** — values with conflicting declared units added,
//!   subtracted, or compared; or a binding whose `_ms`/`_mb`-style
//!   suffix contradicts the unit of the knob it reads.
//! * **K6 `knob-cross`** — a cross-knob comparison whose outcome is
//!   statically constant (disjoint propagated intervals), or a
//!   knob-product bound that can never hold. Live cross-knob relations
//!   become dependency facts.
//!
//! The statement-level concurrency & durability rules (C-series), driven
//! by the [`Protocol`] declaration below:
//!
//! * **C1 `lock-order`** — a cycle in the crate-wide lock-acquisition
//!   graph (lock B taken while holding A in one place, A while holding B
//!   in another, directly or one call level deep).
//! * **C2 `blocking-while-locked`** — fsync/recv/sleep/socket I/O or a
//!   durability wait reached while a mutex guard is live in scope.
//! * **C3 `condvar-wait-not-in-loop`** — a guard-passing condvar wait not
//!   lexically inside a `while`/`loop` (missed-wakeup hazard).
//! * **C4 `ack-before-durable`** — in the serve crate, a mutating handler
//!   path that emits a 2xx response without first reaching a durability
//!   wait.
//! * **C5 `unwaited-ticket`** — a commit ticket / RAII driver guard that
//!   can drop without its wait/disarm method on some path.

/// Files in which `unsafe` is permitted (U2 allowlist). Vendored crates are
/// never scanned, so they need no entries here.
pub const ALLOWED_UNSAFE_FILES: &[&str] = &[
    "crates/math/src/simd.rs",
    // Signal handler registration for the serve daemon: a single audited
    // `signal(2)` FFI call whose handler only performs an atomic store.
    "crates/serve/src/signal.rs",
];

/// The concurrency & durability protocol the C-series rules enforce. The
/// rules are data-driven so the protocol is declared here, in one place,
/// rather than hard-coded in the analyzers: which functions acquire locks,
/// which calls block, which calls are the durability barrier the serve
/// protocol requires before a 2xx ack, and which RAII values must be
/// explicitly discharged on every path.
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Free functions that acquire a mutex and return the guard
    /// (`lock(&field)` — the poison-recovering helper in
    /// `scheduler.rs`). The lock key is the last field segment of the
    /// first argument. Functions *named* like these are themselves
    /// excluded from analysis (they are the lock primitive).
    pub lock_fns: &'static [&'static str],
    /// Methods that acquire a mutex (`mutex.lock()`); the lock key is the
    /// last segment of the receiver path.
    pub lock_methods: &'static [&'static str],
    /// Calls that block the current thread (fsync, channel receive,
    /// sleep, socket accept): reaching one while a guard is live is C2.
    pub blocking_calls: &'static [&'static str],
    /// Condvar wait methods that take the guard as an argument and must
    /// sit inside a `while`/`loop` (C3). They also count as blocking for
    /// C2, except for the guard they consume.
    pub condvar_waits: &'static [&'static str],
    /// Condvar waits with a built-in predicate (`wait_while`); exempt
    /// from C3 and treated like [`Self::condvar_waits`] for C2.
    pub condvar_pred_waits: &'static [&'static str],
    /// Durability-await calls (the group-commit ticket wait). Reaching
    /// one marks a path durable for C4; they block for C2 purposes.
    pub durability_waits: &'static [&'static str],
    /// Response-constructor methods whose first argument is a literal
    /// HTTP status (`Response::json(200, ..)`); a 2xx call is an ack.
    pub ack_fns: &'static [&'static str],
    /// Type name the ack constructors hang off.
    pub ack_recv: &'static str,
    /// State-mutating handler functions in the protocol crate: every path
    /// from entry to a 2xx ack must pass a durability wait (C4).
    pub mutating_handlers: &'static [&'static str],
    /// `(producer, discharge)` pairs for C5: a producer call bound by
    /// `let` arms an obligation discharged only by calling the discharge
    /// method on (or with) one of the bound names. A producer spelled
    /// `Type::method` matches a path-qualified call; a bare name matches
    /// a method or free call.
    pub obligations: &'static [(&'static str, &'static str)],
    /// Crate the C4/C5 protocol rules apply to.
    pub protocol_crate: &'static str,
}

/// The workspace's own protocol: serve-layer group commit + driver guards.
pub const DEFAULT_PROTOCOL: Protocol = Protocol {
    lock_fns: &["lock"],
    lock_methods: &["lock"],
    blocking_calls: &[
        "sync_all",
        "sync_data",
        "recv",
        "recv_timeout",
        "sleep",
        "accept",
        "read_exact",
        "write_all",
    ],
    condvar_waits: &["wait", "wait_timeout"],
    condvar_pred_waits: &["wait_while", "wait_timeout_while"],
    durability_waits: &["wait_durable"],
    ack_fns: &["json", "text"],
    ack_recv: "Response",
    mutating_handlers: &["create_session", "advance_session", "cancel_session"],
    obligations: &[
        ("durability_barrier", "wait_durable"),
        ("DriverGuard::new", "disarm"),
    ],
    protocol_crate: "serve",
};

/// Finding severity: errors fail the build, warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but does not make the exit code nonzero.
    Warning,
    /// Build-failing.
    Error,
}

impl Severity {
    /// Stable lowercase label used in reports and SARIF levels.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: unseeded RNG construction.
    UnseededRng,
    /// D2: wall-clock reads in pure-evaluation crates.
    WallClock,
    /// D3: hash-ordered containers in report-feeding crates.
    HashIter,
    /// D4: NaN-unsafe float ordering.
    NanOrd,
    /// D5: `unwrap`/`expect` in library crates.
    Unwrap,
    /// U1: `unsafe` without a `// SAFETY:` justification.
    SafetyComment,
    /// U2: `unsafe` outside the allowlisted modules.
    UnsafeScope,
    /// U3: AVX2 kernel without a guarded dispatcher + scalar fallback.
    SimdFallback,
    /// K1: knob reference that does not resolve in the knob table.
    KnobUnknown,
    /// K2: knob default/bound/value outside its declared domain.
    KnobDomain,
    /// K3: knob defined but never referenced (warn-level).
    KnobUnused,
    /// K4: knob guard statically dead against the declared domain.
    KnobNarrow,
    /// K5: conflicting units combined or compared.
    KnobUnit,
    /// K6: cross-knob comparison/bound statically constant.
    KnobCross,
    /// C1: lock-acquisition cycle across the crate's lock-order graph.
    LockOrder,
    /// C2: blocking call reached while a mutex guard is live in scope.
    BlockingLock,
    /// C3: condvar wait not re-checked inside a `while`/`loop`.
    CondvarLoop,
    /// C4: 2xx ack emitted on a path that never awaited durability.
    AckDurable,
    /// C5: commit ticket / RAII guard dropped without wait/disarm.
    TicketDrop,
    /// A `lint:allow` suppression with no reason.
    BareAllow,
}

/// Every rule, for parsing and report metadata.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::UnseededRng,
    RuleId::WallClock,
    RuleId::HashIter,
    RuleId::NanOrd,
    RuleId::Unwrap,
    RuleId::SafetyComment,
    RuleId::UnsafeScope,
    RuleId::SimdFallback,
    RuleId::KnobUnknown,
    RuleId::KnobDomain,
    RuleId::KnobUnused,
    RuleId::KnobNarrow,
    RuleId::KnobUnit,
    RuleId::KnobCross,
    RuleId::LockOrder,
    RuleId::BlockingLock,
    RuleId::CondvarLoop,
    RuleId::AckDurable,
    RuleId::TicketDrop,
    RuleId::BareAllow,
];

impl RuleId {
    /// Short stable id (`D1`..`D5`, `U1`..`U3`, `K1`..`K3`, `A0`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnseededRng => "D1",
            RuleId::WallClock => "D2",
            RuleId::HashIter => "D3",
            RuleId::NanOrd => "D4",
            RuleId::Unwrap => "D5",
            RuleId::SafetyComment => "U1",
            RuleId::UnsafeScope => "U2",
            RuleId::SimdFallback => "U3",
            RuleId::KnobUnknown => "K1",
            RuleId::KnobDomain => "K2",
            RuleId::KnobUnused => "K3",
            RuleId::KnobNarrow => "K4",
            RuleId::KnobUnit => "K5",
            RuleId::KnobCross => "K6",
            RuleId::LockOrder => "C1",
            RuleId::BlockingLock => "C2",
            RuleId::CondvarLoop => "C3",
            RuleId::AckDurable => "C4",
            RuleId::TicketDrop => "C5",
            RuleId::BareAllow => "A0",
        }
    }

    /// Human name, also accepted in suppression directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnseededRng => "unseeded-rng",
            RuleId::WallClock => "wall-clock",
            RuleId::HashIter => "hash-iter",
            RuleId::NanOrd => "nan-ord",
            RuleId::Unwrap => "unwrap",
            RuleId::SafetyComment => "safety-comment",
            RuleId::UnsafeScope => "unsafe-scope",
            RuleId::SimdFallback => "simd-fallback",
            RuleId::KnobUnknown => "knob-unknown",
            RuleId::KnobDomain => "knob-domain",
            RuleId::KnobUnused => "knob-unused",
            RuleId::KnobNarrow => "knob-narrow",
            RuleId::KnobUnit => "knob-unit",
            RuleId::KnobCross => "knob-cross",
            RuleId::LockOrder => "lock-order",
            RuleId::BlockingLock => "blocking-while-locked",
            RuleId::CondvarLoop => "condvar-wait-not-in-loop",
            RuleId::AckDurable => "ack-before-durable",
            RuleId::TicketDrop => "unwaited-ticket",
            RuleId::BareAllow => "bare-allow",
        }
    }

    /// Severity class of findings this rule produces.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::KnobUnused => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Parses a rule id or name as written in a suppression directive.
    pub fn parse(s: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }

    /// One-line description used in reports.
    pub fn message(self) -> &'static str {
        match self {
            RuleId::UnseededRng => {
                "unseeded RNG construction breaks replayability; seed from the session (StdRng::seed_from_u64)"
            }
            RuleId::WallClock => {
                "wall-clock read inside a pure-evaluation crate; thread time in via parameters"
            }
            RuleId::HashIter => {
                "hash-ordered container in report-feeding code; use BTreeMap/BTreeSet or sort before output"
            }
            RuleId::NanOrd => {
                "NaN-unsafe float ordering panics on NaN; use f64::total_cmp or handle the None"
            }
            RuleId::Unwrap => {
                "unwrap/expect in library code; propagate via autotune-core::error or justify inline"
            }
            RuleId::SafetyComment => {
                "unsafe without a justification; add a `// SAFETY:` comment directly above stating the invariant"
            }
            RuleId::UnsafeScope => {
                "unsafe outside the audited allowlist (math::simd, serve::signal); keep raw-pointer and FFI code in the audited modules"
            }
            RuleId::SimdFallback => {
                "AVX2 kernel call without a feature guard and reachable scalar fallback in the dispatching function"
            }
            RuleId::KnobUnknown => {
                "knob name does not resolve in the workspace knob table; fix the typo or register the knob"
            }
            RuleId::KnobDomain => {
                "knob value/default/bounds outside the declared domain; align with the params-module definition"
            }
            RuleId::KnobUnused => {
                "knob defined but never referenced by any tuner, engine, or scenario; wire it up or drop it"
            }
            RuleId::KnobNarrow => {
                "knob guard is statically dead against the declared domain; fix the bound or the domain"
            }
            RuleId::KnobUnit => {
                "conflicting units combined or compared; convert explicitly or fix the declared unit"
            }
            RuleId::KnobCross => {
                "cross-knob check is statically constant over the declared domains; the constraint can never bind"
            }
            RuleId::LockOrder => {
                "lock-acquisition cycle: these locks are taken in conflicting orders across the crate; pick one global order"
            }
            RuleId::BlockingLock => {
                "blocking call while a mutex guard is live; drop or scope the guard before fsync/recv/sleep/IO"
            }
            RuleId::CondvarLoop => {
                "condvar wait outside a while/loop; a spurious or stolen wakeup skips the predicate re-check"
            }
            RuleId::AckDurable => {
                "2xx response on a path that never awaited durability; call the durability wait before acking"
            }
            RuleId::TicketDrop => {
                "commit ticket or RAII guard can drop without its wait/disarm on this path; discharge it on every path"
            }
            RuleId::BareAllow => "lint:allow without a reason; state why the suppression is sound",
        }
    }
}

/// What the analyzer knows about a file before scanning it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCtx {
    /// Workspace crate directory name (`core`, `math`, ..., or `autotune`
    /// for the root package).
    pub crate_name: String,
    /// True for integration-test files (under a `tests/` directory); all
    /// rules skip these wholesale.
    pub is_test_source: bool,
    /// True for files under a `src/` directory (as opposed to benches or
    /// examples); crate-scoped rules only apply here.
    pub is_lib_source: bool,
}

/// Classifies a workspace-relative path (`crates/core/src/pareto.rs`).
/// Returns `None` for files the analyzer should skip entirely.
pub fn classify(rel_path: &str) -> Option<FileCtx> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
        return None;
    }
    let (crate_name, rest) = if parts.first() == Some(&"crates") {
        (parts.get(1)?.to_string(), &parts[2..])
    } else {
        ("autotune".to_string(), &parts[..])
    };
    let is_test_source = rest.first() == Some(&"tests");
    let is_lib_source = rest.first() == Some(&"src");
    Some(FileCtx {
        crate_name,
        is_test_source,
        is_lib_source,
    })
}

/// True when `rule` is in scope for the file. Test sources are excluded for
/// every rule; `#[cfg(test)]` regions inside live files are handled by the
/// rule engine's token mask, not here.
pub fn rule_applies(rule: RuleId, ctx: &FileCtx) -> bool {
    if ctx.is_test_source {
        return false;
    }
    let in_crates = |names: &[&str]| names.contains(&ctx.crate_name.as_str());
    match rule {
        RuleId::UnseededRng | RuleId::NanOrd => true,
        RuleId::WallClock => ctx.is_lib_source && in_crates(&["math", "sim", "tuners", "serve"]),
        RuleId::HashIter => ctx.is_lib_source && in_crates(&["core", "tuners", "bench", "serve"]),
        RuleId::Unwrap => {
            ctx.is_lib_source && in_crates(&["core", "math", "sim", "tuners", "serve"])
        }
        // The unsafe audit is workspace-wide: unsafe anywhere outside the
        // allowlist is a finding, and allowlisted unsafe still needs its
        // SAFETY justification and dispatch contract.
        RuleId::SafetyComment | RuleId::UnsafeScope | RuleId::SimdFallback => true,
        // Knob consumers live in the simulators, tuners, and bench harness.
        RuleId::KnobUnknown | RuleId::KnobDomain => {
            ctx.is_lib_source && in_crates(&["sim", "tuners", "bench"])
        }
        // Knob definitions live in the simulator params modules.
        RuleId::KnobUnused => ctx.is_lib_source && in_crates(&["sim"]),
        // The dataflow pass follows knob values through the simulator
        // engines, where accessor reads meet guards and arithmetic.
        RuleId::KnobNarrow | RuleId::KnobUnit | RuleId::KnobCross => {
            ctx.is_lib_source && in_crates(&["sim"])
        }
        // Generic concurrency rules: any library source that takes locks.
        RuleId::LockOrder | RuleId::BlockingLock | RuleId::CondvarLoop => ctx.is_lib_source,
        // Protocol-conformance rules are scoped to the serve crate, whose
        // durability protocol they encode.
        RuleId::AckDurable | RuleId::TicketDrop => {
            ctx.is_lib_source && ctx.crate_name == DEFAULT_PROTOCOL.protocol_crate
        }
        RuleId::BareAllow => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_paths() {
        let ctx = classify("crates/core/src/pareto.rs").expect("classified");
        assert_eq!(ctx.crate_name, "core");
        assert!(ctx.is_lib_source);
        assert!(!ctx.is_test_source);

        let ctx = classify("crates/bench/tests/determinism.rs").expect("classified");
        assert!(ctx.is_test_source);

        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("target/debug/build/foo.rs"), None);
    }

    #[test]
    fn classify_root_package() {
        let ctx = classify("src/lib.rs").expect("classified");
        assert_eq!(ctx.crate_name, "autotune");
        assert!(ctx.is_lib_source);
        let ctx = classify("examples/quickstart.rs").expect("classified");
        assert!(!ctx.is_lib_source);
        assert!(!ctx.is_test_source);
    }

    #[test]
    fn scopes_match_the_contract() {
        let core = classify("crates/core/src/session.rs").expect("classified");
        assert!(!rule_applies(RuleId::WallClock, &core));
        assert!(rule_applies(RuleId::HashIter, &core));
        assert!(rule_applies(RuleId::Unwrap, &core));

        let math = classify("crates/math/src/gp.rs").expect("classified");
        assert!(rule_applies(RuleId::WallClock, &math));
        assert!(!rule_applies(RuleId::HashIter, &math));
        assert!(rule_applies(RuleId::SafetyComment, &math));
        assert!(rule_applies(RuleId::SimdFallback, &math));

        let bench_bin = classify("crates/bench/src/bin/exec_speedup.rs").expect("classified");
        assert!(!rule_applies(RuleId::WallClock, &bench_bin));
        assert!(rule_applies(RuleId::NanOrd, &bench_bin));
        assert!(!rule_applies(RuleId::Unwrap, &bench_bin));
        assert!(rule_applies(RuleId::KnobUnknown, &bench_bin));

        let lint = classify("crates/lint/src/rules.rs").expect("classified");
        assert!(rule_applies(RuleId::UnseededRng, &lint));
        assert!(!rule_applies(RuleId::Unwrap, &lint));
        assert!(rule_applies(RuleId::UnsafeScope, &lint));
        assert!(!rule_applies(RuleId::KnobUnknown, &lint));

        let sim = classify("crates/sim/src/dbms/params.rs").expect("classified");
        assert!(rule_applies(RuleId::KnobUnused, &sim));
        assert!(rule_applies(RuleId::KnobDomain, &sim));

        let serve = classify("crates/serve/src/wal.rs").expect("classified");
        assert!(rule_applies(RuleId::WallClock, &serve));
        assert!(rule_applies(RuleId::HashIter, &serve));
        assert!(rule_applies(RuleId::Unwrap, &serve));
        assert!(!rule_applies(RuleId::KnobUnknown, &serve));
        let serve_tests = classify("crates/serve/tests/http_api.rs").expect("classified");
        assert!(!rule_applies(RuleId::WallClock, &serve_tests));

        // The approximate-GP surrogate and ANN index modules are library
        // sources of already-scoped crates: the full D-series contract
        // applies to them with no new configuration.
        let surrogate = classify("crates/math/src/surrogate.rs").expect("classified");
        assert!(rule_applies(RuleId::WallClock, &surrogate));
        assert!(rule_applies(RuleId::Unwrap, &surrogate));
        assert!(rule_applies(RuleId::NanOrd, &surrogate));
        let ann = classify("crates/serve/src/ann.rs").expect("classified");
        assert!(rule_applies(RuleId::WallClock, &ann));
        assert!(rule_applies(RuleId::HashIter, &ann));
        assert!(rule_applies(RuleId::Unwrap, &ann));
        assert!(rule_applies(RuleId::UnseededRng, &ann));

        // The drift detector and the signature summarizer carry the same
        // determinism contract as the recovery path they feed: detector
        // state and projection matrices must be pure functions of seeds,
        // so the full D-series (and for drift.rs the C-series lock rules)
        // is pinned to both modules.
        let drift = classify("crates/serve/src/drift.rs").expect("classified");
        assert!(rule_applies(RuleId::WallClock, &drift));
        assert!(rule_applies(RuleId::HashIter, &drift));
        assert!(rule_applies(RuleId::Unwrap, &drift));
        assert!(rule_applies(RuleId::UnseededRng, &drift));
        assert!(rule_applies(RuleId::NanOrd, &drift));
        assert!(rule_applies(RuleId::LockOrder, &drift));
        let sig = classify("crates/core/src/signature.rs").expect("classified");
        assert!(rule_applies(RuleId::UnseededRng, &sig));
        assert!(rule_applies(RuleId::HashIter, &sig));
        assert!(rule_applies(RuleId::Unwrap, &sig));
        assert!(rule_applies(RuleId::NanOrd, &sig));
    }

    #[test]
    fn c_series_scopes() {
        let serve = classify("crates/serve/src/server.rs").expect("classified");
        assert!(rule_applies(RuleId::LockOrder, &serve));
        assert!(rule_applies(RuleId::BlockingLock, &serve));
        assert!(rule_applies(RuleId::CondvarLoop, &serve));
        assert!(rule_applies(RuleId::AckDurable, &serve));
        assert!(rule_applies(RuleId::TicketDrop, &serve));

        // Generic concurrency rules run in every library crate; the
        // protocol rules stay inside serve.
        let core = classify("crates/core/src/executor.rs").expect("classified");
        assert!(rule_applies(RuleId::LockOrder, &core));
        assert!(rule_applies(RuleId::BlockingLock, &core));
        assert!(!rule_applies(RuleId::AckDurable, &core));
        assert!(!rule_applies(RuleId::TicketDrop, &core));

        let serve_tests = classify("crates/serve/tests/http_api.rs").expect("classified");
        assert!(!rule_applies(RuleId::LockOrder, &serve_tests));
        assert!(!rule_applies(RuleId::AckDurable, &serve_tests));
    }

    #[test]
    fn parse_accepts_id_and_name() {
        assert_eq!(RuleId::parse("D4"), Some(RuleId::NanOrd));
        assert_eq!(RuleId::parse("d4"), Some(RuleId::NanOrd));
        assert_eq!(RuleId::parse("nan-ord"), Some(RuleId::NanOrd));
        assert_eq!(RuleId::parse("unwrap"), Some(RuleId::Unwrap));
        assert_eq!(RuleId::parse("U1"), Some(RuleId::SafetyComment));
        assert_eq!(RuleId::parse("safety-comment"), Some(RuleId::SafetyComment));
        assert_eq!(RuleId::parse("K1"), Some(RuleId::KnobUnknown));
        assert_eq!(RuleId::parse("knob-unused"), Some(RuleId::KnobUnused));
        assert_eq!(RuleId::parse("C1"), Some(RuleId::LockOrder));
        assert_eq!(RuleId::parse("c4"), Some(RuleId::AckDurable));
        assert_eq!(RuleId::parse("unwaited-ticket"), Some(RuleId::TicketDrop));
        assert_eq!(RuleId::parse("nonsense"), None);
    }

    #[test]
    fn severities() {
        assert_eq!(RuleId::KnobUnused.severity(), Severity::Warning);
        assert_eq!(RuleId::KnobUnknown.severity(), Severity::Error);
        assert_eq!(RuleId::SafetyComment.severity(), Severity::Error);
        assert_eq!(Severity::Warning.label(), "warning");
    }
}
