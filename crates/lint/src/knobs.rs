//! The workspace knob table and the K-series rules.
//!
//! Every tuner family consumes `(knob → domain → measurement)` triples, so
//! a knob that is misnamed, re-ranged, or silently unused corrupts every
//! downstream table without failing a test. This module extracts the knob
//! definitions from the simulator params modules
//! (`crates/sim/src/*/params.rs`: `pub const NAME: &str = "..."` plus the
//! `ParamSpec::{int,int_log,float,float_log,boolean,categorical}` builder
//! calls) into a [`KnobTable`], then checks consumer crates against it:
//!
//! * **K1 `knob-unknown`** — a knob-name string at a consumer site
//!   (config accessors, knob helper fns, advisory struct fields, knob-name
//!   arrays) that does not resolve in the table.
//! * **K2 `knob-domain`** — builder bounds/defaults inconsistent at a
//!   definition site, or a literal `set(...)` value outside the declared
//!   domain (wrong range, wrong type, unknown categorical choice).
//! * **K3 `knob-unused`** (warn) — a table knob never referenced (by const
//!   or by name string) outside its defining params module.

use std::collections::BTreeMap;

use crate::config::RuleId;
use crate::lexer::{parse_num, Tok, Token};

/// The statically-resolvable part of a knob's domain.
#[derive(Debug, Clone, PartialEq)]
pub enum KnobDomain {
    /// Integer range (bounds kept as f64 for uniform comparisons).
    Int {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Float range.
    Float {
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// Boolean switch.
    Bool,
    /// Fixed string choices.
    Categorical {
        /// Allowed choices.
        choices: Vec<String>,
    },
    /// Builder arguments were not literal; only the name is known.
    Unknown,
}

/// One extracted knob definition.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobDef {
    /// Knob name (the string tuners use).
    pub name: String,
    /// The `const` identifier bound to the name, when one exists.
    pub const_ident: Option<String>,
    /// Defining file (workspace-relative).
    pub file: String,
    /// 1-based line of the definition (the const, falling back to the
    /// builder call).
    pub line: u32,
    /// Statically-known domain.
    pub domain: KnobDomain,
    /// Declared display unit (`.with_unit("MB")` chained on the builder).
    pub unit: Option<String>,
    /// Statically-known default, normalized to f64 (bool → 0/1,
    /// categorical → choice index).
    pub default: Option<f64>,
    /// True for `int_log` / `float_log` builders (log-scale encoding).
    pub log: bool,
}

impl KnobDef {
    /// The declared numeric range, when the domain carries one.
    pub fn range(&self) -> Option<(f64, f64)> {
        match &self.domain {
            KnobDomain::Int { min, max } | KnobDomain::Float { min, max } => Some((*min, *max)),
            KnobDomain::Bool => Some((0.0, 1.0)),
            KnobDomain::Categorical { choices } => Some((0.0, (choices.len() - 1) as f64)),
            KnobDomain::Unknown => None,
        }
    }
}

/// The workspace knob table: every knob the params modules declare.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KnobTable {
    /// Knob name → definition (ordered for deterministic reports).
    pub knobs: BTreeMap<String, KnobDef>,
    /// Const identifier → knob name (`SHARED_BUFFERS_MB` → ...).
    pub consts: BTreeMap<String, String>,
}

impl KnobTable {
    /// True when `name` is a declared knob.
    pub fn resolves(&self, name: &str) -> bool {
        self.knobs.contains_key(name)
    }
}

/// True for files whose knob/param definitions feed the table.
pub fn is_params_file(rel_path: &str) -> bool {
    rel_path.starts_with("crates/sim/") && rel_path.ends_with("/params.rs")
}

/// Builds the knob table from `(rel_path, tokens)` pairs of every scanned
/// file (only params files contribute).
pub fn extract_table<'a>(files: impl Iterator<Item = (&'a str, &'a [Token])>) -> KnobTable {
    let mut table = KnobTable::default();
    for (rel, tokens) in files {
        if !is_params_file(rel) {
            continue;
        }
        extract_consts(rel, tokens, &mut table);
        for call in builder_calls(tokens) {
            let Some(name) = resolve_name_arg(call.args.first(), &table) else {
                continue;
            };
            let domain = call.domain();
            let line = call.line;
            let default = call.default_value(&domain);
            table.knobs.insert(
                name.clone(),
                KnobDef {
                    name,
                    const_ident: call.name_const.clone(),
                    file: rel.to_string(),
                    line,
                    default,
                    unit: call.unit.clone(),
                    log: call.ctor.ends_with("_log"),
                    domain,
                },
            );
        }
    }
    table
}

/// Collects `pub const NAME: &str = "...";` bindings.
fn extract_consts(rel: &str, tokens: &[Token], table: &mut KnobTable) {
    let _ = rel;
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("const") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        let Some(const_ident) = name_tok.ident() else {
            continue;
        };
        // const NAME : & str = "literal"
        if tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('&'))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("str"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct('='))
        {
            if let Some(lit) = tokens.get(i + 6).and_then(Token::str_lit) {
                table
                    .consts
                    .insert(const_ident.to_string(), lit.to_string());
            }
        }
    }
}

/// A `ParamSpec::<ctor>(...)` call split into top-level argument token runs.
struct BuilderCall<'a> {
    ctor: &'a str,
    line: u32,
    args: Vec<Vec<&'a Token>>,
    /// Const ident used as the name argument, if any.
    name_const: Option<String>,
    /// Unit string from a chained `.with_unit("...")`, if any.
    unit: Option<String>,
}

impl BuilderCall<'_> {
    /// Parses the statically-known domain from the builder arguments.
    fn domain(&self) -> KnobDomain {
        match self.ctor {
            "int" | "int_log" | "float" | "float_log" => {
                let min = num_arg(self.args.get(1));
                let max = num_arg(self.args.get(2));
                match (min, max) {
                    (Some(min), Some(max)) if self.ctor.starts_with("int") => {
                        KnobDomain::Int { min, max }
                    }
                    (Some(min), Some(max)) => KnobDomain::Float { min, max },
                    _ => KnobDomain::Unknown,
                }
            }
            "boolean" => KnobDomain::Bool,
            "categorical" => {
                let choices: Vec<String> = self
                    .args
                    .get(1)
                    .map(|arg| {
                        arg.iter()
                            .filter_map(|t| t.str_lit().map(str::to_string))
                            .collect()
                    })
                    .unwrap_or_default();
                if choices.is_empty() {
                    KnobDomain::Unknown
                } else {
                    KnobDomain::Categorical { choices }
                }
            }
            _ => KnobDomain::Unknown,
        }
    }

    /// The default-value argument index for range builders.
    fn default_arg(&self) -> Option<f64> {
        match self.ctor {
            "int" | "int_log" | "float" | "float_log" => num_arg(self.args.get(3)),
            _ => None,
        }
    }

    /// The default, normalized to f64 across all builder kinds (bool →
    /// 0/1, categorical → index of the default choice).
    fn default_value(&self, domain: &KnobDomain) -> Option<f64> {
        match self.ctor {
            "int" | "int_log" | "float" | "float_log" => self.default_arg(),
            "boolean" => match self.args.get(1)?.first()?.ident()? {
                "true" => Some(1.0),
                "false" => Some(0.0),
                _ => None,
            },
            "categorical" => {
                let def = self.args.get(2)?.first()?.str_lit()?;
                match domain {
                    KnobDomain::Categorical { choices } => {
                        choices.iter().position(|c| c == def).map(|i| i as f64)
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Parses an argument token run as a (possibly negated) numeric literal.
fn num_arg(arg: Option<&Vec<&Token>>) -> Option<f64> {
    let arg = arg?;
    match arg.as_slice() {
        [t] => parse_num(t.num_lit()?),
        [neg, t] if neg.is_punct('-') => parse_num(t.num_lit()?).map(|v| -v),
        _ => None,
    }
}

/// Finds every `ParamSpec::<ctor>(...)` call and splits its arguments.
fn builder_calls(tokens: &[Token]) -> Vec<BuilderCall<'_>> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 < tokens.len() {
        if tokens[i].is_ident("ParamSpec")
            && tokens[i + 1].is_punct(':')
            && tokens[i + 2].is_punct(':')
            && tokens[i + 4].is_punct('(')
        {
            if let Some(ctor) = tokens[i + 3].ident() {
                let (args, end) = split_args(tokens, i + 4);
                let name_const = args
                    .first()
                    .and_then(|a| a.last())
                    .and_then(|t| t.ident())
                    .map(str::to_string);
                // Chained `.with_unit("MB")` directly after the builder's
                // closing paren.
                let unit = if tokens.get(end).is_some_and(|t| t.is_punct('.'))
                    && tokens.get(end + 1).is_some_and(|t| t.is_ident("with_unit"))
                    && tokens.get(end + 2).is_some_and(|t| t.is_punct('('))
                {
                    tokens
                        .get(end + 3)
                        .and_then(Token::str_lit)
                        .map(String::from)
                } else {
                    None
                };
                out.push(BuilderCall {
                    ctor,
                    line: tokens[i].line,
                    args,
                    name_const,
                    unit,
                });
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Splits the call starting at the `(` at `open` into top-level argument
/// token runs; returns the runs and the index past the closing `)`.
fn split_args(tokens: &[Token], open: usize) -> (Vec<Vec<&Token>>, usize) {
    let mut args: Vec<Vec<&Token>> = vec![Vec::new()];
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                depth += 1;
                if depth > 1 {
                    args.last_mut().expect("nonempty").push(&tokens[i]);
                }
            }
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    let trailing_empty = args.last().is_some_and(Vec::is_empty);
                    if trailing_empty && args.len() == 1 {
                        args.clear();
                    }
                    return (args, i + 1);
                }
                args.last_mut().expect("nonempty").push(&tokens[i]);
            }
            Tok::Punct(',') if depth == 1 => args.push(Vec::new()),
            _ => {
                if depth >= 1 {
                    args.last_mut().expect("nonempty").push(&tokens[i]);
                }
            }
        }
        i += 1;
    }
    (args, i)
}

/// Resolves a builder-call name argument (string literal or const ident)
/// to the knob name.
fn resolve_name_arg(arg: Option<&Vec<&Token>>, table: &KnobTable) -> Option<String> {
    let arg = arg?;
    // Name may be `"lit"`, `CONST`, or `knobs::CONST` — take the last atom.
    let last = arg.last()?;
    if let Some(lit) = last.str_lit() {
        return Some(lit.to_string());
    }
    let ident = last.ident()?;
    table.consts.get(ident).cloned()
}

/// Config accessor methods whose first string argument is a knob name.
const KNOB_ACCESSORS: &[&str] = &["set", "i64", "f64", "bool", "str", "spec"];

/// Free helper functions whose string arguments are knob names.
const KNOB_HELPER_FNS: &[&str] = &["has", "scale_knob", "set"];

/// Struct fields initialized with knob-name strings (tuning advisories).
const KNOB_FIELDS: &[&str] = &["knob", "of"];

/// K1 + K2 consumer-site checks over one file's token stream (`mask` marks
/// test-only tokens). Pushes `(rule, line)` pairs into `out`.
pub fn check_consumers(
    tokens: &[Token],
    mask: &[bool],
    table: &KnobTable,
    out: &mut Vec<(RuleId, u32)>,
) {
    let mut claimed: Vec<usize> = Vec::new(); // token indices already checked
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        // `.accessor("name", ...)` — also drives the K2 value check for set.
        if tokens[i].is_punct('.')
            && tokens
                .get(i + 1)
                .and_then(Token::ident)
                .is_some_and(|id| KNOB_ACCESSORS.contains(&id))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let (args, _) = split_args(tokens, i + 2);
            if let Some(name_arg) = args.first() {
                if let Some((idx, name)) = knob_name_atom(name_arg) {
                    claimed.push(idx);
                    if !table.resolves(&name) {
                        out.push((RuleId::KnobUnknown, tokens_line(name_arg)));
                    } else if tokens.get(i + 1).is_some_and(|t| t.is_ident("set")) {
                        if let Some(def) = table.knobs.get(&name) {
                            check_set_value(args.get(1), def, out);
                        }
                    }
                }
            }
            continue;
        }
        // Helper fn call: every top-level string argument is a knob name.
        if tokens[i]
            .ident()
            .is_some_and(|id| KNOB_HELPER_FNS.contains(&id))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct('.'))
        {
            let (args, _) = split_args(tokens, i + 1);
            for arg in &args {
                if let Some((idx, name)) = knob_name_atom(arg) {
                    claimed.push(idx);
                    if !table.resolves(&name) {
                        out.push((RuleId::KnobUnknown, tokens_line(arg)));
                    }
                }
            }
            continue;
        }
        // Advisory struct field: `knob: "name"` (single colon, not a path).
        if tokens[i]
            .ident()
            .is_some_and(|id| KNOB_FIELDS.contains(&id))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(lit) = tokens.get(i + 2).and_then(Token::str_lit) {
                claimed.push(i + 2);
                if !table.resolves(lit) {
                    out.push((RuleId::KnobUnknown, tokens[i + 2].line));
                }
            }
            continue;
        }
        // Knob-name array: `[...]` of string literals near a `knob` ident
        // (`for knob in ["a", "b"]`, `const TARGET_KNOBS: ... = ["a"]`).
        if tokens[i].is_punct('[') && near_knob_ident(tokens, i) {
            let (elems, _) = split_args(tokens, i);
            let all_strs = !elems.is_empty()
                && elems
                    .iter()
                    .all(|e| e.len() == 1 && e[0].str_lit().is_some());
            if all_strs {
                for e in &elems {
                    if let Some(lit) = e[0].str_lit() {
                        if !table.resolves(lit) {
                            out.push((RuleId::KnobUnknown, e[0].line));
                        }
                    }
                }
            }
            continue;
        }
    }
    let _ = claimed;
}

/// True when one of the few tokens before `idx` is an identifier whose
/// lowercase form contains "knob".
fn near_knob_ident(tokens: &[Token], idx: usize) -> bool {
    (1..=6).any(|back| {
        idx.checked_sub(back)
            .and_then(|j| tokens.get(j))
            .and_then(Token::ident)
            .is_some_and(|id| id.to_ascii_lowercase().contains("knob"))
    })
}

/// Extracts a checkable knob-name atom from an argument run: a string
/// literal, or a path whose final ident is a known-const shape (checked by
/// the caller against the table). Returns `(token_index_in_run, name)` —
/// only string literals are returned; const idents resolve by definition.
fn knob_name_atom(arg: &[&Token]) -> Option<(usize, String)> {
    match arg {
        [t] => t.str_lit().map(|s| (0, s.to_string())),
        // `"lit".into()` / `"lit".to_string()` style.
        [t, rest @ ..]
            if t.str_lit().is_some() && rest.first().is_some_and(|r| r.is_punct('.')) =>
        {
            t.str_lit().map(|s| (0, s.to_string()))
        }
        _ => None,
    }
}

/// The first token's line in an argument run (for finding locations).
fn tokens_line(arg: &[&Token]) -> u32 {
    arg.first().map(|t| t.line).unwrap_or(0)
}

/// K2 value check for `set(name, ParamValue::Variant(literal))` calls.
fn check_set_value(value_arg: Option<&Vec<&Token>>, def: &KnobDef, out: &mut Vec<(RuleId, u32)>) {
    let Some(arg) = value_arg else { return };
    // Find `Int|Float|Bool|Str ( literal )` inside the argument run.
    for w in 0..arg.len() {
        let Some(variant) = arg[w].ident() else {
            continue;
        };
        if !matches!(variant, "Int" | "Float" | "Bool" | "Str") {
            continue;
        }
        if !arg.get(w + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let line = arg[w].line;
        let inner = &arg[w + 2..];
        let ok = match (variant, &def.domain) {
            ("Int", KnobDomain::Int { min, max }) | ("Float", KnobDomain::Float { min, max }) => {
                match literal_value(inner) {
                    Some(v) => v >= *min && v <= *max,
                    None => return, // computed value: not statically checkable
                }
            }
            ("Str", KnobDomain::Categorical { choices }) => {
                match inner.first().and_then(|t| t.str_lit()) {
                    Some(s) => choices.iter().any(|c| c == s),
                    None => return,
                }
            }
            ("Bool", KnobDomain::Bool) => true,
            // Literal of one type against a domain of another: only flag
            // when the value is actually a literal (computed expressions
            // may produce the right type via casts).
            (_, KnobDomain::Unknown) => true,
            ("Int", _) | ("Float", _) => literal_value(inner).is_none(),
            ("Str", _) => inner.first().and_then(|t| t.str_lit()).is_none(),
            ("Bool", _) => !matches!(
                inner.first().and_then(|t| t.ident()),
                Some("true") | Some("false")
            ),
            _ => true,
        };
        if !ok {
            out.push((RuleId::KnobDomain, line));
        }
        return;
    }
}

/// Parses `lit )` or `- lit )` at the head of a token run.
fn literal_value(inner: &[&Token]) -> Option<f64> {
    match inner {
        [t, close, ..] if close.is_punct(')') => parse_num(t.num_lit()?),
        [neg, t, close, ..] if neg.is_punct('-') && close.is_punct(')') => {
            parse_num(t.num_lit()?).map(|v| -v)
        }
        _ => None,
    }
}

/// K2 definition-site checks: every `ParamSpec` builder call with literal
/// bounds must satisfy `min <= default <= max`.
pub fn check_definitions(tokens: &[Token], mask: &[bool], out: &mut Vec<(RuleId, u32)>) {
    // Map token index ranges to the mask via the call's first token.
    let mut idx = 0usize;
    for call in builder_calls(tokens) {
        // Locate the call's opening token index to consult the mask.
        while idx < tokens.len()
            && !(tokens[idx].line == call.line && tokens[idx].is_ident("ParamSpec"))
        {
            idx += 1;
        }
        if idx < tokens.len() && mask[idx] {
            continue;
        }
        let (min, max) = match call.domain() {
            KnobDomain::Int { min, max } | KnobDomain::Float { min, max } => (min, max),
            _ => continue,
        };
        let Some(default) = call.default_arg() else {
            continue;
        };
        if min > max || default < min || default > max {
            out.push((RuleId::KnobDomain, call.line));
        }
    }
}

/// K3: table knobs never referenced (by const ident or name string) in any
/// file other than their defining params module. Returns
/// `(defining_file, rule, line, knob_name)` tuples — the def-site span so
/// the finding can point at the exact `ParamSpec` builder to delete.
pub fn unused_knobs<'a>(
    table: &KnobTable,
    files: impl Iterator<Item = (&'a str, &'a [Token])> + Clone,
) -> Vec<(String, RuleId, u32, String)> {
    let mut out = Vec::new();
    for def in table.knobs.values() {
        let referenced = files.clone().any(|(rel, tokens)| {
            if rel == def.file {
                return false;
            }
            tokens.iter().any(|t| {
                t.str_lit() == Some(def.name.as_str())
                    || (def.const_ident.is_some() && t.ident() == def.const_ident.as_deref())
            })
        });
        if !referenced {
            out.push((
                def.file.clone(),
                RuleId::KnobUnused,
                def.line,
                def.name.clone(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const PARAMS: &str = r#"
pub mod knobs {
    pub const BUFFER_MB: &str = "buffer_pool_mb";
    pub const CODEC: &str = "codec";
}
pub fn space() -> ConfigSpace {
    use knobs::*;
    ConfigSpace::new(vec![
        ParamSpec::int_log(BUFFER_MB, 64, 65536, 128, "buffer pool"),
        ParamSpec::float("fraction", 0.1, 0.9, 0.5, "share"),
        ParamSpec::categorical(CODEC, &["zlib", "lz4"], "zlib", "codec"),
        ParamSpec::boolean("compress", false, "switch"),
    ])
}
"#;

    fn table_for(src: &str) -> KnobTable {
        let lexed = lex(src);
        extract_table([("crates/sim/src/dbms/params.rs", lexed.tokens.as_slice())].into_iter())
    }

    #[test]
    fn extracts_consts_and_builders() {
        let table = table_for(PARAMS);
        assert_eq!(
            table.consts.get("BUFFER_MB").map(String::as_str),
            Some("buffer_pool_mb")
        );
        assert!(table.resolves("buffer_pool_mb"));
        assert!(table.resolves("fraction"));
        assert!(table.resolves("codec"));
        assert!(table.resolves("compress"));
        assert!(!table.resolves("nonsense"));
        match &table.knobs["buffer_pool_mb"].domain {
            KnobDomain::Int { min, max } => {
                assert_eq!(*min, 64.0);
                assert_eq!(*max, 65536.0);
            }
            other => panic!("unexpected domain {other:?}"),
        }
        match &table.knobs["codec"].domain {
            KnobDomain::Categorical { choices } => assert_eq!(choices, &["zlib", "lz4"]),
            other => panic!("unexpected domain {other:?}"),
        }
    }

    #[test]
    fn non_params_files_do_not_feed_the_table() {
        let lexed = lex(PARAMS);
        let table =
            extract_table([("crates/tuners/src/x.rs", lexed.tokens.as_slice())].into_iter());
        assert!(table.knobs.is_empty());
    }

    fn consumer_findings(table: &KnobTable, src: &str) -> Vec<(RuleId, u32)> {
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        check_consumers(&lexed.tokens, &mask, table, &mut out);
        out
    }

    #[test]
    fn k1_flags_unresolved_accessor_names() {
        let table = table_for(PARAMS);
        let src = r#"
fn f(c: &Configuration) {
    let a = c.i64("buffer_pool_mb");
    let b = c.i64("buffer_pool_mbb");
    let d = c.f64("fraction");
}
"#;
        let got = consumer_findings(&table, src);
        assert_eq!(got, vec![(RuleId::KnobUnknown, 4)]);
    }

    #[test]
    fn k1_checks_helper_fns_fields_and_arrays() {
        let table = table_for(PARAMS);
        let src = r#"
fn f() {
    if has("buffer_pool_mb") && has("missing_one") {}
    let adv = Advice { knob: "fraction".into(), delta: 1.0 };
    let bad = Advice { knob: "fracton".into(), delta: 1.0 };
    for knob in ["codec", "compess"] { touch(knob); }
}
"#;
        let got = consumer_findings(&table, src);
        assert_eq!(
            got,
            vec![
                (RuleId::KnobUnknown, 3),
                (RuleId::KnobUnknown, 5),
                (RuleId::KnobUnknown, 6),
            ]
        );
    }

    #[test]
    fn k2_flags_out_of_domain_set_values() {
        let table = table_for(PARAMS);
        let src = r#"
fn f(c: &mut Configuration) {
    c.set("buffer_pool_mb", ParamValue::Int(128));
    c.set("buffer_pool_mb", ParamValue::Int(1));
    c.set("fraction", ParamValue::Float(0.5));
    c.set("fraction", ParamValue::Float(2.5));
    c.set("codec", ParamValue::Str("lz4".into()));
    c.set("codec", ParamValue::Str("zstd".into()));
    c.set("buffer_pool_mb", ParamValue::Int(computed));
}
"#;
        let got = consumer_findings(&table, src);
        assert_eq!(
            got,
            vec![
                (RuleId::KnobDomain, 4),
                (RuleId::KnobDomain, 6),
                (RuleId::KnobDomain, 8),
            ]
        );
    }

    #[test]
    fn k2_definition_site_checks() {
        let src = r#"
fn space() {
    let a = ParamSpec::int("ok", 1, 10, 5, "fine");
    let b = ParamSpec::int("bad_default", 1, 10, 42, "default outside");
    let c = ParamSpec::float("inverted", 5.0, 1.0, 2.0, "min > max");
}
"#;
        let lexed = lex(src);
        let mask = vec![false; lexed.tokens.len()];
        let mut out = Vec::new();
        check_definitions(&lexed.tokens, &mask, &mut out);
        assert_eq!(out, vec![(RuleId::KnobDomain, 4), (RuleId::KnobDomain, 5)]);
    }

    #[test]
    fn k3_reports_unreferenced_knobs() {
        let params = lex(PARAMS);
        let consumer = lex(r#"fn f(c: &C) { c.i64("buffer_pool_mb"); let x = CODEC; }"#);
        let files = [
            ("crates/sim/src/dbms/params.rs", params.tokens.as_slice()),
            ("crates/tuners/src/x.rs", consumer.tokens.as_slice()),
        ];
        let table = extract_table(files.iter().map(|&(r, t)| (r, t)));
        let unused = unused_knobs(&table, files.iter().map(|&(r, t)| (r, t)));
        // buffer_pool_mb referenced by string, codec via its const ident;
        // fraction and compress are unused.
        let names: Vec<&str> = unused.iter().map(|(_, _, _, n)| n.as_str()).collect();
        assert_eq!(unused.len(), 2, "unused: {unused:?}");
        assert!(unused
            .iter()
            .all(|(f, r, _, _)| f == "crates/sim/src/dbms/params.rs" && *r == RuleId::KnobUnused));
        assert_eq!(names, vec!["compress", "fraction"]);
    }

    #[test]
    fn extracts_units_defaults_and_log_scale() {
        let src = r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::int_log("sort_mb", 32, 2048, 256, "sort buffer").with_unit("MB"),
        ParamSpec::float("slowstart", 0.05, 1.0, 0.8, "fraction"),
        ParamSpec::int("wait_ms", 0, 10000, 3000, "wait").with_unit("ms"),
        ParamSpec::boolean("compress", true, "switch"),
        ParamSpec::categorical("codec", &["zlib", "lz4"], "lz4", "codec"),
    ]
}
"#;
        let table = table_for(src);
        let sort = &table.knobs["sort_mb"];
        assert_eq!(sort.unit.as_deref(), Some("MB"));
        assert_eq!(sort.default, Some(256.0));
        assert!(sort.log);
        assert_eq!(sort.range(), Some((32.0, 2048.0)));
        let slow = &table.knobs["slowstart"];
        assert_eq!(slow.unit, None);
        assert!(!slow.log);
        assert_eq!(slow.default, Some(0.8));
        assert_eq!(table.knobs["wait_ms"].unit.as_deref(), Some("ms"));
        assert_eq!(table.knobs["compress"].default, Some(1.0));
        assert_eq!(table.knobs["compress"].range(), Some((0.0, 1.0)));
        assert_eq!(table.knobs["codec"].default, Some(1.0));
        assert_eq!(table.knobs["codec"].range(), Some((0.0, 1.0)));
    }
}
