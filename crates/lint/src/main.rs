//! CLI for the workspace determinism & semantic analyzer.
//!
//! ```text
//! autotune-lint [--format human|json|sarif] [--json] [--rules LIST] [PATH]
//! ```
//!
//! Scans the workspace rooted at `PATH` (default: the enclosing workspace of
//! the current directory), prints the report in the chosen format (`--json`
//! is shorthand for `--format json`), and exits nonzero if any
//! error-severity finding survives suppression — warnings (`K3`) are
//! reported but do not fail the run.
//!
//! `--rules` restricts the report to a comma-separated list of rule ids or
//! names (`--rules C1,C4` or `--rules lock-order,ack-before-durable`). The
//! whole scan still runs (cross-file rules need the full pass); only the
//! report and the exit code are filtered.
//!
//! `--emit-constraints PATH` skips the report entirely: it compiles the
//! K4–K6 dataflow facts and the rule-DSL knowledge into the knob-constraint
//! artifact (see `constraints` module) and writes it to `PATH`.

use std::path::PathBuf;
use std::process::ExitCode;

use autotune_lint::config::RuleId;
use autotune_lint::Report;

/// Output format for the report.
enum Format {
    Human,
    Json,
    Sarif,
}

/// Parses a `--rules` value into rule ids; `Err` carries the bad token.
fn parse_rules(value: &str) -> Result<Vec<RuleId>, String> {
    let mut out = Vec::new();
    for token in value.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        match RuleId::parse(token) {
            Some(rule) => out.push(rule),
            None => return Err(token.to_string()),
        }
    }
    if out.is_empty() {
        return Err(value.to_string());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut rules: Option<Vec<RuleId>> = None;
    let mut emit_constraints: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--emit-constraints" => {
                let Some(value) = args.next() else {
                    eprintln!("autotune-lint: --emit-constraints requires an output path");
                    return ExitCode::from(2);
                };
                emit_constraints = Some(PathBuf::from(value));
            }
            "--format" => {
                let Some(value) = args.next() else {
                    eprintln!("autotune-lint: --format requires a value (human|json|sarif)");
                    return ExitCode::from(2);
                };
                format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        eprintln!("autotune-lint: unknown format `{other}` (human|json|sarif)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--rules" => {
                let Some(value) = args.next() else {
                    eprintln!(
                        "autotune-lint: --rules requires a comma-separated list (e.g. C1,C4)"
                    );
                    return ExitCode::from(2);
                };
                match parse_rules(&value) {
                    Ok(list) => rules = Some(list),
                    Err(bad) => {
                        eprintln!("autotune-lint: unknown rule `{bad}` in --rules");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: autotune-lint [--format human|json|sarif] [--json] [--rules LIST] [PATH]"
                );
                println!("Scans workspace Rust sources for determinism, unsafe-audit,");
                println!("knob-registry, and concurrency/durability findings.");
                println!("--rules LIST  report only these rules (ids or names, comma-separated)");
                println!(
                    "--emit-constraints PATH  write the knob-constraint artifact instead of a report"
                );
                println!(
                    "Exits 0 when no errors (warnings allowed), 1 on errors, 2 on I/O errors."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("autotune-lint: unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        autotune_lint::find_workspace_root(&cwd)
    });

    if let Some(out) = emit_constraints {
        return match autotune_lint::constraints::compile_workspace(&root) {
            Ok(artifact) => {
                let mut text = match artifact.to_json() {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("autotune-lint: {e}");
                        return ExitCode::from(2);
                    }
                };
                text.push('\n');
                if let Err(e) = std::fs::write(&out, text) {
                    eprintln!("autotune-lint: failed to write {}: {e}", out.display());
                    return ExitCode::from(2);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("autotune-lint: failed to scan {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    match autotune_lint::scan_workspace(&root) {
        Ok(report) => {
            let report = match rules {
                Some(list) => {
                    let keep: Vec<&str> = list.iter().map(|r| r.id()).collect();
                    let files_scanned = report.files_scanned;
                    let findings = report
                        .findings
                        .into_iter()
                        .filter(|f| keep.contains(&f.rule.as_str()))
                        .collect();
                    Report::new(findings, files_scanned)
                }
                None => report,
            };
            match format {
                Format::Human => print!("{}", report.human()),
                Format::Json => println!("{}", report.json()),
                Format::Sarif => println!("{}", report.sarif()),
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("autotune-lint: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
