//! CLI for the workspace determinism & semantic analyzer.
//!
//! ```text
//! autotune-lint [--format human|json|sarif] [--json] [PATH]
//! ```
//!
//! Scans the workspace rooted at `PATH` (default: the enclosing workspace of
//! the current directory), prints the report in the chosen format (`--json`
//! is shorthand for `--format json`), and exits nonzero if any
//! error-severity finding survives suppression — warnings (`K3`) are
//! reported but do not fail the run.

use std::path::PathBuf;
use std::process::ExitCode;

/// Output format for the report.
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Human;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                let Some(value) = args.next() else {
                    eprintln!("autotune-lint: --format requires a value (human|json|sarif)");
                    return ExitCode::from(2);
                };
                format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        eprintln!("autotune-lint: unknown format `{other}` (human|json|sarif)");
                        return ExitCode::from(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("usage: autotune-lint [--format human|json|sarif] [--json] [PATH]");
                println!("Scans workspace Rust sources for determinism, unsafe-audit,");
                println!("and knob-registry findings.");
                println!(
                    "Exits 0 when no errors (warnings allowed), 1 on errors, 2 on I/O errors."
                );
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("autotune-lint: unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        autotune_lint::find_workspace_root(&cwd)
    });

    match autotune_lint::scan_workspace(&root) {
        Ok(report) => {
            match format {
                Format::Human => print!("{}", report.human()),
                Format::Json => println!("{}", report.json()),
                Format::Sarif => println!("{}", report.sarif()),
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("autotune-lint: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
