//! CLI for the workspace determinism & numerical-robustness analyzer.
//!
//! ```text
//! autotune-lint [--json] [PATH]
//! ```
//!
//! Scans the workspace rooted at `PATH` (default: the enclosing workspace of
//! the current directory), prints a human report — or machine-readable JSON
//! with `--json` — and exits nonzero if any finding survives suppression.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: autotune-lint [--json] [PATH]");
                println!("Scans workspace Rust sources for determinism & robustness findings.");
                println!("Exits 0 when clean, 1 on findings, 2 on I/O errors.");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("autotune-lint: unrecognized argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        autotune_lint::find_workspace_root(&cwd)
    });

    match autotune_lint::scan_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.json());
            } else {
                print!("{}", report.human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("autotune-lint: failed to scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
