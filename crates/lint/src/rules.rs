//! The rule engine: `#[cfg(test)]` region masking, the token-stream
//! matchers for rules D1–D5, and the item-tree matchers for the unsafe
//! audit (U1–U3). K-series knob checks live in [`crate::knobs`] and the
//! statement-level C-series concurrency checks in [`crate::concurrency`];
//! both are wired in here. The C1 lock-order graph is per-crate, so the
//! workspace scan accumulates edges across files and runs cycle
//! detection globally (single-file scans run it over their own edges).

use crate::callgraph::CrateIndex;
use crate::concurrency;
use crate::config::{
    classify, rule_applies, FileCtx, RuleId, ALLOWED_UNSAFE_FILES, DEFAULT_PROTOCOL,
};
use crate::items::{ItemKind, ItemTree};
use crate::knobs::{self, KnobTable};
use crate::lexer::{lex, Lexed, LineComment, Token};
use crate::parser;
use crate::report::Finding;
use crate::suppress;

/// Everything derived from one file before rules run: the lexed stream,
/// the test mask, the item tree, and parsed suppression directives. The
/// two-pass workspace scan prepares every file once, extracts the knob
/// table from the prepared streams, then scans each file against it.
pub struct Prepared {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate/test classification.
    pub ctx: FileCtx,
    /// Token stream + line comments.
    pub lexed: Lexed,
    /// Per-token test-only mask (parallel to `lexed.tokens`).
    pub mask: Vec<bool>,
    /// Scoped item tree.
    pub tree: ItemTree,
    /// Source lines, for finding snippets.
    pub src_lines: Vec<String>,
    /// Parsed `lint:allow` directives.
    pub directives: Vec<suppress::Directive>,
}

/// Lexes, masks, parses, and classifies one file. Returns `None` for files
/// the analyzer skips entirely (vendored / build output).
pub fn prepare(rel_path: &str, src: &str) -> Option<Prepared> {
    let ctx = classify(rel_path)?;
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let tree = parser::parse(&lexed.tokens);
    let directives = suppress::parse_directives(&lexed.comments);
    Some(Prepared {
        rel: rel_path.to_string(),
        ctx,
        mask,
        tree,
        src_lines: src.lines().map(str::to_string).collect(),
        directives,
        lexed,
    })
}

/// Like [`finding_at`], but with a caller-supplied message (used where a
/// rule's static message is enriched with the specific knob involved).
pub fn finding_with_message(p: &Prepared, rule: RuleId, line: u32, message: String) -> Finding {
    let mut f = finding_at(p, rule, line);
    f.message = message;
    f
}

/// Builds the finding for `rule` at `line` in the prepared file.
pub fn finding_at(p: &Prepared, rule: RuleId, line: u32) -> Finding {
    Finding {
        rule: rule.id().to_string(),
        name: rule.name().to_string(),
        severity: rule.severity().label().to_string(),
        file: p.rel.clone(),
        line,
        snippet: p
            .src_lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
        message: rule.message().to_string(),
    }
}

/// Runs every in-scope rule over a prepared file, returning
/// suppressed-and-unsorted findings. K1/K2 consumer checks need the
/// workspace `table`; with `None` they are skipped (K2 definition-site
/// checks are local and always run).
pub fn scan_prepared(p: &Prepared, table: Option<&KnobTable>) -> Vec<Finding> {
    let mut index = CrateIndex::default();
    index.add_file(&p.tree, &p.lexed.tokens, &p.mask, &DEFAULT_PROTOCOL);
    let (mut findings, edges) = scan_prepared_indexed(p, table, &index);
    // Single-file C1 pass: cycle-detect over this file's own edges. The
    // edges were produced after per-file suppression ran, so directives
    // are honored manually (same pattern as the global K3 pass).
    let tagged: Vec<(String, concurrency::Edge)> =
        edges.into_iter().map(|e| (p.rel.clone(), e)).collect();
    for (_, line) in concurrency::cycle_findings(&tagged) {
        if p.directives
            .iter()
            .any(|d| d.covers(RuleId::LockOrder.id(), line))
        {
            continue;
        }
        findings.push(finding_at(p, RuleId::LockOrder, line));
    }
    findings
}

/// Like [`scan_prepared`], but against a caller-supplied per-crate call
/// graph index; returns the per-file findings plus this file's raw C1
/// lock-order edges for crate-wide cycle detection by the caller.
pub fn scan_prepared_indexed(
    p: &Prepared,
    table: Option<&KnobTable>,
    index: &CrateIndex,
) -> (Vec<Finding>, Vec<concurrency::Edge>) {
    if p.ctx.is_test_source {
        return (Vec::new(), Vec::new());
    }
    let mut raw: Vec<(RuleId, u32)> = Vec::new();
    let claimed = match_nan_ord(&p.lexed.tokens, &p.mask, &mut raw, &p.ctx);
    match_unseeded_rng(&p.lexed.tokens, &p.mask, &mut raw, &p.ctx);
    match_wall_clock(&p.lexed.tokens, &p.mask, &mut raw, &p.ctx);
    match_hash_iter(&p.lexed.tokens, &p.mask, &mut raw, &p.ctx);
    match_unwrap(&p.lexed.tokens, &p.mask, &mut raw, &p.ctx, &claimed);

    if rule_applies(RuleId::SafetyComment, &p.ctx) {
        match_safety_comment(p, &mut raw);
    }
    if rule_applies(RuleId::UnsafeScope, &p.ctx) {
        match_unsafe_scope(p, &mut raw);
    }
    if rule_applies(RuleId::SimdFallback, &p.ctx) {
        match_simd_fallback(p, &mut raw);
    }
    if rule_applies(RuleId::KnobDomain, &p.ctx) {
        knobs::check_definitions(&p.lexed.tokens, &p.mask, &mut raw);
    }
    if let Some(table) = table {
        if rule_applies(RuleId::KnobUnknown, &p.ctx) {
            knobs::check_consumers(&p.lexed.tokens, &p.mask, table, &mut raw);
        }
        // K4–K6 share one scope; the interval/unit propagation only runs
        // where its findings could land.
        if rule_applies(RuleId::KnobNarrow, &p.ctx) {
            let analysis = crate::dataflow::analyze_file(p, table, index);
            raw.extend(
                analysis
                    .findings
                    .into_iter()
                    .filter(|(rule, _)| rule_applies(*rule, &p.ctx)),
            );
        }
    }

    let analysis = concurrency::analyze_file(p, &DEFAULT_PROTOCOL, index);
    raw.extend(analysis.findings);

    let findings = raw
        .into_iter()
        .map(|(rule, line)| finding_at(p, rule, line))
        .collect();
    (
        suppress::apply(findings, &p.directives, &p.rel),
        analysis.edges,
    )
}

/// Scans one file's source in isolation (no knob table), returning
/// suppressed findings. The workspace scan uses [`prepare`] +
/// [`scan_prepared`] directly so the knob table is shared.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    match prepare(rel_path, src) {
        Some(p) => scan_prepared(&p, None),
        None => Vec::new(),
    }
}

/// The two-pass workspace scan over `(rel_path, source)` pairs: prepare
/// every file, extract the knob table from the params modules and the
/// per-crate call-graph indexes, scan each file against them, then run
/// the global K3 unused-knob and C1 lock-order-cycle passes.
pub fn scan_sources(files: &[(String, String)]) -> crate::report::Report {
    let prepared: Vec<Prepared> = files
        .iter()
        .filter_map(|(rel, src)| prepare(rel, src))
        .collect();
    let streams = || {
        prepared
            .iter()
            .map(|p| (p.rel.as_str(), p.lexed.tokens.as_slice()))
    };
    let table = knobs::extract_table(streams());

    let mut crate_indexes: std::collections::BTreeMap<String, CrateIndex> =
        std::collections::BTreeMap::new();
    for p in &prepared {
        if p.ctx.is_lib_source && !p.ctx.is_test_source {
            crate_indexes
                .entry(p.ctx.crate_name.clone())
                .or_default()
                .add_file(&p.tree, &p.lexed.tokens, &p.mask, &DEFAULT_PROTOCOL);
        }
    }
    let empty_index = CrateIndex::default();

    let mut findings = Vec::new();
    let mut crate_edges: std::collections::BTreeMap<String, Vec<(String, concurrency::Edge)>> =
        std::collections::BTreeMap::new();
    for p in &prepared {
        let index = crate_indexes.get(&p.ctx.crate_name).unwrap_or(&empty_index);
        let (file_findings, edges) = scan_prepared_indexed(p, Some(&table), index);
        findings.extend(file_findings);
        if !edges.is_empty() {
            crate_edges
                .entry(p.ctx.crate_name.clone())
                .or_default()
                .extend(edges.into_iter().map(|e| (p.rel.clone(), e)));
        }
    }
    // Global C1 pass: cycles in each crate's accumulated lock graph.
    // Like K3 below, these findings are created after per-file
    // suppression ran, so directives are honored manually.
    for edges in crate_edges.values() {
        for (file, line) in concurrency::cycle_findings(edges) {
            let Some(p) = prepared.iter().find(|p| p.rel == file) else {
                continue;
            };
            if p.directives
                .iter()
                .any(|d| d.covers(RuleId::LockOrder.id(), line))
            {
                continue;
            }
            findings.push(finding_at(p, RuleId::LockOrder, line));
        }
    }
    for (file, rule, line, knob) in knobs::unused_knobs(&table, streams()) {
        let Some(p) = prepared.iter().find(|p| p.rel == file) else {
            continue;
        };
        if !rule_applies(rule, &p.ctx) {
            continue;
        }
        // K3 findings are produced globally, after per-file suppression ran;
        // honor directives here without re-running the whole pass (which
        // would duplicate A0 reports).
        if p.directives.iter().any(|d| d.covers(rule.id(), line)) {
            continue;
        }
        // The finding points at the knob's ParamSpec def site, so name it.
        let message = format!(
            "knob `{knob}` (defined here) is never referenced by any tuner, engine, or scenario; wire it up or drop it"
        );
        findings.push(finding_with_message(p, rule, line, message));
    }
    crate::report::Report::new(findings, files.len())
}

/// True when the item starting at token `span_start` is inside masked
/// (test-only) code.
fn span_masked(p: &Prepared, span_start: usize) -> bool {
    p.mask.get(span_start).copied().unwrap_or(false)
}

/// U1: every `unsafe` block / `unsafe fn` (or impl/trait) must carry a
/// `// SAFETY:` line comment — in the contiguous comment run directly above
/// the item (above its attributes, for attributed items), or trailing on
/// the `unsafe` line itself.
fn match_safety_comment(p: &Prepared, out: &mut Vec<(RuleId, u32)>) {
    let unsafe_nodes = p.tree.collect(|i| i.is_unsafe);
    for item in unsafe_nodes {
        if span_masked(p, item.span.0) || item.is_test_only() {
            continue;
        }
        let anchor = if item.kind == ItemKind::UnsafeBlock {
            item.unsafe_line
        } else {
            item.attrs
                .iter()
                .map(|a| a.line)
                .min()
                .map_or(item.line, |al| al.min(item.line))
        };
        if !has_safety_comment(&p.lexed.comments, anchor, item.unsafe_line) {
            out.push((RuleId::SafetyComment, item.unsafe_line));
        }
    }
}

/// True when a `SAFETY:` comment covers an unsafe construct anchored at
/// `anchor` (its first attribute/keyword line): either somewhere in the
/// contiguous run of line comments ending at `anchor - 1`, or trailing on
/// the `unsafe` keyword's own line.
fn has_safety_comment(comments: &[LineComment], anchor: u32, unsafe_line: u32) -> bool {
    if comments
        .iter()
        .any(|c| c.line == unsafe_line && c.text.contains("SAFETY:"))
    {
        return true;
    }
    let mut line = anchor.saturating_sub(1);
    while line > 0 {
        let Some(c) = comments.iter().find(|c| c.line == line) else {
            return false;
        };
        if c.text.contains("SAFETY:") {
            return true;
        }
        line -= 1;
    }
    false
}

/// U2: `unsafe` only in the allowlisted files; anywhere else is reported.
fn match_unsafe_scope(p: &Prepared, out: &mut Vec<(RuleId, u32)>) {
    if ALLOWED_UNSAFE_FILES.contains(&p.rel.as_str()) {
        return;
    }
    for item in p.tree.collect(|i| i.is_unsafe) {
        if span_masked(p, item.span.0) || item.is_test_only() {
            continue;
        }
        out.push((RuleId::UnsafeScope, item.unsafe_line));
    }
}

/// Identifiers that prove a call site is feature-gated.
const FEATURE_GUARDS: &[&str] = &["has_avx2", "is_x86_feature_detected"];

/// U3: every AVX2 kernel (`#[target_feature(enable = "avx2")]` fn) must be
/// dispatched behind a runtime feature guard with a reachable scalar
/// fallback in the same dispatching function; a kernel nothing in the file
/// references at all is reported at its definition.
fn match_simd_fallback(p: &Prepared, out: &mut Vec<(RuleId, u32)>) {
    let kernels: Vec<_> = p
        .tree
        .collect(|i| i.kind == ItemKind::Fn && i.is_avx2_kernel())
        .into_iter()
        .filter(|i| !span_masked(p, i.span.0))
        .collect();
    if kernels.is_empty() {
        return;
    }
    let tokens = &p.lexed.tokens;

    // Dispatch-contract check: call sites inside non-kernel functions.
    let fns = p
        .tree
        .collect(|i| i.kind == ItemKind::Fn && !i.is_avx2_kernel());
    for f in &fns {
        if span_masked(p, f.span.0) {
            continue;
        }
        for idx in f.span.0..f.span.1.min(tokens.len()) {
            let is_call = tokens[idx]
                .ident()
                .is_some_and(|id| kernels.iter().any(|k| k.name == id))
                && tokens.get(idx + 1).is_some_and(|t| t.is_punct('('));
            if !is_call || p.mask.get(idx).copied().unwrap_or(false) {
                continue;
            }
            // Skip call sites that belong to a *nested* kernel's span.
            if kernels.iter().any(|k| idx >= k.span.0 && idx < k.span.1) {
                continue;
            }
            let guarded = tokens[f.span.0..idx]
                .iter()
                .any(|t| t.ident().is_some_and(|id| FEATURE_GUARDS.contains(&id)));
            let fallback = has_scalar_fallback(tokens, idx + 1, f.span.1.min(tokens.len()));
            if !guarded || !fallback {
                out.push((RuleId::SimdFallback, tokens[idx].line));
            }
        }
    }

    // Reachability check: a kernel referenced nowhere outside its own body
    // has no dispatcher at all.
    for k in &kernels {
        let referenced = tokens.iter().enumerate().any(|(idx, t)| {
            (idx < k.span.0 || idx >= k.span.1)
                && t.ident() == Some(k.name.as_str())
                && tokens.get(idx + 1).is_some_and(|n| n.is_punct('('))
                && !p.mask.get(idx).copied().unwrap_or(false)
        });
        if !referenced {
            out.push((RuleId::SimdFallback, k.line));
        }
    }
}

/// True when tokens after an AVX2 call site (up to the end of the
/// dispatching fn) contain a scalar fallback: a loop, or a call to a
/// `*_generic` / `*_scalar` function.
fn has_scalar_fallback(tokens: &[Token], from: usize, to: usize) -> bool {
    (from..to).any(|j| {
        let Some(id) = tokens[j].ident() else {
            return false;
        };
        id == "for"
            || id == "while"
            || ((id.ends_with("_generic") || id.ends_with("_scalar"))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('(')))
    })
}

/// Marks token spans that belong to test-only items: anything annotated
/// `#[test]` (or `#[foo::test]`-style) or `#[cfg(test)]` / `#[cfg(all(test,
/// ...))]`. `#[cfg(not(test))]` is live production code and stays unmasked.
/// An inner `#![cfg(test)]` masks the rest of the file.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            let (end, is_test) = read_attr(tokens, i + 3);
            if is_test {
                for m in mask.iter_mut().skip(i) {
                    *m = true;
                }
                return mask;
            }
            i = end;
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let (mut end, mut is_test) = read_attr(tokens, i + 2);
        // Collect any further attributes on the same item.
        while tokens.get(end).is_some_and(|t| t.is_punct('#'))
            && tokens.get(end + 1).is_some_and(|t| t.is_punct('['))
        {
            let (next_end, next_test) = read_attr(tokens, end + 2);
            is_test |= next_test;
            end = next_end;
        }
        if !is_test {
            i = end;
            continue;
        }
        let item_end = skip_item(tokens, end);
        for m in mask.iter_mut().take(item_end).skip(i) {
            *m = true;
        }
        i = item_end;
    }
    mask
}

/// Reads an attribute body starting just after `[`; returns (index after the
/// closing `]`, whether the attribute marks test-only code).
fn read_attr(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut depth = 1usize; // brackets
    let mut idents: Vec<&str> = Vec::new();
    let mut i = start;
    while i < tokens.len() && depth > 0 {
        match &tokens[i].tok {
            crate::lexer::Tok::Punct('[') => depth += 1,
            crate::lexer::Tok::Punct(']') => depth -= 1,
            crate::lexer::Tok::Ident(s) => idents.push(s.as_str()),
            _ => {}
        }
        i += 1;
    }
    let is_test = match idents.first() {
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        // `#[test]`, `#[tokio::test]`, ... — but not `#[cfg_attr(test, ..)]`.
        Some(_) => idents.last() == Some(&"test"),
        None => false,
    };
    (i, is_test)
}

/// Returns the index just past the item starting at `start`: either the
/// matching `}` of its first brace block, or a `;` reached before any brace.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
            seen_brace = true;
        } else if tokens[i].is_punct('}') {
            depth = depth.saturating_sub(1);
            if seen_brace && depth == 0 {
                return i + 1;
            }
        } else if tokens[i].is_punct(';') && !seen_brace {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

/// D1: entropy-based RNG construction.
fn match_unseeded_rng(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
) {
    if !rule_applies(RuleId::UnseededRng, ctx) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            out.push((RuleId::UnseededRng, t.line));
        }
    }
}

/// D2: `Instant::now` / `SystemTime::now` in pure-evaluation crates.
fn match_wall_clock(tokens: &[Token], mask: &[bool], out: &mut Vec<(RuleId, u32)>, ctx: &FileCtx) {
    if !rule_applies(RuleId::WallClock, ctx) {
        return;
    }
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let is_clock_type = tokens[i].is_ident("Instant") || tokens[i].is_ident("SystemTime");
        if is_clock_type
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push((RuleId::WallClock, tokens[i].line));
        }
    }
}

/// D3: `HashMap`/`HashSet` in report-feeding crates. The analyzer is
/// type-blind, so it conservatively flags the container at its mention
/// (import or construction): proving "never iterated" is exactly what the
/// suppression reason is for.
fn match_hash_iter(tokens: &[Token], mask: &[bool], out: &mut Vec<(RuleId, u32)>, ctx: &FileCtx) {
    if !rule_applies(RuleId::HashIter, ctx) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push((RuleId::HashIter, t.line));
        }
    }
}

/// D4: `partial_cmp(...)` chained into `.unwrap()` / `.expect(...)`.
/// Returns the token indices of the chained `unwrap`/`expect` idents so D5
/// does not double-report them.
fn match_nan_ord(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
) -> Vec<usize> {
    let mut claimed = Vec::new();
    let applies = rule_applies(RuleId::NanOrd, ctx);
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("partial_cmp") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Find the matching close paren.
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        // `j` is just past the close paren; look for `.unwrap` / `.expect`.
        if tokens.get(j).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(j + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            claimed.push(j + 1);
            if applies {
                out.push((RuleId::NanOrd, tokens[i].line));
            }
        }
    }
    claimed
}

/// D5: `.unwrap()` / `.expect(...)` in library crates, excluding call sites
/// already claimed by D4.
fn match_unwrap(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
    claimed: &[usize],
) {
    if !rule_applies(RuleId::Unwrap, ctx) {
        return;
    }
    for i in 1..tokens.len() {
        if mask[i] || claimed.contains(&i) {
            continue;
        }
        let is_call = (tokens[i].is_ident("unwrap") || tokens[i].is_ident("expect"))
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call {
            out.push((RuleId::Unwrap, tokens[i].line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
        scan_source(path, src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token present");
        assert!(mask[unwrap_idx]);
        let live_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live token present");
        assert!(!mask[live_idx]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D5".to_string(), 2)]
        );
    }

    #[test]
    fn test_attr_masks_following_fn_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D5".to_string(), 3)]
        );
    }

    #[test]
    fn d4_claims_suppress_double_reporting() {
        // One partial_cmp unwrap: D4 fires, D5 must not.
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D4".to_string(), 1)]
        );
    }

    #[test]
    fn d5_catches_plain_unwrap_but_not_unwrap_or() {
        let src = "fn f() { a.unwrap(); b.unwrap_or(0); c.expect(\"msg\"); }\n";
        assert_eq!(
            rules_at("crates/tuners/src/x.rs", src),
            vec![("D5".to_string(), 1), ("D5".to_string(), 1)]
        );
    }

    #[test]
    fn d2_scopes_to_pure_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at("crates/math/src/x.rs", src),
            vec![("D2".to_string(), 1)]
        );
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
        assert!(rules_at("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d1_applies_everywhere_outside_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(
            rules_at("crates/bench/src/bin/tool.rs", src),
            vec![("D1".to_string(), 1)]
        );
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let r = rand::thread_rng(); } }\n";
        assert!(rules_at("crates/bench/src/bin/tool.rs", test_src).is_empty());
    }

    #[test]
    fn d3_flags_hash_containers_in_scope() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let found = rules_at("crates/bench/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|(r, _)| r == "D3"));
        assert!(rules_at("crates/math/src/x.rs", src).is_empty());
    }

    // -- U-series --

    #[test]
    fn u1_requires_safety_comment_on_unsafe_block() {
        let src = "\
pub fn f(p: *const f64) -> f64 {
    unsafe { *p }
}
";
        let got = rules_at("crates/math/src/simd.rs", src);
        assert_eq!(got, vec![("U1".to_string(), 2)]);

        let good = "\
pub fn f(p: *const f64) -> f64 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
";
        assert!(rules_at("crates/math/src/simd.rs", good).is_empty());
    }

    #[test]
    fn u1_comment_run_may_span_lines_and_sit_above_attrs() {
        let src = "\
// SAFETY: callers must check AVX2 at runtime; this function reads
// 4 lanes per iteration and n is rounded down to a multiple of 4.
#[target_feature(enable = \"avx2\")]
pub unsafe fn k(xs: *const f64) {}
fn dispatch(xs: *const f64) { if has_avx2() { unsafe { k(xs) }; return; } for _ in 0..1 {} }
";
        // The kernel's U1 passes; the dispatch-site unsafe block has no
        // SAFETY comment and is reported.
        let got = rules_at("crates/math/src/simd.rs", src);
        assert_eq!(got, vec![("U1".to_string(), 5)]);
    }

    #[test]
    fn u1_accepts_trailing_same_line_comment() {
        let src = "fn f(p: *const u8) { unsafe { p.read() }; } // SAFETY: p nonnull by contract\n";
        assert!(rules_at("crates/math/src/simd.rs", src).is_empty());
    }

    #[test]
    fn u2_reports_unsafe_outside_allowlist() {
        let src = "\
// SAFETY: justified, but in the wrong place.
pub fn f(p: *const f64) -> f64 {
    // SAFETY: p valid.
    unsafe { *p }
}
";
        let got = rules_at("crates/core/src/x.rs", src);
        assert_eq!(got, vec![("U2".to_string(), 4)]);
        // Same source in the allowlisted file: clean.
        assert!(rules_at("crates/math/src/simd.rs", src).is_empty());
    }

    #[test]
    fn u2_reports_unsafe_fn_and_impl() {
        let src = "\
// SAFETY: documented but misplaced.
pub unsafe fn raw() {}
";
        let got = rules_at("crates/tuners/src/x.rs", src);
        assert_eq!(got, vec![("U2".to_string(), 2)]);
    }

    #[test]
    fn u3_passes_guarded_dispatch_with_fallback() {
        let src = "\
// SAFETY: AVX2 verified by caller via has_avx2.
#[target_feature(enable = \"avx2\")]
unsafe fn axpy_avx2(n: usize) {}
pub fn axpy(n: usize) {
    if has_avx2() {
        // SAFETY: AVX2 support verified above.
        unsafe { axpy_avx2(n) };
        return;
    }
    for _i in 0..n {}
}
";
        assert!(rules_at("crates/math/src/simd.rs", src).is_empty());
    }

    #[test]
    fn u3_flags_unguarded_call_and_missing_fallback() {
        let unguarded = "\
// SAFETY: AVX2 verified by caller.
#[target_feature(enable = \"avx2\")]
unsafe fn k_avx2(n: usize) {}
pub fn k(n: usize) {
    // SAFETY: assumed.
    unsafe { k_avx2(n) };
    for _i in 0..n {}
}
";
        assert_eq!(
            rules_at("crates/math/src/simd.rs", unguarded),
            vec![("U3".to_string(), 6)]
        );

        let no_fallback = "\
// SAFETY: AVX2 verified by caller.
#[target_feature(enable = \"avx2\")]
unsafe fn k_avx2(n: usize) {}
pub fn k(n: usize) {
    if has_avx2() {
        // SAFETY: verified above.
        unsafe { k_avx2(n) };
    }
}
";
        assert_eq!(
            rules_at("crates/math/src/simd.rs", no_fallback),
            vec![("U3".to_string(), 7)]
        );
    }

    #[test]
    fn u3_accepts_generic_fallback_call_and_flags_orphan_kernel() {
        let generic = "\
// SAFETY: AVX2 verified by caller.
#[target_feature(enable = \"avx2\")]
unsafe fn t_avx2(n: usize) {}
fn t_generic(n: usize) {}
pub fn t(n: usize) {
    if has_avx2() {
        // SAFETY: verified above.
        unsafe { t_avx2(n) };
        return;
    }
    t_generic(n);
}
";
        assert!(rules_at("crates/math/src/simd.rs", generic).is_empty());

        let orphan = "\
// SAFETY: AVX2 verified by caller (but nothing calls this).
#[target_feature(enable = \"avx2\")]
unsafe fn orphan_avx2(n: usize) {}
";
        assert_eq!(
            rules_at("crates/math/src/simd.rs", orphan),
            vec![("U3".to_string(), 3)]
        );
    }

    #[test]
    fn unsafe_in_cfg_test_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(p: *const u8) { unsafe { p.read() }; }
}
";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn u_findings_can_be_suppressed_with_reason() {
        let src = "\
pub fn f(p: *const f64) -> f64 {
    // lint:allow(U1, U2) vetted FFI shim, audited in review 2026-06
    unsafe { *p }
}
";
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn severity_is_attached_to_findings() {
        let src = "fn f() { a.unwrap(); }\n";
        let found = scan_source("crates/core/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].severity, "error");
    }
}
