//! The rule engine: `#[cfg(test)]` region masking and the token-stream
//! matchers for rules D1–D5.

use crate::config::{classify, rule_applies, FileCtx, RuleId};
use crate::lexer::{lex, Token};
use crate::report::Finding;
use crate::suppress;

/// Scans one file's source, returning suppressed-and-sorted findings.
///
/// `rel_path` is the workspace-relative path used both for crate
/// classification and in the findings.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let Some(ctx) = classify(rel_path) else {
        return Vec::new();
    };
    if ctx.is_test_source {
        return Vec::new();
    }
    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let lines: Vec<&str> = src.lines().collect();

    let mut raw: Vec<(RuleId, u32)> = Vec::new();
    let claimed = match_nan_ord(&lexed.tokens, &mask, &mut raw, &ctx);
    match_unseeded_rng(&lexed.tokens, &mask, &mut raw, &ctx);
    match_wall_clock(&lexed.tokens, &mask, &mut raw, &ctx);
    match_hash_iter(&lexed.tokens, &mask, &mut raw, &ctx);
    match_unwrap(&lexed.tokens, &mask, &mut raw, &ctx, &claimed);

    let findings = raw
        .into_iter()
        .map(|(rule, line)| Finding {
            rule: rule.id().to_string(),
            name: rule.name().to_string(),
            file: rel_path.to_string(),
            line,
            snippet: lines
                .get(line as usize - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
            message: rule.message().to_string(),
        })
        .collect();

    let directives = suppress::parse_directives(&lexed.comments);
    suppress::apply(findings, &directives, rel_path)
}

/// Marks token spans that belong to test-only items: anything annotated
/// `#[test]` (or `#[foo::test]`-style) or `#[cfg(test)]` / `#[cfg(all(test,
/// ...))]`. `#[cfg(not(test))]` is live production code and stays unmasked.
/// An inner `#![cfg(test)]` masks the rest of the file.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('['))
        {
            let (end, is_test) = read_attr(tokens, i + 3);
            if is_test {
                for m in mask.iter_mut().skip(i) {
                    *m = true;
                }
                return mask;
            }
            i = end;
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let (mut end, mut is_test) = read_attr(tokens, i + 2);
        // Collect any further attributes on the same item.
        while tokens.get(end).is_some_and(|t| t.is_punct('#'))
            && tokens.get(end + 1).is_some_and(|t| t.is_punct('['))
        {
            let (next_end, next_test) = read_attr(tokens, end + 2);
            is_test |= next_test;
            end = next_end;
        }
        if !is_test {
            i = end;
            continue;
        }
        let item_end = skip_item(tokens, end);
        for m in mask.iter_mut().take(item_end).skip(i) {
            *m = true;
        }
        i = item_end;
    }
    mask
}

/// Reads an attribute body starting just after `[`; returns (index after the
/// closing `]`, whether the attribute marks test-only code).
fn read_attr(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut depth = 1usize; // brackets
    let mut idents: Vec<&str> = Vec::new();
    let mut i = start;
    while i < tokens.len() && depth > 0 {
        match &tokens[i].tok {
            crate::lexer::Tok::Punct('[') => depth += 1,
            crate::lexer::Tok::Punct(']') => depth -= 1,
            crate::lexer::Tok::Ident(s) => idents.push(s.as_str()),
            _ => {}
        }
        i += 1;
    }
    let is_test = match idents.first() {
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        // `#[test]`, `#[tokio::test]`, ... — but not `#[cfg_attr(test, ..)]`.
        Some(_) => idents.last() == Some(&"test"),
        None => false,
    };
    (i, is_test)
}

/// Returns the index just past the item starting at `start`: either the
/// matching `}` of its first brace block, or a `;` reached before any brace.
fn skip_item(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    let mut depth = 0usize;
    let mut seen_brace = false;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
            seen_brace = true;
        } else if tokens[i].is_punct('}') {
            depth = depth.saturating_sub(1);
            if seen_brace && depth == 0 {
                return i + 1;
            }
        } else if tokens[i].is_punct(';') && !seen_brace {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

/// D1: entropy-based RNG construction.
fn match_unseeded_rng(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
) {
    if !rule_applies(RuleId::UnseededRng, ctx) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            out.push((RuleId::UnseededRng, t.line));
        }
    }
}

/// D2: `Instant::now` / `SystemTime::now` in pure-evaluation crates.
fn match_wall_clock(tokens: &[Token], mask: &[bool], out: &mut Vec<(RuleId, u32)>, ctx: &FileCtx) {
    if !rule_applies(RuleId::WallClock, ctx) {
        return;
    }
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        let is_clock_type = tokens[i].is_ident("Instant") || tokens[i].is_ident("SystemTime");
        if is_clock_type
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push((RuleId::WallClock, tokens[i].line));
        }
    }
}

/// D3: `HashMap`/`HashSet` in report-feeding crates. The analyzer is
/// type-blind, so it conservatively flags the container at its mention
/// (import or construction): proving "never iterated" is exactly what the
/// suppression reason is for.
fn match_hash_iter(tokens: &[Token], mask: &[bool], out: &mut Vec<(RuleId, u32)>, ctx: &FileCtx) {
    if !rule_applies(RuleId::HashIter, ctx) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push((RuleId::HashIter, t.line));
        }
    }
}

/// D4: `partial_cmp(...)` chained into `.unwrap()` / `.expect(...)`.
/// Returns the token indices of the chained `unwrap`/`expect` idents so D5
/// does not double-report them.
fn match_nan_ord(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
) -> Vec<usize> {
    let mut claimed = Vec::new();
    let applies = rule_applies(RuleId::NanOrd, ctx);
    for i in 0..tokens.len() {
        if mask[i] || !tokens[i].is_ident("partial_cmp") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        // Find the matching close paren.
        let mut depth = 1usize;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
            }
            j += 1;
        }
        // `j` is just past the close paren; look for `.unwrap` / `.expect`.
        if tokens.get(j).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(j + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
        {
            claimed.push(j + 1);
            if applies {
                out.push((RuleId::NanOrd, tokens[i].line));
            }
        }
    }
    claimed
}

/// D5: `.unwrap()` / `.expect(...)` in library crates, excluding call sites
/// already claimed by D4.
fn match_unwrap(
    tokens: &[Token],
    mask: &[bool],
    out: &mut Vec<(RuleId, u32)>,
    ctx: &FileCtx,
    claimed: &[usize],
) {
    if !rule_applies(RuleId::Unwrap, ctx) {
        return;
    }
    for i in 1..tokens.len() {
        if mask[i] || claimed.contains(&i) {
            continue;
        }
        let is_call = (tokens[i].is_ident("unwrap") || tokens[i].is_ident("expect"))
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call {
            out.push((RuleId::Unwrap, tokens[i].line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_at(path: &str, src: &str) -> Vec<(String, u32)> {
        scan_source(path, src)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token present");
        assert!(mask[unwrap_idx]);
        let live_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("live"))
            .expect("live token present");
        assert!(!mask[live_idx]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D5".to_string(), 2)]
        );
    }

    #[test]
    fn test_attr_masks_following_fn_only() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D5".to_string(), 3)]
        );
    }

    #[test]
    fn d4_claims_suppress_double_reporting() {
        // One partial_cmp unwrap: D4 fires, D5 must not.
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(
            rules_at("crates/core/src/x.rs", src),
            vec![("D4".to_string(), 1)]
        );
    }

    #[test]
    fn d5_catches_plain_unwrap_but_not_unwrap_or() {
        let src = "fn f() { a.unwrap(); b.unwrap_or(0); c.expect(\"msg\"); }\n";
        assert_eq!(
            rules_at("crates/tuners/src/x.rs", src),
            vec![("D5".to_string(), 1), ("D5".to_string(), 1)]
        );
    }

    #[test]
    fn d2_scopes_to_pure_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_at("crates/math/src/x.rs", src),
            vec![("D2".to_string(), 1)]
        );
        assert!(rules_at("crates/core/src/x.rs", src).is_empty());
        assert!(rules_at("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn d1_applies_everywhere_outside_tests() {
        let src = "fn f() { let mut rng = rand::thread_rng(); }\n";
        assert_eq!(
            rules_at("crates/bench/src/bin/tool.rs", src),
            vec![("D1".to_string(), 1)]
        );
        let test_src = "#[cfg(test)]\nmod tests { fn f() { let r = rand::thread_rng(); } }\n";
        assert!(rules_at("crates/bench/src/bin/tool.rs", test_src).is_empty());
    }

    #[test]
    fn d3_flags_hash_containers_in_scope() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        let found = rules_at("crates/bench/src/x.rs", src);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|(r, _)| r == "D3"));
        assert!(rules_at("crates/math/src/x.rs", src).is_empty());
    }
}
