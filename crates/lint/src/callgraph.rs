//! Per-crate call-graph summaries for the C-series rules.
//!
//! The C-series analyzers are one-call-level interprocedural: when a
//! function holding a lock calls another function in the same crate, the
//! callee's *direct* lock acquisitions and durability waits are credited
//! to the call site. That needs a side table of per-function summaries,
//! built here by parsing every non-test `fn` body in the crate.
//!
//! Resolution is by bare function name: Rust method dispatch is not
//! modeled, so same-named functions across impls and files are merged
//! into one summary (the union of their effects). That conflation is
//! deliberate — it keeps shard replicas of one logical lock unified and
//! errs toward reporting an edge rather than missing one — and is
//! documented as a known limit in DESIGN.md §4b.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Protocol;
use crate::items::{ItemKind, ItemTree};
use crate::lexer::Token;
use crate::parser::{self, Block, Call};

/// What one function does directly (no transitive closure): the lock
/// keys it acquires anywhere in its body, and whether it awaits
/// durability.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// Canonical lock keys acquired in the body (see [`lock_key`]).
    pub locks: BTreeSet<String>,
    /// True when the body directly calls a configured durability wait.
    pub waits: bool,
}

/// Function summaries for one crate, keyed by bare function name.
#[derive(Debug, Clone, Default)]
pub struct CrateIndex {
    /// name → merged summary (same-named functions union their effects).
    pub fns: BTreeMap<String, FnSummary>,
    /// name → parameter guards the body imposes (see
    /// [`crate::dataflow::ParamGuard`]). Same-named functions append
    /// their guards; the dataflow pass applies every matching guard at a
    /// call site, so conflation can only add facts, never drop one.
    pub guards: BTreeMap<String, Vec<crate::dataflow::ParamGuard>>,
}

impl CrateIndex {
    /// Folds one file's functions into the index. Test-only functions
    /// and functions whose token span is masked as test code are
    /// skipped, as are the lock primitives themselves (a helper named
    /// `lock` *is* the acquisition, not a caller of one).
    pub fn add_file(
        &mut self,
        tree: &ItemTree,
        tokens: &[Token],
        mask: &[bool],
        protocol: &Protocol,
    ) {
        tree.walk(&mut |item| {
            if item.kind != ItemKind::Fn || item.is_test_only() {
                return;
            }
            let Some((bs, be)) = item.body_span else {
                return;
            };
            if mask.get(item.span.0).copied().unwrap_or(false) {
                return;
            }
            if protocol.lock_fns.contains(&item.name.as_str()) {
                return;
            }
            let block = parser::parse_body(tokens, bs, be);
            let summary = self.fns.entry(item.name.clone()).or_default();
            summarize(&block, protocol, summary);
            let params = crate::dataflow::fn_params(tokens, item);
            let gs = crate::dataflow::param_guards(tokens, (bs, be), &params);
            if !gs.is_empty() {
                self.guards.entry(item.name.clone()).or_default().extend(gs);
            }
        });
    }
}

/// Accumulates a block's direct lock acquisitions and durability waits.
fn summarize(block: &Block, protocol: &Protocol, out: &mut FnSummary) {
    for stmt in &block.stmts {
        for call in &stmt.calls {
            if call.deferred {
                continue;
            }
            if let Some(key) = lock_key(call, protocol) {
                out.locks.insert(key);
            }
            if protocol.durability_waits.contains(&call.callee.as_str()) {
                out.waits = true;
            }
        }
        for sub in stmt.blocks() {
            summarize(sub, protocol, out);
        }
    }
}

/// The canonical lock key a call acquires, if it is a lock acquisition:
/// the last field segment of the lock path. `lock(&state.create_lock)` →
/// `create_lock`; `lock(&state.shard(id).sessions)` → `sessions`;
/// `self.queue.lock()` → `queue`. Same-named fields on different types
/// conflate (documented limit: shard replicas of one logical lock stay
/// unified, at the cost of occasional false sharing between unrelated
/// locks that happen to share a field name).
pub fn lock_key(call: &Call, protocol: &Protocol) -> Option<String> {
    if !call.is_method && call.recv.is_empty() && protocol.lock_fns.contains(&call.callee.as_str())
    {
        return call.args.first().and_then(|a| a.last()).cloned();
    }
    if call.is_method && protocol.lock_methods.contains(&call.callee.as_str()) {
        return call.recv.last().cloned();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DEFAULT_PROTOCOL;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn index_of(src: &str) -> CrateIndex {
        let lexed = lex(src);
        let tree = parser::parse(&lexed.tokens);
        let mask = test_mask(&lexed.tokens);
        let mut idx = CrateIndex::default();
        idx.add_file(&tree, &lexed.tokens, &mask, &DEFAULT_PROTOCOL);
        idx
    }

    #[test]
    fn summaries_record_locks_and_waits() {
        let src = r#"
fn holds_two(state: &Shared) {
    let a = lock(&state.gate);
    let b = state.sessions.lock();
    drop(b);
    drop(a);
}
fn awaits(sink: &WalSink, t: u64) -> Result<(), Error> {
    sink.wait_durable(t)
}
fn idle() { compute(); }
"#;
        let idx = index_of(src);
        let two = &idx.fns["holds_two"];
        assert_eq!(
            two.locks.iter().cloned().collect::<Vec<_>>(),
            vec!["gate", "sessions"]
        );
        assert!(!two.waits);
        assert!(idx.fns["awaits"].waits);
        assert!(idx.fns["idle"].locks.is_empty());
    }

    #[test]
    fn test_fns_and_lock_helpers_are_excluded() {
        let src = r#"
fn lock(m: &Mutex) -> Guard { m.lock().unwrap_or_else(|e| e.into_inner()) }
#[cfg(test)]
mod tests {
    fn helper(state: &S) { let g = lock(&state.inner); }
}
"#;
        let idx = index_of(src);
        assert!(!idx.fns.contains_key("lock"), "lock primitive excluded");
        assert!(!idx.fns.contains_key("helper"), "test code excluded");
    }

    #[test]
    fn lock_key_takes_last_field_segment() {
        let src = "fn f(state: &S, id: u64) { let g = lock(&state.shard(id).sessions); }";
        let idx = index_of(src);
        assert!(idx.fns["f"].locks.contains("sessions"));
    }

    #[test]
    fn deferred_closure_locks_are_not_credited() {
        let src = "fn f(q: &Q) { spawn(move || { let g = lock(&q.inner); g.run(); }); }";
        let idx = index_of(src);
        assert!(idx.fns["f"].locks.is_empty());
    }
}
