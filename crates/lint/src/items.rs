//! The scoped item tree the parser produces: functions, modules, impls,
//! traits, and `unsafe` blocks, each with token/line spans and their
//! attributes. Rule families that need scope facts — the U-series unsafe
//! audit and the K-series knob checks — walk this tree instead of the flat
//! token stream.

/// What kind of scope-bearing item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, associated, or nested), including `unsafe fn`.
    Fn,
    /// `mod name { ... }` (inline only; `mod name;` carries no scope).
    Mod,
    /// `impl ... { ... }` (inherent or trait impl).
    Impl,
    /// `trait ... { ... }`.
    Trait,
    /// An `unsafe { ... }` block inside a function body.
    UnsafeBlock,
}

/// One attribute (`#[...]`), reduced to the identifier and string-literal
/// atoms the rules match on (`cfg`, `test`, `target_feature`, `"avx2"`...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// 1-based line of the opening `#`.
    pub line: u32,
    /// Identifiers inside the attribute, in order.
    pub idents: Vec<String>,
    /// String literals inside the attribute, in order.
    pub strs: Vec<String>,
}

impl Attr {
    /// True for `#[cfg(test)]` / `#[cfg(all(test, ...))]`-style attributes
    /// (but not `#[cfg(not(test))]`), and for `#[test]` / `#[foo::test]`.
    pub fn is_test_marker(&self) -> bool {
        match self.idents.first().map(String::as_str) {
            Some("cfg") => {
                self.idents.iter().any(|s| s == "test") && !self.idents.iter().any(|s| s == "not")
            }
            // `#[test]`, `#[tokio::test]`, ... — but not `#[cfg_attr(test, ..)]`.
            Some(_) => self.idents.last().map(String::as_str) == Some("test"),
            None => false,
        }
    }

    /// True for `#[target_feature(enable = "avx2")]`.
    pub fn enables_avx2(&self) -> bool {
        self.idents.first().map(String::as_str) == Some("target_feature")
            && self.strs.iter().any(|s| s == "avx2")
    }
}

/// One node of the item tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Node kind.
    pub kind: ItemKind,
    /// Item name (`fn`/`mod`/`trait` name); empty for impls and unsafe
    /// blocks.
    pub name: String,
    /// 1-based line the item starts on (the first modifier/keyword token,
    /// not its attributes).
    pub line: u32,
    /// 1-based line of the `unsafe` keyword, when [`Self::is_unsafe`].
    pub unsafe_line: u32,
    /// Token-index span `[start, end)` in the lexed stream, covering the
    /// whole item including its body.
    pub span: (usize, usize),
    /// For a [`ItemKind::Fn`] with a body: the token span `[start, end)`
    /// strictly inside its braces, ready for [`crate::parser::parse_body`].
    /// `None` for bodiless declarations and non-fn items.
    pub body_span: Option<(usize, usize)>,
    /// Attributes attached to the item (empty for unsafe blocks).
    pub attrs: Vec<Attr>,
    /// True for `unsafe fn` / `unsafe impl` / `unsafe trait` and for every
    /// [`ItemKind::UnsafeBlock`].
    pub is_unsafe: bool,
    /// Nested items (fns in impls/mods, unsafe blocks in fn bodies, ...).
    pub children: Vec<Item>,
}

impl Item {
    /// True if any attribute marks this item test-only.
    pub fn is_test_only(&self) -> bool {
        self.attrs.iter().any(Attr::is_test_marker)
    }

    /// True if an attribute is `#[target_feature(enable = "avx2")]`.
    pub fn is_avx2_kernel(&self) -> bool {
        self.attrs.iter().any(Attr::enables_avx2)
    }

    /// Depth-first walk over this item and all descendants.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        visit(self);
        for child in &self.children {
            child.walk(visit);
        }
    }
}

/// The parse result for one file: top-level items (the tree) plus any
/// inner `#![...]` attributes of the file itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Inner attributes (`#![forbid(unsafe_code)]`, `#![cfg(test)]`, ...).
    pub inner_attrs: Vec<Attr>,
}

impl ItemTree {
    /// Depth-first walk over every item in the tree.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Item)) {
        for item in &self.items {
            item.walk(visit);
        }
    }

    /// Collects every node satisfying `pred`, in source order.
    pub fn collect(&self, pred: impl Fn(&Item) -> bool) -> Vec<&Item> {
        let mut out = Vec::new();
        self.walk(&mut |item| {
            if pred(item) {
                out.push(item);
            }
        });
        out
    }
}
