//! Inline suppression directives.
//!
//! A finding can be waived with a line comment of the form
//! `lint:allow(<rule>) <reason>` — for example
//! `// lint:allow(unwrap) length checked two lines above`. The directive
//! suppresses matching findings on its own line and on the line directly
//! below (so it can sit on its own line above the offending statement).
//! Rules are named by id (`D5`) or name (`unwrap`); several may be listed
//! comma-separated. A directive with no reason text after the closing paren
//! is itself reported as an `A0 bare-allow` finding: suppressions must carry
//! their justification.

use crate::config::RuleId;
use crate::lexer::LineComment;
use crate::report::Finding;

/// A parsed `lint:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Rules the directive names (unknown names are dropped).
    pub rules: Vec<RuleId>,
    /// True when non-empty reason text follows the closing paren.
    pub has_reason: bool,
    /// The raw comment text, for reporting.
    pub raw: String,
}

impl Directive {
    /// True when this directive waives `rule` for a finding on `line`.
    pub fn covers(&self, rule_id: &str, line: u32) -> bool {
        (line == self.line || line == self.line + 1) && self.rules.iter().any(|r| r.id() == rule_id)
    }
}

const MARKER: &str = "lint:allow(";

/// Extracts directives from the file's line comments.
pub fn parse_directives(comments: &[LineComment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let Some(start) = c.text.find(MARKER) else {
            continue;
        };
        let after = &c.text[start + MARKER.len()..];
        let Some(close) = after.find(')') else {
            continue; // Unterminated; treat as prose.
        };
        let rules: Vec<RuleId> = after[..close]
            .split(',')
            .filter_map(|s| RuleId::parse(s.trim()))
            .collect();
        let has_reason = !after[close + 1..].trim().is_empty();
        out.push(Directive {
            line: c.line,
            rules,
            has_reason,
            raw: c.text.trim().to_string(),
        });
    }
    out
}

/// Drops findings waived by a directive and reports bare (reason-less)
/// directives as `A0` findings.
pub fn apply(raw: Vec<Finding>, directives: &[Directive], file: &str) -> Vec<Finding> {
    let mut out: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !directives.iter().any(|d| d.covers(&f.rule, f.line)))
        .collect();
    for d in directives.iter().filter(|d| !d.has_reason) {
        out.push(Finding {
            rule: RuleId::BareAllow.id().to_string(),
            name: RuleId::BareAllow.name().to_string(),
            severity: RuleId::BareAllow.severity().label().to_string(),
            file: file.to_string(),
            line: d.line,
            snippet: d.raw.clone(),
            message: RuleId::BareAllow.message().to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> LineComment {
        LineComment {
            line,
            text: text.to_string(),
        }
    }

    fn finding(rule: RuleId, line: u32) -> Finding {
        Finding {
            rule: rule.id().to_string(),
            name: rule.name().to_string(),
            severity: rule.severity().label().to_string(),
            file: "f.rs".to_string(),
            line,
            snippet: String::new(),
            message: String::new(),
        }
    }

    #[test]
    fn parses_rule_and_reason() {
        let ds = parse_directives(&[comment(4, " lint:allow(unwrap) bounds checked above")]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rules, vec![RuleId::Unwrap]);
        assert!(ds[0].has_reason);
        assert!(ds[0].covers("D5", 4));
        assert!(ds[0].covers("D5", 5));
        assert!(!ds[0].covers("D5", 6));
        assert!(!ds[0].covers("D4", 4));
    }

    #[test]
    fn multiple_rules_comma_separated() {
        let ds = parse_directives(&[comment(1, " lint:allow(D4, unwrap) shared justification")]);
        assert_eq!(ds[0].rules, vec![RuleId::NanOrd, RuleId::Unwrap]);
    }

    #[test]
    fn suppresses_same_and_next_line_only() {
        let ds = parse_directives(&[comment(10, " lint:allow(unwrap) invariant")]);
        let kept = apply(
            vec![
                finding(RuleId::Unwrap, 10),
                finding(RuleId::Unwrap, 11),
                finding(RuleId::Unwrap, 12),
            ],
            &ds,
            "f.rs",
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 12);
    }

    #[test]
    fn bare_allow_is_a_finding_but_still_suppresses() {
        let ds = parse_directives(&[comment(3, " lint:allow(unwrap)")]);
        let kept = apply(vec![finding(RuleId::Unwrap, 3)], &ds, "f.rs");
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, "A0");
        assert_eq!(kept[0].line, 3);
    }

    #[test]
    fn prose_mentions_are_not_directives() {
        let ds = parse_directives(&[comment(1, " suppression uses lint:allow syntax")]);
        assert!(ds.is_empty());
    }
}
