//! A lightweight recursive-descent parser from the token stream to the
//! scoped item tree ([`crate::items`]).
//!
//! This is not a full Rust grammar: it recognizes exactly the scope
//! structure the semantic rules need — `fn` / `mod` / `impl` / `trait`
//! items (with modifiers and attributes), `unsafe` markers on items, and
//! `unsafe { ... }` blocks inside function bodies — and is deliberately
//! permissive about everything else (expressions, types, generics are
//! skipped by delimiter matching). Unknown constructs never abort a parse;
//! at worst an exotic item is skipped, which fails *open* (no spurious
//! findings) rather than closed.

use crate::items::{Attr, Item, ItemKind, ItemTree};
use crate::lexer::{Tok, Token};

/// Parses a lexed token stream into an item tree.
pub fn parse(tokens: &[Token]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut pos = 0usize;
    parse_items(
        tokens,
        &mut pos,
        tokens.len(),
        &mut tree.items,
        Some(&mut tree.inner_attrs),
    );
    tree
}

/// Item keywords that start a scope the tree records.
const SCOPE_KEYWORDS: &[&str] = &["fn", "mod", "impl", "trait"];

/// Item keywords that are skipped as opaque items.
const OPAQUE_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "union",
    "use",
    "static",
    "const",
    "type",
    "macro_rules",
    "macro",
];

/// Modifier keywords that may precede an item keyword.
const MODIFIERS: &[&str] = &["pub", "default", "async", "extern"];

/// Parses items in `tokens[*pos..end]` into `out`. `inner` receives
/// `#![...]` attributes when the caller wants them (top level only).
fn parse_items(
    tokens: &[Token],
    pos: &mut usize,
    end: usize,
    out: &mut Vec<Item>,
    mut inner: Option<&mut Vec<Attr>>,
) {
    while *pos < end {
        // Inner attribute `#![...]`.
        if tokens[*pos].is_punct('#')
            && tokens.get(*pos + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(*pos + 2).is_some_and(|t| t.is_punct('['))
        {
            let line = tokens[*pos].line;
            *pos += 3;
            let attr = read_attr_body(tokens, pos, end, line);
            if let Some(sink) = inner.as_deref_mut() {
                sink.push(attr);
            }
            continue;
        }
        // Outer attributes.
        let mut attrs = Vec::new();
        while *pos < end
            && tokens[*pos].is_punct('#')
            && tokens.get(*pos + 1).is_some_and(|t| t.is_punct('['))
        {
            let line = tokens[*pos].line;
            *pos += 2;
            attrs.push(read_attr_body(tokens, pos, end, line));
        }
        if *pos >= end {
            break;
        }
        if let Some(item) = parse_one_item(tokens, pos, end, attrs) {
            out.push(item);
        }
    }
}

/// Parses one item (with already-collected attributes) or skips one token.
fn parse_one_item(tokens: &[Token], pos: &mut usize, end: usize, attrs: Vec<Attr>) -> Option<Item> {
    let start = *pos;
    let start_line = tokens[start].line;
    let mut is_unsafe = false;
    let mut unsafe_line = 0u32;

    // Consume modifiers (`pub`, `pub(crate)`, `const fn`, `unsafe fn`,
    // `extern "C" fn`, ...) up to the item keyword.
    let mut i = *pos;
    while i < end {
        match tokens[i].ident() {
            Some("unsafe") => {
                is_unsafe = true;
                unsafe_line = tokens[i].line;
                i += 1;
            }
            Some("const") => {
                // `const fn` is a modifier only when `fn` (or more
                // modifiers) follow; otherwise it is a `const` item.
                if tokens
                    .get(i + 1)
                    .and_then(Token::ident)
                    .is_some_and(|id| id == "fn" || MODIFIERS.contains(&id) || id == "unsafe")
                {
                    i += 1;
                } else {
                    break;
                }
            }
            Some(m) if MODIFIERS.contains(&m) => {
                i += 1;
                // `pub(crate)` / `pub(in path)` visibility scope.
                if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                    i = skip_delimited(tokens, i, end, '(', ')');
                }
                // `extern "C"` ABI string.
                if m == "extern" && tokens.get(i).is_some_and(|t| t.str_lit().is_some()) {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let Some(keyword) = tokens.get(i).filter(|_| i < end).and_then(Token::ident) else {
        *pos += 1;
        return None;
    };

    if SCOPE_KEYWORDS.contains(&keyword) {
        let kind = match keyword {
            "fn" => ItemKind::Fn,
            "mod" => ItemKind::Mod,
            "impl" => ItemKind::Impl,
            "trait" => ItemKind::Trait,
            _ => unreachable!("keyword list matches kinds"),
        };
        i += 1;
        let name = match kind {
            ItemKind::Fn | ItemKind::Mod | ItemKind::Trait => tokens
                .get(i)
                .filter(|_| i < end)
                .and_then(Token::ident)
                .unwrap_or("")
                .to_string(),
            _ => String::new(),
        };
        if kind == ItemKind::Fn && name.is_empty() {
            // `fn(i32) -> i32` function-pointer type position, not an item.
            *pos = i;
            return None;
        }
        // Scan to the body `{` or a terminating `;` (`mod name;`, trait
        // method declaration, extern fn declaration).
        while i < end && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
            i += 1;
        }
        if i >= end || tokens[i].is_punct(';') {
            *pos = (i + 1).min(end);
            return Some(Item {
                kind,
                name,
                line: start_line,
                unsafe_line,
                span: (start, *pos),
                attrs,
                is_unsafe,
                children: Vec::new(),
            });
        }
        let body_start = i + 1;
        let body_end = matching_brace(tokens, i, end);
        let mut children = Vec::new();
        match kind {
            ItemKind::Fn => scan_fn_body(tokens, body_start, body_end, &mut children),
            _ => {
                let mut p = body_start;
                parse_items(tokens, &mut p, body_end, &mut children, None);
            }
        }
        *pos = (body_end + 1).min(end);
        return Some(Item {
            kind,
            name,
            line: start_line,
            unsafe_line,
            span: (start, *pos),
            attrs,
            is_unsafe,
            children,
        });
    }

    if OPAQUE_KEYWORDS.contains(&keyword) || is_unsafe {
        // Opaque item (struct/enum/const/use/...), or `unsafe impl Send`
        // style already handled above; skip to its end.
        *pos = skip_opaque_item(tokens, i, end);
        return None;
    }

    // Not an item start (stray expression token at item level, macro
    // invocation, ...). Advance one token; macro bodies are harmless
    // because their delimiters are balanced and contain no item keywords
    // we would misparse into overlapping spans.
    *pos += 1;
    None
}

/// Reads an attribute body starting just after `[`, collecting ident and
/// string atoms until the matching `]`.
fn read_attr_body(tokens: &[Token], pos: &mut usize, end: usize, line: u32) -> Attr {
    let mut depth = 1usize;
    let mut attr = Attr {
        line,
        idents: Vec::new(),
        strs: Vec::new(),
    };
    while *pos < end && depth > 0 {
        match &tokens[*pos].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) => attr.idents.push(s.clone()),
            Tok::Str(s) => attr.strs.push(s.clone()),
            _ => {}
        }
        *pos += 1;
    }
    attr
}

/// Scans a function body for `unsafe { ... }` blocks and nested items.
/// Unsafe blocks nested inside other unsafe blocks are recorded too (each
/// one carries its own safety obligation).
fn scan_fn_body(tokens: &[Token], start: usize, end: usize, out: &mut Vec<Item>) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("unsafe") {
            let next = tokens.get(i + 1).filter(|_| i + 1 < end);
            if next.is_some_and(|n| n.is_punct('{')) {
                let body_end = matching_brace(tokens, i + 1, end);
                out.push(Item {
                    kind: ItemKind::UnsafeBlock,
                    name: String::new(),
                    line: t.line,
                    unsafe_line: t.line,
                    span: (i, (body_end + 1).min(end)),
                    attrs: Vec::new(),
                    is_unsafe: true,
                    children: Vec::new(),
                });
                // Keep scanning *inside* the block for nested unsafe.
                i += 2;
                continue;
            }
            if next.is_some_and(|n| {
                n.ident()
                    .is_some_and(|id| id == "fn" || MODIFIERS.contains(&id) || id == "extern")
            }) {
                // Nested `unsafe fn` item inside a body.
                let mut p = i;
                parse_items_single(tokens, &mut p, end, out);
                i = p;
                continue;
            }
            i += 1;
            continue;
        }
        if t.ident().is_some_and(|id| SCOPE_KEYWORDS.contains(&id)) {
            // Possible nested item (`fn helper() {...}` inside a body).
            // `fn` in type position (`fn(i32)`) is rejected by the parser.
            let before = i;
            let mut p = i;
            parse_items_single(tokens, &mut p, end, out);
            i = p.max(before + 1);
            continue;
        }
        i += 1;
    }
}

/// Parses exactly one item at `*pos` (no attribute collection — nested
/// items inside bodies rarely carry rule-relevant attributes, and `#`
/// tokens in expression position would misparse).
fn parse_items_single(tokens: &[Token], pos: &mut usize, end: usize, out: &mut Vec<Item>) {
    if let Some(item) = parse_one_item(tokens, pos, end, Vec::new()) {
        out.push(item);
    }
}

/// Returns the index of the `}` matching the `{` at `open`, or `end`.
fn matching_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Skips past a `open ... close` delimited run starting at `open_idx`.
fn skip_delimited(tokens: &[Token], open_idx: usize, end: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < end {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Skips an opaque item starting at `i`: ends at a `;` outside delimiters,
/// or at the matching `}` of its first brace block (struct/enum bodies,
/// `macro_rules!` braces, const-block initializers run to their `;`).
fn skip_opaque_item(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    let mut seen_brace_at_top = false;
    while j < end {
        match &tokens[j].tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                if tokens[j].is_punct('{') && depth == 0 {
                    seen_brace_at_top = true;
                }
                depth += 1;
            }
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 && seen_brace_at_top && tokens[j].is_punct('}') {
                    // A top-level brace block closed; `struct S { .. }` and
                    // `macro_rules! m { .. }` end here, initializer blocks
                    // (`const X: T = { .. };`) continue to the `;`.
                    if !tokens
                        .get(j + 1)
                        .is_some_and(|t| t.is_punct(';') || t.is_punct('.') || t.is_punct('='))
                    {
                        return j + 1;
                    }
                }
            }
            Tok::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        parse(&lex(src).tokens)
    }

    #[test]
    fn parses_fns_mods_impls() {
        let src = r#"
pub fn alpha() { let x = 1; }
mod inner {
    fn beta() {}
    impl Foo {
        pub(crate) fn gamma(&self) -> u32 { 7 }
    }
}
trait T { fn decl(&self); fn with_default(&self) {} }
"#;
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 3);
        assert_eq!(tree.items[0].kind, ItemKind::Fn);
        assert_eq!(tree.items[0].name, "alpha");
        assert_eq!(tree.items[1].kind, ItemKind::Mod);
        assert_eq!(tree.items[1].name, "inner");
        let inner = &tree.items[1].children;
        assert_eq!(inner.len(), 2);
        assert_eq!(inner[0].name, "beta");
        assert_eq!(inner[1].kind, ItemKind::Impl);
        assert_eq!(inner[1].children[0].name, "gamma");
        let tr = &tree.items[2];
        assert_eq!(tr.kind, ItemKind::Trait);
        let names: Vec<&str> = tr.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["decl", "with_default"]);
    }

    #[test]
    fn unsafe_fn_and_blocks_are_recorded() {
        let src = r#"
unsafe fn kernel(x: *const f64) -> f64 { *x }
pub fn dispatch(x: &[f64]) -> f64 {
    if feature() {
        // SAFETY: checked
        return unsafe { kernel(x.as_ptr()) };
    }
    x[0]
}
"#;
        let tree = tree_of(src);
        let kernel = &tree.items[0];
        assert!(kernel.is_unsafe);
        assert_eq!(kernel.unsafe_line, 2);
        assert_eq!(kernel.kind, ItemKind::Fn);
        let dispatch = &tree.items[1];
        assert!(!dispatch.is_unsafe);
        let blocks: Vec<&Item> = dispatch
            .children
            .iter()
            .filter(|c| c.kind == ItemKind::UnsafeBlock)
            .collect();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].line, 6);
    }

    #[test]
    fn nested_unsafe_blocks_each_recorded() {
        let src = "fn f() { unsafe { unsafe { x } } }";
        let tree = tree_of(src);
        let blocks = tree.collect(|i| i.kind == ItemKind::UnsafeBlock);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn attributes_and_cfg_tracking() {
        let src = r#"
#[cfg(test)]
mod tests { fn t() {} }
#[cfg(not(test))]
fn live() {}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn wide() {}
"#;
        let tree = tree_of(src);
        assert!(tree.items[0].is_test_only());
        assert!(!tree.items[1].is_test_only());
        let wide = &tree.items[2];
        assert!(wide.is_avx2_kernel());
        assert!(wide.is_unsafe);
        assert_eq!(wide.attrs.len(), 2);
        assert_eq!(wide.attrs[1].strs, vec!["avx2"]);
    }

    #[test]
    fn inner_attrs_are_collected() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}";
        let tree = tree_of(src);
        assert_eq!(tree.inner_attrs.len(), 1);
        assert_eq!(tree.inner_attrs[0].idents, vec!["forbid", "unsafe_code"]);
        assert_eq!(tree.items.len(), 1);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn f() { let g: fn(i32) -> i32 = h; let u: unsafe fn() = k; }";
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 1);
        assert!(tree.items[0].children.is_empty());
    }

    #[test]
    fn opaque_items_are_skipped_without_derailing() {
        let src = r#"
use std::fmt;
const N: usize = { 3 + 4 };
static S: &str = "x";
struct Point { x: f64, y: f64 }
enum E { A, B(u8) }
macro_rules! m { ($x:expr) => { $x + 1 }; }
fn after_all() {}
"#;
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 1);
        assert_eq!(tree.items[0].name, "after_all");
    }

    #[test]
    fn spans_cover_items() {
        let src = "fn a() { x } fn b() { y }";
        let tree = tree_of(src);
        let toks = lex(src).tokens;
        let (s, e) = tree.items[0].span;
        assert!(toks[s].is_ident("fn"));
        assert!(toks[e - 1].is_punct('}'));
        assert!(tree.items[1].span.0 >= e);
    }

    #[test]
    fn unsafe_impl_and_trait() {
        let src = "unsafe impl Send for X {} unsafe trait T {} fn live() {}";
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 3);
        assert!(tree.items[0].is_unsafe);
        assert_eq!(tree.items[0].kind, ItemKind::Impl);
        assert!(tree.items[1].is_unsafe);
        assert_eq!(tree.items[1].kind, ItemKind::Trait);
    }
}
