//! A lightweight recursive-descent parser from the token stream to the
//! scoped item tree ([`crate::items`]).
//!
//! This is not a full Rust grammar: it recognizes exactly the scope
//! structure the semantic rules need — `fn` / `mod` / `impl` / `trait`
//! items (with modifiers and attributes), `unsafe` markers on items, and
//! `unsafe { ... }` blocks inside function bodies — and is deliberately
//! permissive about everything else (types, generics, operators are
//! skipped by delimiter matching). Unknown constructs never abort a parse;
//! at worst an exotic item is skipped, which fails *open* (no spurious
//! findings) rather than closed.
//!
//! For the statement-level C-series rules, [`parse_body`] additionally
//! parses a function body's token span into a [`Block`] of [`Stmt`]s:
//! `let` bindings, call expressions (free, path-qualified, and method
//! calls with receiver paths and argument ident lists), `if` / `while` /
//! `for` / `loop` / `match` structure, early `return`s, and closures
//! (whose calls are recorded as *deferred* — they may run later or
//! never). The same fail-open discipline applies: anything the grammar
//! does not model is consumed as part of a plain statement with its calls
//! still collected, and the cursor provably advances every iteration, so
//! malformed input degrades to a coarser tree, never a panic or a
//! spurious structure.

use crate::items::{Attr, Item, ItemKind, ItemTree};
use crate::lexer::{Tok, Token};

/// Parses a lexed token stream into an item tree.
pub fn parse(tokens: &[Token]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut pos = 0usize;
    parse_items(
        tokens,
        &mut pos,
        tokens.len(),
        &mut tree.items,
        Some(&mut tree.inner_attrs),
    );
    tree
}

/// Item keywords that start a scope the tree records.
const SCOPE_KEYWORDS: &[&str] = &["fn", "mod", "impl", "trait"];

/// Item keywords that are skipped as opaque items.
const OPAQUE_KEYWORDS: &[&str] = &[
    "struct",
    "enum",
    "union",
    "use",
    "static",
    "const",
    "type",
    "macro_rules",
    "macro",
];

/// Modifier keywords that may precede an item keyword.
const MODIFIERS: &[&str] = &["pub", "default", "async", "extern"];

/// Parses items in `tokens[*pos..end]` into `out`. `inner` receives
/// `#![...]` attributes when the caller wants them (top level only).
fn parse_items(
    tokens: &[Token],
    pos: &mut usize,
    end: usize,
    out: &mut Vec<Item>,
    mut inner: Option<&mut Vec<Attr>>,
) {
    while *pos < end {
        // Inner attribute `#![...]`.
        if tokens[*pos].is_punct('#')
            && tokens.get(*pos + 1).is_some_and(|t| t.is_punct('!'))
            && tokens.get(*pos + 2).is_some_and(|t| t.is_punct('['))
        {
            let line = tokens[*pos].line;
            *pos += 3;
            let attr = read_attr_body(tokens, pos, end, line);
            if let Some(sink) = inner.as_deref_mut() {
                sink.push(attr);
            }
            continue;
        }
        // Outer attributes.
        let mut attrs = Vec::new();
        while *pos < end
            && tokens[*pos].is_punct('#')
            && tokens.get(*pos + 1).is_some_and(|t| t.is_punct('['))
        {
            let line = tokens[*pos].line;
            *pos += 2;
            attrs.push(read_attr_body(tokens, pos, end, line));
        }
        if *pos >= end {
            break;
        }
        if let Some(item) = parse_one_item(tokens, pos, end, attrs) {
            out.push(item);
        }
    }
}

/// Parses one item (with already-collected attributes) or skips one token.
fn parse_one_item(tokens: &[Token], pos: &mut usize, end: usize, attrs: Vec<Attr>) -> Option<Item> {
    let start = *pos;
    let start_line = tokens[start].line;
    let mut is_unsafe = false;
    let mut unsafe_line = 0u32;

    // Consume modifiers (`pub`, `pub(crate)`, `const fn`, `unsafe fn`,
    // `extern "C" fn`, ...) up to the item keyword.
    let mut i = *pos;
    while i < end {
        match tokens[i].ident() {
            Some("unsafe") => {
                is_unsafe = true;
                unsafe_line = tokens[i].line;
                i += 1;
            }
            Some("const") => {
                // `const fn` is a modifier only when `fn` (or more
                // modifiers) follow; otherwise it is a `const` item.
                if tokens
                    .get(i + 1)
                    .and_then(Token::ident)
                    .is_some_and(|id| id == "fn" || MODIFIERS.contains(&id) || id == "unsafe")
                {
                    i += 1;
                } else {
                    break;
                }
            }
            Some(m) if MODIFIERS.contains(&m) => {
                i += 1;
                // `pub(crate)` / `pub(in path)` visibility scope.
                if tokens.get(i).is_some_and(|t| t.is_punct('(')) {
                    i = skip_delimited(tokens, i, end, '(', ')');
                }
                // `extern "C"` ABI string.
                if m == "extern" && tokens.get(i).is_some_and(|t| t.str_lit().is_some()) {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let Some(keyword) = tokens.get(i).filter(|_| i < end).and_then(Token::ident) else {
        *pos += 1;
        return None;
    };

    if SCOPE_KEYWORDS.contains(&keyword) {
        let kind = match keyword {
            "fn" => ItemKind::Fn,
            "mod" => ItemKind::Mod,
            "impl" => ItemKind::Impl,
            "trait" => ItemKind::Trait,
            _ => unreachable!("keyword list matches kinds"),
        };
        i += 1;
        let name = match kind {
            ItemKind::Fn | ItemKind::Mod | ItemKind::Trait => tokens
                .get(i)
                .filter(|_| i < end)
                .and_then(Token::ident)
                .unwrap_or("")
                .to_string(),
            _ => String::new(),
        };
        if kind == ItemKind::Fn && name.is_empty() {
            // `fn(i32) -> i32` function-pointer type position, not an item.
            *pos = i;
            return None;
        }
        // Scan to the body `{` or a terminating `;` (`mod name;`, trait
        // method declaration, extern fn declaration).
        while i < end && !tokens[i].is_punct('{') && !tokens[i].is_punct(';') {
            i += 1;
        }
        if i >= end || tokens[i].is_punct(';') {
            *pos = (i + 1).min(end);
            return Some(Item {
                kind,
                name,
                line: start_line,
                unsafe_line,
                span: (start, *pos),
                body_span: None,
                attrs,
                is_unsafe,
                children: Vec::new(),
            });
        }
        let body_start = i + 1;
        let body_end = matching_brace(tokens, i, end);
        let mut children = Vec::new();
        match kind {
            ItemKind::Fn => scan_fn_body(tokens, body_start, body_end, &mut children),
            _ => {
                let mut p = body_start;
                parse_items(tokens, &mut p, body_end, &mut children, None);
            }
        }
        *pos = (body_end + 1).min(end);
        return Some(Item {
            kind,
            name,
            line: start_line,
            unsafe_line,
            span: (start, *pos),
            body_span: (kind == ItemKind::Fn).then_some((body_start, body_end)),
            attrs,
            is_unsafe,
            children,
        });
    }

    if OPAQUE_KEYWORDS.contains(&keyword) || is_unsafe {
        // Opaque item (struct/enum/const/use/...), or `unsafe impl Send`
        // style already handled above; skip to its end.
        *pos = skip_opaque_item(tokens, i, end);
        return None;
    }

    // Not an item start (stray expression token at item level, macro
    // invocation, ...). Advance one token; macro bodies are harmless
    // because their delimiters are balanced and contain no item keywords
    // we would misparse into overlapping spans.
    *pos += 1;
    None
}

/// Reads an attribute body starting just after `[`, collecting ident and
/// string atoms until the matching `]`.
fn read_attr_body(tokens: &[Token], pos: &mut usize, end: usize, line: u32) -> Attr {
    let mut depth = 1usize;
    let mut attr = Attr {
        line,
        idents: Vec::new(),
        strs: Vec::new(),
    };
    while *pos < end && depth > 0 {
        match &tokens[*pos].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) => attr.idents.push(s.clone()),
            Tok::Str(s) => attr.strs.push(s.clone()),
            _ => {}
        }
        *pos += 1;
    }
    attr
}

/// Scans a function body for `unsafe { ... }` blocks and nested items.
/// Unsafe blocks nested inside other unsafe blocks are recorded too (each
/// one carries its own safety obligation).
fn scan_fn_body(tokens: &[Token], start: usize, end: usize, out: &mut Vec<Item>) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("unsafe") {
            let next = tokens.get(i + 1).filter(|_| i + 1 < end);
            if next.is_some_and(|n| n.is_punct('{')) {
                let body_end = matching_brace(tokens, i + 1, end);
                out.push(Item {
                    kind: ItemKind::UnsafeBlock,
                    name: String::new(),
                    line: t.line,
                    unsafe_line: t.line,
                    span: (i, (body_end + 1).min(end)),
                    body_span: None,
                    attrs: Vec::new(),
                    is_unsafe: true,
                    children: Vec::new(),
                });
                // Keep scanning *inside* the block for nested unsafe.
                i += 2;
                continue;
            }
            if next.is_some_and(|n| {
                n.ident()
                    .is_some_and(|id| id == "fn" || MODIFIERS.contains(&id) || id == "extern")
            }) {
                // Nested `unsafe fn` item inside a body.
                let mut p = i;
                parse_items_single(tokens, &mut p, end, out);
                i = p;
                continue;
            }
            i += 1;
            continue;
        }
        if t.ident().is_some_and(|id| SCOPE_KEYWORDS.contains(&id)) {
            // Possible nested item (`fn helper() {...}` inside a body).
            // `fn` in type position (`fn(i32)`) is rejected by the parser.
            let before = i;
            let mut p = i;
            parse_items_single(tokens, &mut p, end, out);
            i = p.max(before + 1);
            continue;
        }
        i += 1;
    }
}

/// Parses exactly one item at `*pos` (no attribute collection — nested
/// items inside bodies rarely carry rule-relevant attributes, and `#`
/// tokens in expression position would misparse).
fn parse_items_single(tokens: &[Token], pos: &mut usize, end: usize, out: &mut Vec<Item>) {
    if let Some(item) = parse_one_item(tokens, pos, end, Vec::new()) {
        out.push(item);
    }
}

/// Returns the index of the `}` matching the `{` at `open`, or `end`.
fn matching_brace(tokens: &[Token], open: usize, end: usize) -> usize {
    debug_assert!(tokens[open].is_punct('{'));
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Skips past a `open ... close` delimited run starting at `open_idx`.
fn skip_delimited(tokens: &[Token], open_idx: usize, end: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < end {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Skips an opaque item starting at `i`: ends at a `;` outside delimiters,
/// or at the matching `}` of its first brace block (struct/enum bodies,
/// `macro_rules!` braces, const-block initializers run to their `;`).
fn skip_opaque_item(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    let mut seen_brace_at_top = false;
    while j < end {
        match &tokens[j].tok {
            Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                if tokens[j].is_punct('{') && depth == 0 {
                    seen_brace_at_top = true;
                }
                depth += 1;
            }
            Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                depth = depth.saturating_sub(1);
                if depth == 0 && seen_brace_at_top && tokens[j].is_punct('}') {
                    // A top-level brace block closed; `struct S { .. }` and
                    // `macro_rules! m { .. }` end here, initializer blocks
                    // (`const X: T = { .. };`) continue to the `;`.
                    if !tokens
                        .get(j + 1)
                        .is_some_and(|t| t.is_punct(';') || t.is_punct('.') || t.is_punct('='))
                    {
                        return j + 1;
                    }
                }
            }
            Tok::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    end
}

// ---------------------------------------------------------------------------
// Statement / expression tree (C-series support)
// ---------------------------------------------------------------------------

/// A `{ ... }` body parsed into statements, with its token span.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Token span `[start, end)` strictly inside the braces.
    pub span: (usize, usize),
}

/// Control structure of one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression / `let` / assignment statement; brace sub-blocks that
    /// execute inline where they appear are in [`Stmt::subs`].
    Plain,
    /// `if cond { .. } [else ..]`. An `else if` chain nests as an
    /// else-block holding a single `If` statement.
    If {
        /// The then-branch body.
        then_blk: Block,
        /// The else-branch body, when present.
        else_blk: Option<Block>,
    },
    /// `while cond { .. }` and `for pat in iter { .. }` (both may run
    /// zero times).
    While {
        /// The loop body.
        body: Block,
    },
    /// `loop { .. }` (runs at least once).
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `match scrutinee { arms }`; one block per arm (guard calls are
    /// prepended to the arm block as a synthetic head statement).
    Match {
        /// Arm bodies in source order.
        arms: Vec<Block>,
    },
}

/// One call expression observed in a statement: free `f(..)`, path
/// `A::b::f(..)`, or method `recv.f(..)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Call {
    /// Final callee name (`f` in all the forms above).
    pub callee: String,
    /// Receiver path for method calls (`self.shared.queue.lock()` →
    /// `["self", "shared", "queue"]`) or the module/type path of a
    /// path-qualified call (`Response::json(..)` → `["Response"]`);
    /// empty for unqualified free calls and for receivers that are not
    /// plain ident paths (call results, indexing, parenthesized).
    pub recv: Vec<String>,
    /// Identifier sequence of each top-level argument, in order
    /// (`f(&mut self.dir, n)` → `[["self", "dir"], ["n"]]`); an argument
    /// with no identifiers contributes an empty list.
    pub args: Vec<Vec<String>>,
    /// First argument parsed as an integer, when it is a single numeric
    /// literal (`Response::json(201, ..)` → `Some(201)`).
    pub arg0_num: Option<i64>,
    /// True for `recv.f(..)` method syntax.
    pub is_method: bool,
    /// 1-based source line of the callee token.
    pub line: u32,
    /// Token index of the callee.
    pub tok: usize,
    /// True when the call sits inside a closure body: it runs later (or
    /// never), so path-sensitive rules must not treat it as reached at
    /// this point.
    pub deferred: bool,
    /// True when the call's value is consumed through a projection
    /// chained onto it (`lock(&g).progress`, `lock(&q).pending.len()`):
    /// whatever the statement binds is the projection, not the call's
    /// return value itself. Identity adapters that hand the value back
    /// (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`) are looked
    /// through and do not count as projections.
    pub projected: bool,
}

/// One statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Control structure.
    pub kind: StmtKind,
    /// 1-based line the statement starts on.
    pub line: u32,
    /// Token span `[start, end)` covering the whole statement.
    pub span: (usize, usize),
    /// End of the statement's flat head: for structured statements, the
    /// index of the first body `{`; for plain statements, `span.1`.
    pub head_end: usize,
    /// Names bound by `let` patterns (including `if let` / `while let`
    /// and `for` patterns). Path segments of enum patterns are included;
    /// consumers match on exact names they themselves bound.
    pub bindings: Vec<String>,
    /// Calls in the statement head (condition / scrutinee / flat
    /// expression), including deferred closure-body calls, in token
    /// order.
    pub calls: Vec<Call>,
    /// Brace sub-blocks of a plain statement (bare `{ .. }` blocks,
    /// `unsafe { .. }`, struct-literal and block-expression braces at
    /// the statement's top level): they execute inline where they
    /// appear.
    pub subs: Vec<Block>,
    /// True for `return ...` statements.
    pub is_return: bool,
}

impl Stmt {
    /// All directly nested blocks in source order: structured bodies
    /// (then/else, loop body, match arms) followed by plain sub-blocks.
    pub fn blocks(&self) -> Vec<&Block> {
        let mut out: Vec<&Block> = Vec::new();
        match &self.kind {
            StmtKind::Plain => {}
            StmtKind::If { then_blk, else_blk } => {
                out.push(then_blk);
                if let Some(e) = else_blk {
                    out.push(e);
                }
            }
            StmtKind::While { body } | StmtKind::Loop { body } => out.push(body),
            StmtKind::Match { arms } => out.extend(arms.iter()),
        }
        out.extend(self.subs.iter());
        out
    }
}

/// Item keywords that, at statement position, introduce a nested item
/// whose code does not execute here (the item parser records it
/// separately for per-fn analysis).
const ITEM_IN_BODY: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "impl",
    "trait",
    "mod",
    "use",
    "type",
    "macro_rules",
];

/// Keywords that can precede `(` without being a call.
const NON_CALLEE_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "unsafe", "fn", "impl", "where", "pub", "dyn", "await",
];

/// Parses the token range `[start, end)` (a function body) into a
/// statement tree. Fail-open: constructs the grammar does not model are
/// consumed as part of a plain statement (their calls still collected),
/// and the cursor advances every iteration, so malformed input can at
/// worst produce a coarser tree — never a panic and never an infinite
/// loop.
pub fn parse_body(tokens: &[Token], start: usize, end: usize) -> Block {
    let end = end.min(tokens.len());
    let start = start.min(end);
    let mut stmts = Vec::new();
    let mut i = start;
    while i < end {
        if tokens[i].is_punct(';') || tokens[i].is_punct(',') {
            i += 1;
            continue;
        }
        let before = i;
        if let Some(stmt) = parse_stmt(tokens, &mut i, end) {
            stmts.push(stmt);
        }
        if i <= before {
            i = before + 1; // fail-open: always make progress
        }
    }
    Block {
        stmts,
        span: (start, end),
    }
}

/// Dispatches one statement at `*pos`. Returns `None` for nested items
/// (skipped opaquely).
fn parse_stmt(tokens: &[Token], pos: &mut usize, end: usize) -> Option<Stmt> {
    let i = *pos;
    match tokens[i].ident() {
        Some("let") => parse_let(tokens, pos, end),
        Some("if") => Some(parse_if(tokens, pos, end, Vec::new())),
        Some("while") | Some("for") => Some(parse_while(tokens, pos, end)),
        Some("loop") => Some(parse_loop(tokens, pos, end, Vec::new())),
        Some("match") => Some(parse_match(tokens, pos, end, Vec::new())),
        Some(kw) if ITEM_IN_BODY.contains(&kw) => {
            *pos = skip_opaque_item(tokens, i, end);
            None
        }
        _ => Some(parse_plain(tokens, pos, end, Vec::new())),
    }
}

/// Parses `let PAT [: TYPE] = INIT ;`, collecting pattern binding names,
/// then dispatching the initializer (which may itself be an `if` /
/// `match` / `loop` expression).
fn parse_let(tokens: &[Token], pos: &mut usize, end: usize) -> Option<Stmt> {
    let start = *pos;
    let line = tokens[start].line;
    let mut bindings = Vec::new();
    let mut i = start + 1;
    let mut depth = 0usize;
    let mut in_type = false;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(':') {
            in_type = true;
        } else if depth == 0 && t.is_punct(';') {
            // `let x;` — declaration without initializer.
            *pos = i + 1;
            return Some(Stmt {
                kind: StmtKind::Plain,
                line,
                span: (start, i + 1),
                head_end: i + 1,
                bindings,
                calls: Vec::new(),
                subs: Vec::new(),
                is_return: false,
            });
        } else if depth == 0 && t.is_punct('=') {
            i += 1;
            break;
        } else if !in_type {
            if let Some(id) = t.ident() {
                if !matches!(id, "mut" | "ref" | "box") {
                    bindings.push(id.to_string());
                }
            }
        }
        i += 1;
    }
    if i >= end {
        *pos = end;
        return Some(Stmt {
            kind: StmtKind::Plain,
            line,
            span: (start, end),
            head_end: end,
            bindings,
            calls: Vec::new(),
            subs: Vec::new(),
            is_return: false,
        });
    }
    *pos = i;
    let mut stmt = match tokens[i].ident() {
        Some("if") => parse_if(tokens, pos, end, bindings),
        Some("match") => parse_match(tokens, pos, end, bindings),
        Some("loop") => parse_loop(tokens, pos, end, bindings),
        _ => parse_plain(tokens, pos, end, bindings),
    };
    stmt.line = line;
    stmt.span.0 = start;
    Some(stmt)
}

/// Parses a plain (expression / assignment) statement. `bindings`
/// carries `let` pattern names when called from [`parse_let`].
fn parse_plain(tokens: &[Token], pos: &mut usize, end: usize, bindings: Vec<String>) -> Stmt {
    let start = *pos;
    let line = tokens[start].line;
    let mut calls = Vec::new();
    let mut subs = Vec::new();
    let is_return = tokens[start].is_ident("return");
    let mut depth = 0usize; // parens + brackets
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break; // enclosing delimiter closes: not ours
            }
            depth -= 1;
            i += 1;
            continue;
        }
        if depth == 0 && (t.is_punct(';') || t.is_punct(',')) {
            i += 1; // consume the terminator / arm-element boundary
            break;
        }
        if depth == 0 && t.is_punct('}') {
            break; // enclosing block closes
        }
        if t.is_punct('{') {
            if depth > 0 {
                // Struct literal or block expression inside parens: scan
                // transparently (its calls are still collected below).
                i += 1;
                continue;
            }
            let body_end = matching_brace(tokens, i, end);
            subs.push(parse_body(tokens, i + 1, body_end));
            i = (body_end + 1).min(end);
            // Only `else` / method-chain / `?` continuations extend the
            // statement past a top-level block; anything else (including
            // a missing semicolon after `unsafe { .. }` tail blocks)
            // ends it.
            match tokens.get(i).filter(|_| i < end) {
                Some(n) if n.is_ident("else") || n.is_punct('.') || n.is_punct('?') => {}
                _ => break,
            }
            continue;
        }
        if let Some(next) = try_closure(tokens, i, end, start, &mut calls) {
            i = next;
            continue;
        }
        if let Some(call) = read_call(tokens, i, end, false) {
            calls.push(call);
        }
        i += 1;
    }
    *pos = i;
    Stmt {
        kind: StmtKind::Plain,
        line,
        span: (start, i),
        head_end: i,
        bindings,
        calls,
        subs,
        is_return,
    }
}

/// Parses `if cond { .. } [else if .. | else { .. }]`.
fn parse_if(tokens: &[Token], pos: &mut usize, end: usize, mut bindings: Vec<String>) -> Stmt {
    let start = *pos;
    let line = tokens[start].line;
    let mut calls = Vec::new();
    let mut i = start + 1;
    let brace = scan_head(tokens, &mut i, end, &mut calls, &mut bindings);
    if brace >= end {
        // Malformed condition: degrade to a flat statement.
        *pos = end;
        return Stmt {
            kind: StmtKind::Plain,
            line,
            span: (start, end),
            head_end: end,
            bindings,
            calls,
            subs: Vec::new(),
            is_return: false,
        };
    }
    let then_end = matching_brace(tokens, brace, end);
    let then_blk = parse_body(tokens, brace + 1, then_end);
    let mut i = (then_end + 1).min(end);
    let mut else_blk = None;
    if i < end && tokens[i].is_ident("else") {
        i += 1;
        if i < end && tokens[i].is_ident("if") {
            let mut p = i;
            let nested = parse_if(tokens, &mut p, end, Vec::new());
            let span = nested.span;
            else_blk = Some(Block {
                stmts: vec![nested],
                span,
            });
            i = p;
        } else if i < end && tokens[i].is_punct('{') {
            let else_end = matching_brace(tokens, i, end);
            else_blk = Some(parse_body(tokens, i + 1, else_end));
            i = (else_end + 1).min(end);
        }
    }
    *pos = i;
    Stmt {
        kind: StmtKind::If { then_blk, else_blk },
        line,
        span: (start, i),
        head_end: brace,
        bindings,
        calls,
        subs: Vec::new(),
        is_return: false,
    }
}

/// Parses `while cond { .. }` / `while let PAT = expr { .. }` /
/// `for PAT in iter { .. }` — all modeled as [`StmtKind::While`].
fn parse_while(tokens: &[Token], pos: &mut usize, end: usize) -> Stmt {
    let start = *pos;
    let line = tokens[start].line;
    let is_for = tokens[start].is_ident("for");
    let mut bindings = Vec::new();
    let mut i = start + 1;
    if is_for {
        // Pattern up to `in` at depth 0.
        let mut depth = 0usize;
        while i < end {
            let t = &tokens[i];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_ident("in") {
                i += 1;
                break;
            } else if t.is_punct('{') {
                break; // malformed `for`; scan_head will stop here
            } else if let Some(id) = t.ident() {
                if !matches!(id, "mut" | "ref") {
                    bindings.push(id.to_string());
                }
            }
            i += 1;
        }
    }
    let mut calls = Vec::new();
    let brace = scan_head(tokens, &mut i, end, &mut calls, &mut bindings);
    if brace >= end {
        *pos = end;
        return Stmt {
            kind: StmtKind::Plain,
            line,
            span: (start, end),
            head_end: end,
            bindings,
            calls,
            subs: Vec::new(),
            is_return: false,
        };
    }
    let body_end = matching_brace(tokens, brace, end);
    let body = parse_body(tokens, brace + 1, body_end);
    *pos = (body_end + 1).min(end);
    Stmt {
        kind: StmtKind::While { body },
        line,
        span: (start, *pos),
        head_end: brace,
        bindings,
        calls,
        subs: Vec::new(),
        is_return: false,
    }
}

/// Parses `loop { .. }`.
fn parse_loop(tokens: &[Token], pos: &mut usize, end: usize, bindings: Vec<String>) -> Stmt {
    let start = *pos;
    let line = tokens[start].line;
    let i = start + 1;
    if i < end && tokens[i].is_punct('{') {
        let body_end = matching_brace(tokens, i, end);
        let body = parse_body(tokens, i + 1, body_end);
        *pos = (body_end + 1).min(end);
        return Stmt {
            kind: StmtKind::Loop { body },
            line,
            span: (start, *pos),
            head_end: i,
            bindings,
            calls: Vec::new(),
            subs: Vec::new(),
            is_return: false,
        };
    }
    // `loop` not followed by `{` (malformed): flat fallback.
    *pos = i;
    let mut stmt = parse_plain(tokens, pos, end, bindings);
    stmt.line = line;
    stmt.span.0 = start;
    stmt
}

/// Parses `match scrutinee { PAT [if GUARD] => BODY, .. }`.
fn parse_match(tokens: &[Token], pos: &mut usize, end: usize, mut bindings: Vec<String>) -> Stmt {
    let start = *pos;
    let line = tokens[start].line;
    let mut calls = Vec::new();
    let mut i = start + 1;
    let brace = scan_head(tokens, &mut i, end, &mut calls, &mut bindings);
    if brace >= end {
        *pos = end;
        return Stmt {
            kind: StmtKind::Plain,
            line,
            span: (start, end),
            head_end: end,
            bindings,
            calls,
            subs: Vec::new(),
            is_return: false,
        };
    }
    let body_end = matching_brace(tokens, brace, end);
    let mut arms = Vec::new();
    let mut j = brace + 1;
    while j < body_end {
        // Pattern + optional guard, up to `=>` at depth 0.
        let arm_start = j;
        let mut depth = 0usize;
        let mut arrow = body_end;
        while j < body_end {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0
                && t.is_punct('=')
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('>'))
            {
                arrow = j;
                break;
            }
            j += 1;
        }
        if arrow >= body_end {
            break; // no more arms
        }
        // Guard calls (`Some(x) if x.is_terminal() => ..`).
        let mut head_calls = Vec::new();
        scan_calls(tokens, arm_start, arrow, &mut head_calls, false);
        // Arm body: a brace block, or an expression up to `,` at depth 0.
        j = arrow + 2;
        let mut arm_blk;
        if j < body_end && tokens[j].is_punct('{') {
            let arm_end = matching_brace(tokens, j, body_end);
            arm_blk = parse_body(tokens, j + 1, arm_end);
            j = (arm_end + 1).min(body_end);
        } else {
            let expr_start = j;
            let mut depth = 0usize;
            while j < body_end {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                } else if depth == 0 && t.is_punct(',') {
                    break;
                }
                j += 1;
            }
            arm_blk = parse_body(tokens, expr_start, j);
        }
        if !head_calls.is_empty() {
            // Synthetic head statement so guard calls stay visible to the
            // analyzers walking arm blocks.
            arm_blk.stmts.insert(
                0,
                Stmt {
                    kind: StmtKind::Plain,
                    line: tokens[arm_start].line,
                    span: (arm_start, arrow),
                    head_end: arrow,
                    bindings: Vec::new(),
                    calls: head_calls,
                    subs: Vec::new(),
                    is_return: false,
                },
            );
        }
        arms.push(arm_blk);
        if j < body_end && tokens[j].is_punct(',') {
            j += 1;
        }
    }
    *pos = (body_end + 1).min(end);
    Stmt {
        kind: StmtKind::Match { arms },
        line,
        span: (start, *pos),
        head_end: brace,
        bindings,
        calls,
        subs: Vec::new(),
        is_return: false,
    }
}

/// Scans a control-flow head (`if` / `while` condition, `match`
/// scrutinee) up to its body's `{` at depth 0, collecting calls, closure
/// bodies (deferred), and `let`-pattern bindings (`if let PAT = ..`).
/// Returns the brace index, or `end` when the head is malformed.
fn scan_head(
    tokens: &[Token],
    i: &mut usize,
    end: usize,
    calls: &mut Vec<Call>,
    bindings: &mut Vec<String>,
) -> usize {
    let head_start = *i;
    let mut depth = 0usize;
    let mut in_let_pat = false;
    while *i < end {
        let t = &tokens[*i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            *i += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
            *i += 1;
            continue;
        }
        if t.is_punct('{') {
            if depth == 0 {
                // Struct literals are illegal unparenthesized in
                // condition position, so a depth-0 `{` is the body.
                return *i;
            }
            *i += 1;
            continue;
        }
        if t.is_ident("let") {
            in_let_pat = true;
            *i += 1;
            continue;
        }
        if in_let_pat {
            if depth == 0 && t.is_punct('=') {
                in_let_pat = false;
            } else if let Some(id) = t.ident() {
                if !matches!(id, "mut" | "ref" | "box") {
                    bindings.push(id.to_string());
                }
            }
            *i += 1;
            continue;
        }
        if let Some(next) = try_closure(tokens, *i, end, head_start, calls) {
            *i = next;
            continue;
        }
        if let Some(call) = read_call(tokens, *i, end, false) {
            calls.push(call);
        }
        *i += 1;
    }
    end
}

/// Collects every call in `[from, to)` into `calls`. When `deferred` is
/// false, closure bodies found in the range are collected with
/// `deferred = true`; a deferred range stays deferred throughout.
fn scan_calls(tokens: &[Token], from: usize, to: usize, calls: &mut Vec<Call>, deferred: bool) {
    let mut i = from;
    while i < to {
        if !deferred {
            if let Some(next) = try_closure(tokens, i, to, from, calls) {
                i = next;
                continue;
            }
        }
        if let Some(call) = read_call(tokens, i, to, deferred) {
            calls.push(call);
        }
        i += 1;
    }
}

/// If `tokens[i]` opens a closure (`|args| body`, `move |args| body`,
/// `|| body`), collects the body's calls as deferred and returns the
/// index just past the closure body. Detection: a `|` whose preceding
/// token is an opening delimiter, separator, `=`, `:`, or `move` /
/// `return` / `else` — operand positions (`a | b`, `a || b`) never
/// match, because their `|` follows an operand or another `|`.
fn try_closure(
    tokens: &[Token],
    i: usize,
    to: usize,
    range_start: usize,
    calls: &mut Vec<Call>,
) -> Option<usize> {
    if !tokens[i].is_punct('|') {
        return None;
    }
    let prev_ok = i == range_start || i == 0 || {
        let p = &tokens[i - 1];
        p.is_punct('(')
            || p.is_punct(',')
            || p.is_punct('=')
            || p.is_punct('{')
            || p.is_punct(';')
            || p.is_punct(':')
            || p.is_ident("move")
            || p.is_ident("return")
            || p.is_ident("else")
    };
    if !prev_ok {
        return None;
    }
    // Parameters: to the closing `|`.
    let mut j = i + 1;
    while j < to && !tokens[j].is_punct('|') {
        j += 1;
    }
    if j + 1 >= to {
        return Some(to);
    }
    j += 1; // past closing '|'
    if tokens[j].is_punct('{') {
        let body_end = matching_brace(tokens, j, to);
        scan_calls(tokens, j + 1, body_end, calls, true);
        return Some((body_end + 1).min(to));
    }
    // Expression body: to `,` / `;` at depth 0 or a closing delimiter.
    let body_start = j;
    let mut depth = 0usize;
    while j < to {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(',') || t.is_punct(';')) {
            break;
        }
        j += 1;
    }
    scan_calls(tokens, body_start, j, calls, true);
    Some(j)
}

/// Reads one call expression whose callee ident is at `i` (followed by
/// `(`), extracting the receiver/qualifier path and per-argument ident
/// lists. Returns `None` when `tokens[i]` is not a callee (keyword, `fn`
/// definition head, macro name, plain ident).
fn read_call(tokens: &[Token], i: usize, end: usize, deferred: bool) -> Option<Call> {
    let name = tokens[i].ident()?;
    if !tokens
        .get(i + 1)
        .filter(|_| i + 1 < end)
        .is_some_and(|t| t.is_punct('('))
    {
        return None;
    }
    if NON_CALLEE_KEYWORDS.contains(&name) {
        return None;
    }
    if i > 0 && (tokens[i - 1].is_ident("fn") || tokens[i - 1].is_punct('!')) {
        // `fn name(..)` definition head; `name!(..)` is a macro and its
        // `!` lexes between ident and paren, so this arm is defensive.
        return None;
    }
    let is_method = i > 0 && tokens[i - 1].is_punct('.');
    let mut recv = Vec::new();
    if is_method {
        // Walk the receiver path back through `ident . ident . ...`.
        let mut j = i - 1; // at '.'
        while j > 0 {
            if let Some(id) = tokens[j - 1].ident() {
                recv.push(id.to_string());
                if j >= 2 && tokens[j - 2].is_punct('.') {
                    j -= 2;
                    continue;
                }
            } else {
                // Receiver is not a plain path (call result, index,
                // parenthesized): leave it unresolved.
                recv.clear();
            }
            break;
        }
        recv.reverse();
    } else if i >= 3 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
        // Path-qualified free call `a::B::f(..)`: walk segments back.
        let mut k = i as isize - 3;
        while k >= 0 {
            if let Some(id) = tokens[k as usize].ident() {
                recv.push(id.to_string());
                if k >= 2
                    && tokens[(k - 1) as usize].is_punct(':')
                    && tokens[(k - 2) as usize].is_punct(':')
                {
                    k -= 3;
                    continue;
                }
            }
            break;
        }
        recv.reverse();
    }
    // Arguments: split the paren range on top-level commas.
    let args_end = skip_delimited(tokens, i + 1, end, '(', ')');
    let inner_end = args_end.saturating_sub(1).max(i + 2); // before ')'
    let mut args: Vec<Vec<String>> = Vec::new();
    let mut arg0_toks = 0usize;
    let mut arg0_num = None;
    {
        let mut depth = 0usize;
        let mut cur: Vec<String> = Vec::new();
        let mut cur_toks = 0usize;
        let mut any = false;
        let mut k = i + 2;
        while k < inner_end {
            let t = &tokens[k];
            any = true;
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_punct(',') {
                if args.is_empty() {
                    arg0_toks = cur_toks;
                }
                args.push(std::mem::take(&mut cur));
                cur_toks = 0;
                k += 1;
                continue;
            }
            if let Some(id) = t.ident() {
                if !matches!(id, "mut" | "ref" | "move" | "as" | "dyn") {
                    cur.push(id.to_string());
                }
            }
            if args.is_empty() && arg0_num.is_none() && cur_toks == 0 {
                if let Some(text) = t.num_lit() {
                    arg0_num = crate::lexer::parse_num(text).map(|v| v as i64);
                }
            }
            cur_toks += 1;
            k += 1;
        }
        if any {
            if args.is_empty() {
                arg0_toks = cur_toks;
            }
            args.push(cur);
        }
    }
    if arg0_toks != 1 {
        arg0_num = None; // only a lone numeric literal counts
    }
    // Projection: look past identity adapters, then a `.segment` means
    // the statement consumes a projection of the value, not the value.
    let mut projected = false;
    let mut after = args_end;
    while after + 1 < end && tokens[after].is_punct('.') {
        let Some(id) = tokens[after + 1].ident() else {
            break;
        };
        let is_call = after + 2 < end && tokens[after + 2].is_punct('(');
        if is_call && matches!(id, "unwrap" | "expect" | "unwrap_or_else") {
            after = skip_delimited(tokens, after + 2, end, '(', ')');
            continue;
        }
        projected = true;
        break;
    }
    Some(Call {
        callee: name.to_string(),
        recv,
        args,
        arg0_num,
        is_method,
        line: tokens[i].line,
        tok: i,
        deferred,
        projected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        parse(&lex(src).tokens)
    }

    #[test]
    fn parses_fns_mods_impls() {
        let src = r#"
pub fn alpha() { let x = 1; }
mod inner {
    fn beta() {}
    impl Foo {
        pub(crate) fn gamma(&self) -> u32 { 7 }
    }
}
trait T { fn decl(&self); fn with_default(&self) {} }
"#;
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 3);
        assert_eq!(tree.items[0].kind, ItemKind::Fn);
        assert_eq!(tree.items[0].name, "alpha");
        assert_eq!(tree.items[1].kind, ItemKind::Mod);
        assert_eq!(tree.items[1].name, "inner");
        let inner = &tree.items[1].children;
        assert_eq!(inner.len(), 2);
        assert_eq!(inner[0].name, "beta");
        assert_eq!(inner[1].kind, ItemKind::Impl);
        assert_eq!(inner[1].children[0].name, "gamma");
        let tr = &tree.items[2];
        assert_eq!(tr.kind, ItemKind::Trait);
        let names: Vec<&str> = tr.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["decl", "with_default"]);
    }

    #[test]
    fn unsafe_fn_and_blocks_are_recorded() {
        let src = r#"
unsafe fn kernel(x: *const f64) -> f64 { *x }
pub fn dispatch(x: &[f64]) -> f64 {
    if feature() {
        // SAFETY: checked
        return unsafe { kernel(x.as_ptr()) };
    }
    x[0]
}
"#;
        let tree = tree_of(src);
        let kernel = &tree.items[0];
        assert!(kernel.is_unsafe);
        assert_eq!(kernel.unsafe_line, 2);
        assert_eq!(kernel.kind, ItemKind::Fn);
        let dispatch = &tree.items[1];
        assert!(!dispatch.is_unsafe);
        let blocks: Vec<&Item> = dispatch
            .children
            .iter()
            .filter(|c| c.kind == ItemKind::UnsafeBlock)
            .collect();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].line, 6);
    }

    #[test]
    fn nested_unsafe_blocks_each_recorded() {
        let src = "fn f() { unsafe { unsafe { x } } }";
        let tree = tree_of(src);
        let blocks = tree.collect(|i| i.kind == ItemKind::UnsafeBlock);
        assert_eq!(blocks.len(), 2);
    }

    #[test]
    fn attributes_and_cfg_tracking() {
        let src = r#"
#[cfg(test)]
mod tests { fn t() {} }
#[cfg(not(test))]
fn live() {}
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn wide() {}
"#;
        let tree = tree_of(src);
        assert!(tree.items[0].is_test_only());
        assert!(!tree.items[1].is_test_only());
        let wide = &tree.items[2];
        assert!(wide.is_avx2_kernel());
        assert!(wide.is_unsafe);
        assert_eq!(wide.attrs.len(), 2);
        assert_eq!(wide.attrs[1].strs, vec!["avx2"]);
    }

    #[test]
    fn inner_attrs_are_collected() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}";
        let tree = tree_of(src);
        assert_eq!(tree.inner_attrs.len(), 1);
        assert_eq!(tree.inner_attrs[0].idents, vec!["forbid", "unsafe_code"]);
        assert_eq!(tree.items.len(), 1);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn f() { let g: fn(i32) -> i32 = h; let u: unsafe fn() = k; }";
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 1);
        assert!(tree.items[0].children.is_empty());
    }

    #[test]
    fn opaque_items_are_skipped_without_derailing() {
        let src = r#"
use std::fmt;
const N: usize = { 3 + 4 };
static S: &str = "x";
struct Point { x: f64, y: f64 }
enum E { A, B(u8) }
macro_rules! m { ($x:expr) => { $x + 1 }; }
fn after_all() {}
"#;
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 1);
        assert_eq!(tree.items[0].name, "after_all");
    }

    #[test]
    fn spans_cover_items() {
        let src = "fn a() { x } fn b() { y }";
        let tree = tree_of(src);
        let toks = lex(src).tokens;
        let (s, e) = tree.items[0].span;
        assert!(toks[s].is_ident("fn"));
        assert!(toks[e - 1].is_punct('}'));
        assert!(tree.items[1].span.0 >= e);
    }

    #[test]
    fn unsafe_impl_and_trait() {
        let src = "unsafe impl Send for X {} unsafe trait T {} fn live() {}";
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 3);
        assert!(tree.items[0].is_unsafe);
        assert_eq!(tree.items[0].kind, ItemKind::Impl);
        assert!(tree.items[1].is_unsafe);
        assert_eq!(tree.items[1].kind, ItemKind::Trait);
    }

    // -- statement tree --------------------------------------------------

    /// Parses the body of the first (only) fn in `src`.
    fn body_of(src: &str) -> (Vec<Token>, Block) {
        let tokens = lex(src).tokens;
        let tree = parse(&tokens);
        let (s, e) = tree.items[0].body_span.expect("fn has a body");
        let block = parse_body(&tokens, s, e);
        (tokens, block)
    }

    #[test]
    fn body_span_points_inside_braces() {
        let src = "fn f(x: u32) -> u32 { g(x); 7 }";
        let tokens = lex(src).tokens;
        let tree = parse(&tokens);
        let (s, e) = tree.items[0].body_span.expect("has body");
        assert!(tokens[s].is_ident("g"));
        assert!(tokens[e].is_punct('}'));
        assert!(tree.items[0]
            .children
            .iter()
            .all(|c| c.kind != ItemKind::Fn));
    }

    #[test]
    fn plain_statements_collect_calls_and_bindings() {
        let (_, b) = body_of("fn f() { let mut g = lock(&state.sessions); g.insert(k, v); }");
        assert_eq!(b.stmts.len(), 2);
        assert_eq!(b.stmts[0].bindings, vec!["g"]);
        assert_eq!(b.stmts[0].calls.len(), 1);
        let call = &b.stmts[0].calls[0];
        assert_eq!(call.callee, "lock");
        assert!(!call.is_method);
        assert_eq!(
            call.args,
            vec![vec!["state".to_string(), "sessions".to_string()]]
        );
        let ins = &b.stmts[1].calls[0];
        assert_eq!(ins.callee, "insert");
        assert!(ins.is_method);
        assert_eq!(ins.recv, vec!["g"]);
        assert_eq!(ins.args.len(), 2);
    }

    #[test]
    fn method_chains_and_paths_resolve_receivers() {
        let (_, b) = body_of(
            "fn f() { self.shared.queue.lock(); Response::json(201, body); wal::open(dir)?; }",
        );
        let c0 = &b.stmts[0].calls[0];
        assert_eq!(c0.callee, "lock");
        assert_eq!(c0.recv, vec!["self", "shared", "queue"]);
        let c1 = &b.stmts[1].calls[0];
        assert_eq!(c1.callee, "json");
        assert_eq!(c1.recv, vec!["Response"]);
        assert_eq!(c1.arg0_num, Some(201));
        let c2 = &b.stmts[2].calls[0];
        assert_eq!(c2.callee, "open");
        assert_eq!(c2.recv, vec!["wal"]);
    }

    #[test]
    fn if_else_and_match_structure() {
        let src = r#"
fn f() {
    if let Some(s) = probe() {
        s.advance();
    } else if retry {
        again();
    } else {
        stop();
    }
    match kind {
        Kind::A if guard_fn(x) => handle_a(),
        Kind::B => { handle_b(); }
        _ => {}
    }
}
"#;
        let (_, b) = body_of(src);
        assert_eq!(b.stmts.len(), 2);
        let StmtKind::If { then_blk, else_blk } = &b.stmts[0].kind else {
            panic!("expected if");
        };
        assert!(b.stmts[0].bindings.contains(&"s".to_string()));
        assert_eq!(b.stmts[0].calls[0].callee, "probe");
        assert_eq!(then_blk.stmts[0].calls[0].callee, "advance");
        let chain = else_blk.as_ref().expect("else");
        let StmtKind::If { else_blk: last, .. } = &chain.stmts[0].kind else {
            panic!("expected else-if chain");
        };
        assert!(last.is_some());
        let StmtKind::Match { arms } = &b.stmts[1].kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        // Guard call surfaces as a synthetic head statement of the arm.
        assert_eq!(arms[0].stmts[0].calls[0].callee, "guard_fn");
        assert_eq!(arms[0].stmts[1].calls[0].callee, "handle_a");
        assert_eq!(arms[1].stmts[0].calls[0].callee, "handle_b");
    }

    #[test]
    fn loops_and_returns() {
        let src = r#"
fn f() {
    for job in queue.drain(len) {
        run(job);
    }
    while !*done {
        done = cv.wait(done);
    }
    loop {
        if ready() { return finish(); }
    }
}
"#;
        let (_, b) = body_of(src);
        let StmtKind::While { body } = &b.stmts[0].kind else {
            panic!("expected for-as-while");
        };
        assert_eq!(b.stmts[0].bindings, vec!["job"]);
        assert_eq!(b.stmts[0].calls[0].callee, "drain");
        assert_eq!(body.stmts[0].calls[0].callee, "run");
        let StmtKind::While { body } = &b.stmts[1].kind else {
            panic!("expected while");
        };
        assert_eq!(body.stmts[0].calls[0].callee, "wait");
        let StmtKind::Loop { body } = &b.stmts[2].kind else {
            panic!("expected loop");
        };
        let StmtKind::If { then_blk, .. } = &body.stmts[0].kind else {
            panic!("expected if in loop");
        };
        assert!(then_blk.stmts[0].is_return);
        assert_eq!(then_blk.stmts[0].calls[0].callee, "finish");
    }

    #[test]
    fn closures_defer_their_calls() {
        let src = r#"
fn f() {
    spawn(move || { work(unit); });
    let n = xs.iter().map(|x| x.cost()).sum();
    direct();
}
"#;
        let (_, b) = body_of(src);
        let spawn_calls: Vec<(&str, bool)> = b.stmts[0]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.deferred))
            .collect();
        assert!(spawn_calls.contains(&("spawn", false)));
        assert!(spawn_calls.contains(&("work", true)));
        let map_stmt: Vec<(&str, bool)> = b.stmts[1]
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.deferred))
            .collect();
        assert!(map_stmt.contains(&("cost", true)));
        assert!(map_stmt.contains(&("iter", false)));
        assert!(!b.stmts[2].calls[0].deferred);
    }

    #[test]
    fn sub_blocks_and_or_patterns_do_not_confuse_closures() {
        let src = r#"
fn f() {
    let done = failed || { let s = lock(&entry.session); s.step() };
    let v = a | b;
}
"#;
        let (_, b) = body_of(src);
        assert_eq!(b.stmts[0].subs.len(), 1);
        let sub = &b.stmts[0].subs[0];
        assert_eq!(sub.stmts[0].calls[0].callee, "lock");
        assert_eq!(sub.stmts[1].calls[0].callee, "step");
        // `a | b` produced no closure and no calls.
        assert!(b.stmts[1].calls.is_empty());
    }

    #[test]
    fn statement_spans_stay_in_bounds_and_ordered() {
        let src = r#"
fn f() {
    let x = g(1);
    if x { h(); }
    match x { _ => i(), }
}
"#;
        let (tokens, b) = body_of(src);
        fn check(blk: &Block, n: usize) {
            assert!(blk.span.1 <= n);
            for s in &blk.stmts {
                assert!(s.span.0 <= s.span.1 && s.span.1 <= n, "span in bounds");
                assert!(s.head_end <= s.span.1 || matches!(s.kind, StmtKind::Plain));
                for sub in s.blocks() {
                    check(sub, n);
                }
            }
        }
        check(&b, tokens.len());
    }

    #[test]
    fn parse_body_is_fail_open_on_malformed_input() {
        // Unbalanced braces, stray arrows, truncated closures: must not
        // panic and must terminate.
        for src in [
            "fn f() { if { } }",
            "fn f() { match } }",
            "fn f() { let = ; loop }",
            "fn f() { x.map(|y ",
            "fn f() { ) ] } { ( }",
            "fn f() { a => b, }",
        ] {
            let tokens = lex(src).tokens;
            let tree = parse(&tokens);
            if let Some(item) = tree.items.first() {
                if let Some((s, e)) = item.body_span {
                    let blk = parse_body(&tokens, s, e);
                    assert!(blk.span.1 <= tokens.len());
                }
            }
            // Also drive parse_body over the whole file regardless of
            // item structure (worst-case recovery).
            let blk = parse_body(&tokens, 0, tokens.len());
            assert!(blk.span.1 <= tokens.len());
        }
    }
}
