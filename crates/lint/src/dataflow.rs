//! Interval / unit dataflow over knob values, feeding the K4–K6 rules
//! and the `--emit-constraints` compiler.
//!
//! The pass tracks knob values from their accessor reads
//! (`cfg.f64("knob_name")`) through `let` bindings and arithmetic into
//! guard expressions, using a small abstract domain:
//!
//! * an **interval** `[lo, hi]` (the declared knob domain at a read,
//!   widened by every operation the evaluator cannot bound),
//! * an optional **unit** string (from `.with_unit(..)` at the def site),
//! * a **symbolic tag** ([`Sym`]): the value *is* `scale·knob + offset`,
//!   or the scaled product of two knobs, or unknown.
//!
//! Everything the evaluator does not model — calls, casts it cannot see
//! through, reassignment, mixed `&&`/`||` guards — **fails open to ⊤**:
//! the analysis may miss a fact, but it never invents a narrower range
//! than the code implies. On top of the lattice:
//!
//! * **K4 `knob-narrow`** — a guard or assert over a knob that is
//!   statically dead against the declared domain (an always-false
//!   condition, or a protective branch that always panics). Live guards
//!   are not findings; they produce [`NarrowFact`]s for the constraint
//!   compiler instead.
//! * **K5 `knob-unit`** — two values with different declared units
//!   added/subtracted/compared, or a binding whose `_ms`/`_mb`-style
//!   suffix contradicts the declared unit of the knob it reads.
//! * **K6 `knob-cross`** — two knobs compared with statically disjoint
//!   intervals (the comparison is constant), or a knob-product bound
//!   that can never hold. Live cross-knob comparisons and products
//!   produce [`CrossFact`]s.
//!
//! One level of interprocedurality: [`param_guards`] summarizes the
//! range guards a function imposes on each parameter (by running this
//! same analysis with synthetic `$<pos>` knobs), and the statement
//! walker applies those summaries at free-call sites, so a narrowing
//! assert one call away from the accessor still yields its fact — and
//! its K4 when the declared domain makes the callee's assert dead.

use std::collections::BTreeMap;

use crate::callgraph::CrateIndex;
use crate::config::RuleId;
use crate::items::{Item, ItemKind};
use crate::knobs::{KnobDef, KnobTable};
use crate::lexer::{parse_num, Token};
use crate::rules::Prepared;

/// Symbolic identity of an abstract value.
#[derive(Debug, Clone, PartialEq)]
pub enum Sym {
    /// Unknown provenance.
    Top,
    /// Exactly `scale * knob + offset`.
    Knob {
        /// Knob name (or `$<pos>` for a synthetic parameter knob).
        name: String,
        /// Multiplicative factor applied since the read.
        scale: f64,
        /// Additive shift applied since the read.
        offset: f64,
    },
    /// Exactly `scale * a * b` for two distinct knobs (offsets zero).
    Product {
        /// First knob.
        a: String,
        /// Second knob.
        b: String,
        /// Multiplicative factor.
        scale: f64,
    },
}

/// One abstract value: interval + unit + symbolic tag.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsVal {
    /// Inclusive lower bound (`-inf` when unknown).
    pub lo: f64,
    /// Inclusive upper bound (`+inf` when unknown).
    pub hi: f64,
    /// Declared display unit, when known.
    pub unit: Option<String>,
    /// Symbolic identity.
    pub sym: Sym,
}

impl AbsVal {
    /// The unconstrained value ⊤.
    pub fn top() -> AbsVal {
        AbsVal {
            lo: f64::NEG_INFINITY,
            hi: f64::INFINITY,
            unit: None,
            sym: Sym::Top,
        }
    }

    /// A known constant.
    pub fn constant(v: f64) -> AbsVal {
        AbsVal {
            lo: v,
            hi: v,
            unit: None,
            sym: Sym::Top,
        }
    }

    /// The value of a fresh knob read: declared range, declared unit,
    /// identity symbol.
    pub fn knob(def: &KnobDef) -> AbsVal {
        let (lo, hi) = def.range().unwrap_or((f64::NEG_INFINITY, f64::INFINITY));
        AbsVal {
            lo,
            hi,
            unit: def.unit.clone(),
            sym: Sym::Knob {
                name: def.name.clone(),
                scale: 1.0,
                offset: 0.0,
            },
        }
    }

    /// True for a known finite constant.
    pub fn is_const(&self) -> bool {
        self.lo == self.hi && self.lo.is_finite()
    }

    /// True when the concrete value `v` is inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// A feasible-range fact for one knob, implied by a guard or assert.
#[derive(Debug, Clone, PartialEq)]
pub struct NarrowFact {
    /// Knob name (or `$<pos>` inside a parameter summary).
    pub knob: String,
    /// Feasible lower bound (already intersected with the declared
    /// domain when one is known).
    pub lo: f64,
    /// Feasible upper bound.
    pub hi: f64,
    /// True for asserts and protective branches (violating the range
    /// panics); false for ordinary branch conditions (a preference, not
    /// a constraint).
    pub hard: bool,
    /// Source line of the guard.
    pub line: u32,
}

/// Relationship kind of a cross-knob fact.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossKind {
    /// The knobs are multiplied together somewhere (joint budget).
    Product,
    /// `a <= factor * b`.
    LeFactor(f64),
    /// `a * b <= bound`.
    ProductLe(f64),
}

/// A pairwise dependency between two knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossFact {
    /// First knob.
    pub a: String,
    /// Second knob.
    pub b: String,
    /// Relationship.
    pub kind: CrossKind,
    /// True for assert-derived relations (violating them panics);
    /// false for ordinary branch comparisons and product structure.
    /// Only hard facts may constrain a search space.
    pub hard: bool,
    /// Source line.
    pub line: u32,
}

/// Result of analyzing one file: rule findings plus extracted facts.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// `(rule, line)` pairs for K4/K5/K6.
    pub findings: Vec<(RuleId, u32)>,
    /// Range facts.
    pub narrows: Vec<NarrowFact>,
    /// Cross-knob facts.
    pub crosses: Vec<CrossFact>,
}

/// A range guard a function imposes on one of its parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGuard {
    /// Zero-based parameter position.
    pub pos: usize,
    /// Feasible lower bound for the parameter.
    pub lo: f64,
    /// Feasible upper bound.
    pub hi: f64,
    /// True when violating the range panics (assert / protective branch).
    pub hard: bool,
}

type Env = BTreeMap<String, AbsVal>;

/// Accessor methods whose string argument names the knob being read.
const READ_ACCESSORS: &[&str] = &["i64", "f64", "bool"];

/// Runs the dataflow pass over every non-test function in a prepared
/// file. `index` supplies parameter-guard summaries for one-level
/// interprocedural narrowing.
pub fn analyze_file(p: &Prepared, table: &KnobTable, index: &CrateIndex) -> Analysis {
    let mut out = Analysis::default();
    let fns = p.tree.collect(|i| i.kind == ItemKind::Fn);
    for item in fns {
        if item.is_test_only() {
            continue;
        }
        let Some((bs, be)) = item.body_span else {
            continue;
        };
        if p.mask.get(item.span.0).copied().unwrap_or(false) {
            continue;
        }
        let mut env = Env::new();
        scan_block(
            &p.lexed.tokens,
            &p.mask,
            bs,
            be,
            &mut env,
            table,
            index,
            &mut out,
        );
    }
    out
}

/// Parses the parameter names of a function item from its signature
/// tokens (`fn name(a: T, mut b: U, ...)`). A leading `self`-ish
/// receiver is skipped so positions align with free-call arguments.
pub fn fn_params(tokens: &[Token], item: &Item) -> Vec<String> {
    let (s, e) = item.span;
    let e = e.min(tokens.len());
    // Find the signature's opening paren: first '(' after the fn name.
    let mut i = s;
    while i < e && !tokens[i].is_ident("fn") {
        i += 1;
    }
    while i < e && !tokens[i].is_punct('(') {
        i += 1;
    }
    if i >= e {
        return Vec::new();
    }
    let close = matching(tokens, i, e, '(', ')');
    let mut params = Vec::new();
    let mut j = i + 1;
    while j < close {
        // One parameter: pattern tokens up to ':' at depth 0, then the
        // type up to ',' at depth 0 (angle brackets tracked so commas in
        // generics do not split).
        let mut name: Option<String> = None;
        let mut depth = 0i32;
        let mut in_type = false;
        let pstart = j;
        while j < close {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(':') {
                in_type = true;
            } else if depth == 0 && t.is_punct(',') {
                j += 1;
                break;
            } else if !in_type {
                if let Some(id) = t.ident() {
                    if !matches!(id, "mut" | "ref") {
                        name = Some(id.to_string());
                    }
                }
            }
            j += 1;
        }
        match name.as_deref() {
            Some("self") if pstart == i + 1 => {} // receiver: skip, keep positions
            Some(n) => params.push(n.to_string()),
            None => params.push(String::new()), // unnamed/complex pattern
        }
        if j == pstart {
            break; // no progress: malformed signature, fail open
        }
    }
    params
}

/// Summarizes the range guards a function body imposes on its
/// parameters by running the analysis with synthetic `$<pos>` knobs.
pub fn param_guards(
    tokens: &[Token],
    body_span: (usize, usize),
    params: &[String],
) -> Vec<ParamGuard> {
    if params.iter().all(String::is_empty) {
        return Vec::new();
    }
    let empty = KnobTable::default();
    let mut env = Env::new();
    for (pos, name) in params.iter().enumerate() {
        if name.is_empty() {
            continue;
        }
        env.insert(
            name.clone(),
            AbsVal {
                lo: f64::NEG_INFINITY,
                hi: f64::INFINITY,
                unit: None,
                sym: Sym::Knob {
                    name: format!("${pos}"),
                    scale: 1.0,
                    offset: 0.0,
                },
            },
        );
    }
    let mask = vec![false; tokens.len()];
    let index = CrateIndex::default();
    let mut scratch = Analysis::default();
    scan_block(
        tokens,
        &mask,
        body_span.0,
        body_span.1,
        &mut env,
        &empty,
        &index,
        &mut scratch,
    );
    let mut out = Vec::new();
    for n in scratch.narrows {
        let Some(rest) = n.knob.strip_prefix('$') else {
            continue;
        };
        let Ok(pos) = rest.parse::<usize>() else {
            continue;
        };
        if n.lo > f64::NEG_INFINITY || n.hi < f64::INFINITY {
            out.push(ParamGuard {
                pos,
                lo: n.lo,
                hi: n.hi,
                hard: n.hard,
            });
        }
    }
    out
}

/// Item keywords that start a nested item the walker skips opaquely.
const SKIP_ITEMS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "macro_rules",
];

/// Walks one block's token range, tracking bindings in `env` (cloned
/// into nested blocks so scoped bindings never leak out).
#[allow(clippy::too_many_arguments)]
fn scan_block(
    tokens: &[Token],
    mask: &[bool],
    start: usize,
    end: usize,
    env: &mut Env,
    table: &KnobTable,
    index: &CrateIndex,
    out: &mut Analysis,
) {
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        if mask.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        // Nested items: their bodies are analyzed as their own functions.
        if t.ident().is_some_and(|id| SKIP_ITEMS.contains(&id))
            && !tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('.'))
        {
            i = skip_nested_item(tokens, i, end);
            continue;
        }
        // `let [mut] name [: ty] = rhs ;`
        if t.is_ident("let") {
            i = handle_let(tokens, i, end, env, table, index, out);
            continue;
        }
        // `assert!(cond [, msg])` / `debug_assert!(cond [, msg])`
        if t.ident()
            .is_some_and(|id| id == "assert" || id == "debug_assert")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
        {
            let close = matching(tokens, i + 2, end, '(', ')');
            let cond_end = top_level_comma(tokens, i + 3, close).unwrap_or(close);
            apply_call_guards(tokens, i + 3, cond_end, env, table, index, out);
            handle_guard(
                tokens,
                i + 3,
                cond_end,
                false,
                true,
                t.line,
                env,
                table,
                out,
            );
            i = close + 1;
            continue;
        }
        // `if cond { then } [else ...]` — `else` blocks fall through to
        // the plain-`{` arm below; `else if` re-enters here.
        if t.is_ident("if") && !tokens.get(i + 1).is_some_and(|n| n.is_ident("let")) {
            let Some(brace) = head_brace(tokens, i + 1, end) else {
                i += 1;
                continue;
            };
            let then_end = matching(tokens, brace, end, '{', '}');
            let protective = block_is_protective(tokens, brace + 1, then_end);
            apply_call_guards(tokens, i + 1, brace, env, table, index, out);
            handle_guard(
                tokens,
                i + 1,
                brace,
                protective,
                protective,
                t.line,
                env,
                table,
                out,
            );
            let mut inner = env.clone();
            scan_block(
                tokens,
                mask,
                brace + 1,
                then_end,
                &mut inner,
                table,
                index,
                out,
            );
            i = then_end + 1;
            continue;
        }
        // Loop / match / if-let heads: recurse into the body, no facts
        // from the head (loop conditions are not feasibility claims).
        if t.ident()
            .is_some_and(|id| matches!(id, "while" | "for" | "loop" | "match" | "if"))
        {
            let Some(brace) = head_brace(tokens, i + 1, end) else {
                i += 1;
                continue;
            };
            let body_end = matching(tokens, brace, end, '{', '}');
            apply_call_guards(tokens, i + 1, brace, env, table, index, out);
            let mut inner = env.clone();
            scan_block(
                tokens,
                mask,
                brace + 1,
                body_end,
                &mut inner,
                table,
                index,
                out,
            );
            i = body_end + 1;
            continue;
        }
        // Plain `{ ... }` (incl. `else` bodies and `unsafe` blocks).
        if t.is_punct('{') {
            let blk_end = matching(tokens, i, end, '{', '}');
            let mut inner = env.clone();
            scan_block(tokens, mask, i + 1, blk_end, &mut inner, table, index, out);
            i = blk_end + 1;
            continue;
        }
        // Reassignment kills the binding (fail open).
        if let Some(id) = t.ident() {
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('='))
                && !tokens.get(i + 2).is_some_and(|n| n.is_punct('='))
                && !tokens.get(i.wrapping_sub(1)).is_some_and(|p| {
                    p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!')
                })
            {
                env.remove(id);
                i += 2;
                continue;
            }
            // Free-call site with parameter-guard summaries.
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && !tokens
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct('.') || p.is_punct(':'))
            {
                apply_guards_at_call(tokens, i, end, env, table, index, out);
            }
        }
        i += 1;
    }
}

/// Skips an opaque nested item starting at `i` (to its `;`, or past the
/// matching `}` of its first top-level brace block).
fn skip_nested_item(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    let mut seen_brace = false;
    while j < end {
        if tokens[j].is_punct('{') {
            depth += 1;
            seen_brace = true;
        } else if tokens[j].is_punct('}') {
            depth = depth.saturating_sub(1);
            if seen_brace && depth == 0 {
                return j + 1;
            }
        } else if tokens[j].is_punct(';') && !seen_brace && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    end
}

/// Finds the body `{` of a control-flow head at depth 0, scanning from
/// `from`.
fn head_brace(tokens: &[Token], from: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('{') {
            return Some(j);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    None
}

/// Returns the index of the closer matching the opener at `open`.
fn matching(tokens: &[Token], open: usize, end: usize, o: char, c: char) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < end {
        if tokens[j].is_punct(o) {
            depth += 1;
        } else if tokens[j].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    end
}

/// Index of the first top-level `,` in `[from, to)`.
fn top_level_comma(tokens: &[Token], from: usize, to: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens
        .iter()
        .enumerate()
        .take(to.min(tokens.len()))
        .skip(from)
    {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(',') {
            return Some(j);
        }
    }
    None
}

/// True when a then-block unconditionally diverges: `panic!` /
/// `unreachable!` / `todo!` / `bail!` or `return Err`.
fn block_is_protective(tokens: &[Token], s: usize, e: usize) -> bool {
    let e = e.min(tokens.len());
    for j in s..e {
        if let Some(id) = tokens[j].ident() {
            if matches!(id, "panic" | "unreachable" | "todo" | "bail")
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('!'))
            {
                return true;
            }
            if id == "return" && tokens.get(j + 1).is_some_and(|n| n.is_ident("Err")) {
                return true;
            }
        }
    }
    false
}

/// Handles a `let` statement starting at `i`; returns the index past its
/// terminating `;`.
fn handle_let(
    tokens: &[Token],
    i: usize,
    end: usize,
    env: &mut Env,
    table: &KnobTable,
    index: &CrateIndex,
    out: &mut Analysis,
) -> usize {
    // Simple binding: `let [mut] name` followed by `:` or `=`.
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let simple_name = tokens.get(j).and_then(Token::ident).filter(|_| {
        tokens
            .get(j + 1)
            .is_some_and(|n| n.is_punct(':') || n.is_punct('='))
    });
    // Find `=` then the terminating `;` at depth 0 (braces tracked so
    // `let x = if c { a } else { b };` stays one statement).
    let mut depth = 0usize;
    let mut eq = None;
    let mut k = i + 1;
    while k < end {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('=') {
            if eq.is_none() && !tokens.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                eq = Some(k);
            } else if tokens.get(k + 1).is_some_and(|n| n.is_punct('=')) {
                k += 1; // skip `==`
            }
        } else if depth == 0 && t.is_punct(';') {
            break;
        }
        k += 1;
    }
    let semi = k;
    let Some(eq) = eq else {
        return (semi + 1).min(end);
    };
    let (rs, re) = (eq + 1, semi.min(end));
    apply_call_guards(tokens, rs, re, env, table, index, out);
    let val = eval_range(tokens, rs, re, env, table, out);
    if let Some(name) = simple_name {
        // K5: binding suffix vs the declared unit of a direct knob read.
        if let (Some(suf), Some(unit)) = (unit_suffix(name), val.unit.as_deref()) {
            if is_identity_knob(&val) && suf != normalize_unit(unit) {
                out.findings.push((RuleId::KnobUnit, tokens[i].line));
            }
        }
        env.insert(name.to_string(), val);
    }
    (semi + 1).min(end)
}

/// True when the value is an untransformed knob read (`scale == 1`,
/// `offset == 0`).
fn is_identity_knob(v: &AbsVal) -> bool {
    matches!(&v.sym, Sym::Knob { scale, offset, .. } if *scale == 1.0 && *offset == 0.0)
}

/// The canonical unit implied by a binding-name suffix (`_ms`, `_mb`,
/// ...), when the suffix is one the analyzer knows.
fn unit_suffix(name: &str) -> Option<&'static str> {
    let (_, suf) = name.rsplit_once('_')?;
    match suf {
        "ms" => Some("ms"),
        "us" => Some("us"),
        "s" | "sec" | "secs" => Some("s"),
        "kb" => Some("kb"),
        "mb" => Some("mb"),
        "gb" => Some("gb"),
        "bytes" => Some("b"),
        _ => None,
    }
}

/// Normalizes a declared unit string for comparison.
fn normalize_unit(u: &str) -> &'static str {
    match u.to_ascii_lowercase().as_str() {
        "ms" | "millis" | "milliseconds" => "ms",
        "us" | "micros" | "microseconds" => "us",
        "s" | "sec" | "secs" | "seconds" => "s",
        "kb" | "kib" => "kb",
        "mb" | "mib" => "mb",
        "gb" | "gib" => "gb",
        "b" | "bytes" => "b",
        _ => "?",
    }
}

/// Applies callee parameter-guard summaries at every free-call site in
/// `[s, e)` whose callee has an entry in the crate index.
fn apply_call_guards(
    tokens: &[Token],
    s: usize,
    e: usize,
    env: &Env,
    table: &KnobTable,
    index: &CrateIndex,
    out: &mut Analysis,
) {
    let e = e.min(tokens.len());
    let mut j = s;
    while j < e {
        if tokens[j].ident().is_some()
            && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
            && !tokens
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_punct('.') || p.is_punct(':'))
        {
            apply_guards_at_call(tokens, j, e, env, table, index, out);
        }
        j += 1;
    }
}

/// Applies one callee's parameter guards to the knob arguments of the
/// free call whose callee ident is at `i`.
fn apply_guards_at_call(
    tokens: &[Token],
    i: usize,
    end: usize,
    env: &Env,
    table: &KnobTable,
    index: &CrateIndex,
    out: &mut Analysis,
) {
    let Some(callee) = tokens[i].ident() else {
        return;
    };
    let Some(guards) = index.guards.get(callee) else {
        return;
    };
    if guards.is_empty() {
        return;
    }
    let close = matching(tokens, i + 1, end, '(', ')');
    // Split argument ranges at top-level commas.
    let mut args: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut astart = i + 2;
    for (j, t) in tokens.iter().enumerate().take(close).skip(i + 2) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(',') {
            args.push((astart, j));
            astart = j + 1;
        }
    }
    if astart < close {
        args.push((astart, close));
    }
    let line = tokens[i].line;
    for g in guards {
        let Some(&(as_, ae)) = args.get(g.pos) else {
            continue;
        };
        let val = eval_range(tokens, as_, ae, env, table, out);
        let Sym::Knob {
            name,
            scale,
            offset,
        } = &val.sym
        else {
            continue;
        };
        if name.starts_with('$') || *scale == 0.0 {
            continue;
        }
        // Guard bounds apply to `scale*k + offset`: transform back to k.
        let (mut lo, mut hi) = ((g.lo - offset) / scale, (g.hi - offset) / scale);
        if *scale < 0.0 {
            std::mem::swap(&mut lo, &mut hi);
        }
        let (dlo, dhi) = declared_range(table, name);
        let flo = lo.max(dlo);
        let fhi = hi.min(dhi);
        if flo > fhi {
            if g.hard {
                out.findings.push((RuleId::KnobNarrow, line));
            }
            continue;
        }
        if flo > dlo || fhi < dhi {
            out.narrows.push(NarrowFact {
                knob: name.clone(),
                lo: flo,
                hi: fhi,
                hard: g.hard,
                line,
            });
        }
    }
}

/// The declared range of a knob, with an unbounded fallback for names
/// the table does not know (synthetic `$<pos>` parameters).
fn declared_range(table: &KnobTable, name: &str) -> (f64, f64) {
    table
        .knobs
        .get(name)
        .and_then(KnobDef::range)
        .unwrap_or((f64::NEG_INFINITY, f64::INFINITY))
}

// ---------------------------------------------------------------------------
// Guard handling
// ---------------------------------------------------------------------------

/// Comparison operators the guard handler models.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }
}

/// Processes one guard expression. `negated` is true for protective
/// branches (the feasible region is the condition's negation); `hard`
/// marks asserts / protective guards whose violation panics.
#[allow(clippy::too_many_arguments)]
fn handle_guard(
    tokens: &[Token],
    s: usize,
    e: usize,
    negated: bool,
    hard: bool,
    line: u32,
    env: &Env,
    table: &KnobTable,
    out: &mut Analysis,
) {
    let e = e.min(tokens.len());
    // Split on top-level `&&` / `||` (lexer emits single-char puncts).
    let mut ands: Vec<usize> = Vec::new();
    let mut ors: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut j = s;
    while j + 1 < e {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('&') && tokens[j + 1].is_punct('&') {
            ands.push(j);
            j += 2;
            continue;
        } else if depth == 0 && t.is_punct('|') && tokens[j + 1].is_punct('|') {
            ors.push(j);
            j += 2;
            continue;
        }
        j += 1;
    }
    if !ands.is_empty() && !ors.is_empty() {
        return; // mixed junctions: fail open
    }
    let cuts: &[usize] = if !ands.is_empty() { &ands } else { &ors };
    let mut parts: Vec<(usize, usize)> = Vec::new();
    let mut ps = s;
    for &c in cuts {
        parts.push((ps, c));
        ps = c + 2;
    }
    parts.push((ps, e));
    let disjunction = !ors.is_empty();

    // Whether per-conjunct facts are sound: conjunction of the condition
    // (non-negated guard), or conjunction of negations (negated guard
    // over a disjunction, by De Morgan).
    let record = (!negated && !disjunction) || (negated && (disjunction || parts.len() == 1));
    let mut outcomes: Vec<Option<(bool, bool)>> = Vec::new();
    for &(cs, ce) in &parts {
        outcomes.push(conjunct(
            tokens, cs, ce, negated, hard, record, line, env, table, out,
        ));
    }
    // K4: statically dead guard against the declared domain.
    let dead = if !negated {
        if !disjunction {
            // `if A && B { live }`: any conjunct always false → dead.
            outcomes.iter().any(|o| matches!(o, Some((true, _))))
        } else {
            // `if A || B { live }`: dead only if every disjunct is.
            !outcomes.is_empty() && outcomes.iter().all(|o| matches!(o, Some((true, _))))
        }
    } else if !disjunction {
        // `if A && B { panic }`: always panics iff all always true.
        !outcomes.is_empty() && outcomes.iter().all(|o| matches!(o, Some((_, true))))
    } else {
        // `if A || B { panic }`: always panics if any always true.
        outcomes.iter().any(|o| matches!(o, Some((_, true))))
    };
    if dead {
        out.findings.push((RuleId::KnobNarrow, line));
    }
}

/// Analyzes one comparison conjunct. Returns `(always_false,
/// always_true)` of the condition *as written* when statically
/// determined, recording narrowing / cross facts for the (possibly
/// negated) feasible region when `record` is set. `None` = unknown.
#[allow(clippy::too_many_arguments)]
fn conjunct(
    tokens: &[Token],
    s: usize,
    e: usize,
    negate: bool,
    hard: bool,
    record: bool,
    line: u32,
    env: &Env,
    table: &KnobTable,
    out: &mut Analysis,
) -> Option<(bool, bool)> {
    // Strip one level of wrapping parens.
    let (mut s, mut e) = (s, e.min(tokens.len()));
    while e > s + 1 && tokens[s].is_punct('(') && matching(tokens, s, e, '(', ')') == e - 1 {
        s += 1;
        e -= 1;
    }
    // Locate exactly one comparison operator at depth 0.
    let mut op: Option<(CmpOp, usize, usize)> = None; // (op, start, end_exclusive)
    let mut depth = 0usize;
    let mut j = s;
    while j < e {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
            j += 1;
            continue;
        }
        if depth != 0 {
            j += 1;
            continue;
        }
        let next_eq = tokens
            .get(j + 1)
            .filter(|_| j + 1 < e)
            .is_some_and(|n| n.is_punct('='));
        let found = if t.is_punct('<') {
            Some(if next_eq {
                (CmpOp::Le, j, j + 2)
            } else {
                (CmpOp::Lt, j, j + 1)
            })
        } else if t.is_punct('>') {
            Some(if next_eq {
                (CmpOp::Ge, j, j + 2)
            } else {
                (CmpOp::Gt, j, j + 1)
            })
        } else if t.is_punct('=') && next_eq {
            Some((CmpOp::Eq, j, j + 2))
        } else if t.is_punct('!') && next_eq {
            Some((CmpOp::Ne, j, j + 2))
        } else {
            None
        };
        if let Some(f) = found {
            if op.is_some() {
                return None; // multiple comparisons (or generics): fail open
            }
            j = f.2;
            op = Some(f);
            continue;
        }
        j += 1;
    }
    let (op, os, oe) = op?;
    let lhs = eval_range(tokens, s, os, env, table, out);
    let rhs = eval_range(tokens, oe, e, env, table, out);
    // K5: comparing values with conflicting declared units.
    if let (Some(ul), Some(ur)) = (lhs.unit.as_deref(), rhs.unit.as_deref()) {
        let (nl, nr) = (normalize_unit(ul), normalize_unit(ur));
        if nl != "?" && nr != "?" && nl != nr {
            out.findings.push((RuleId::KnobUnit, line));
        }
    }

    // (a) knob vs constant.
    let knob_const = match (&lhs.sym, &rhs.sym) {
        (
            Sym::Knob {
                name,
                scale,
                offset,
            },
            _,
        ) if rhs.is_const() => Some((name.clone(), *scale, *offset, rhs.lo, op)),
        (
            _,
            Sym::Knob {
                name,
                scale,
                offset,
            },
        ) if lhs.is_const() => Some((name.clone(), *scale, *offset, lhs.lo, op.flip())),
        _ => None,
    };
    if let Some((name, scale, offset, c, op)) = knob_const {
        if scale == 0.0 {
            return None;
        }
        let mut cp = (c - offset) / scale;
        let mut op = op;
        if scale < 0.0 {
            op = op.flip();
        }
        if !cp.is_finite() {
            return None;
        }
        // Integer-domain tightening keeps strict bounds exact.
        if matches!(
            table.knobs.get(&name).map(|d| &d.domain),
            Some(crate::knobs::KnobDomain::Int { .. })
        ) && cp.fract() == 0.0
        {
            match op {
                CmpOp::Lt => {
                    op = CmpOp::Le;
                    cp -= 1.0;
                }
                CmpOp::Gt => {
                    op = CmpOp::Ge;
                    cp += 1.0;
                }
                _ => {}
            }
        }
        let (dlo, dhi) = declared_range(table, &name);
        let (af, at) = match op {
            CmpOp::Lt => (dlo >= cp, dhi < cp),
            CmpOp::Le => (dlo > cp, dhi <= cp),
            CmpOp::Gt => (dhi <= cp, dlo > cp),
            CmpOp::Ge => (dhi < cp, dlo >= cp),
            CmpOp::Eq => (cp < dlo || cp > dhi, dlo == dhi && dlo == cp),
            CmpOp::Ne => (dlo == dhi && dlo == cp, cp < dlo || cp > dhi),
        };
        if record {
            let mut eff = if negate { op.negate() } else { op };
            let mut cp = cp;
            // Re-tighten after negation: ¬(k ≤ c) over an Int domain is
            // exactly k ≥ c+1.
            if matches!(
                table.knobs.get(&name).map(|d| &d.domain),
                Some(crate::knobs::KnobDomain::Int { .. })
            ) && cp.fract() == 0.0
            {
                match eff {
                    CmpOp::Lt => {
                        eff = CmpOp::Le;
                        cp -= 1.0;
                    }
                    CmpOp::Gt => {
                        eff = CmpOp::Ge;
                        cp += 1.0;
                    }
                    _ => {}
                }
            }
            let (flo, fhi) = match eff {
                CmpOp::Lt | CmpOp::Le => (dlo, dhi.min(cp)),
                CmpOp::Gt | CmpOp::Ge => (dlo.max(cp), dhi),
                CmpOp::Eq => (cp.max(dlo), cp.min(dhi)),
                CmpOp::Ne => (dlo, dhi),
            };
            if eff != CmpOp::Ne && flo <= fhi && (flo > dlo || fhi < dhi) {
                out.narrows.push(NarrowFact {
                    knob: name,
                    lo: flo,
                    hi: fhi,
                    hard,
                    line,
                });
            }
        }
        return Some((af, at));
    }

    // (b) knob vs knob.
    if let (
        Sym::Knob {
            name: na,
            scale: sa,
            offset: oa,
        },
        Sym::Knob {
            name: nb,
            scale: sb,
            offset: ob,
        },
    ) = (&lhs.sym, &rhs.sym)
    {
        if na != nb && !na.starts_with('$') && !nb.starts_with('$') {
            // Statically constant comparison over disjoint intervals.
            let (af, at) = match op {
                CmpOp::Lt => (lhs.lo >= rhs.hi, lhs.hi < rhs.lo),
                CmpOp::Le => (lhs.lo > rhs.hi, lhs.hi <= rhs.lo),
                CmpOp::Gt => (lhs.hi <= rhs.lo, lhs.lo > rhs.hi),
                CmpOp::Ge => (lhs.hi < rhs.lo, lhs.lo >= rhs.hi),
                CmpOp::Eq => (lhs.hi < rhs.lo || lhs.lo > rhs.hi, false),
                CmpOp::Ne => (false, lhs.hi < rhs.lo || lhs.lo > rhs.hi),
            };
            if af || at {
                out.findings.push((RuleId::KnobCross, line));
                return Some((af, at));
            }
            if record && *oa == 0.0 && *ob == 0.0 && *sa > 0.0 && *sb > 0.0 {
                let eff = if negate { op.negate() } else { op };
                match eff {
                    CmpOp::Lt | CmpOp::Le => out.crosses.push(CrossFact {
                        a: na.clone(),
                        b: nb.clone(),
                        kind: CrossKind::LeFactor(sb / sa),
                        hard,
                        line,
                    }),
                    CmpOp::Gt | CmpOp::Ge => out.crosses.push(CrossFact {
                        a: nb.clone(),
                        b: na.clone(),
                        kind: CrossKind::LeFactor(sa / sb),
                        hard,
                        line,
                    }),
                    _ => {}
                }
            }
            return Some((false, false));
        }
        return None;
    }

    // (c) knob product vs constant.
    let prod_const = match (&lhs.sym, &rhs.sym) {
        (Sym::Product { a, b, scale }, _) if rhs.is_const() => {
            Some((a.clone(), b.clone(), *scale, rhs.lo, op, lhs.lo, lhs.hi))
        }
        (_, Sym::Product { a, b, scale }) if lhs.is_const() => Some((
            a.clone(),
            b.clone(),
            *scale,
            lhs.lo,
            op.flip(),
            rhs.lo,
            rhs.hi,
        )),
        _ => None,
    };
    if let Some((a, b, scale, c, op, plo, phi)) = prod_const {
        if scale <= 0.0 {
            return None;
        }
        let (af, at) = match op {
            CmpOp::Lt => (plo >= c, phi < c),
            CmpOp::Le => (plo > c, phi <= c),
            CmpOp::Gt => (phi <= c, plo > c),
            CmpOp::Ge => (phi < c, plo >= c),
            CmpOp::Eq => (c < plo || c > phi, false),
            CmpOp::Ne => (false, c < plo || c > phi),
        };
        if af {
            out.findings.push((RuleId::KnobCross, line));
            return Some((af, at));
        }
        if record {
            let eff = if negate { op.negate() } else { op };
            if matches!(eff, CmpOp::Lt | CmpOp::Le) {
                out.crosses.push(CrossFact {
                    a,
                    b,
                    kind: CrossKind::ProductLe(c / scale),
                    hard,
                    line,
                });
            }
        }
        return Some((af, at));
    }

    None
}

// ---------------------------------------------------------------------------
// Expression evaluator
// ---------------------------------------------------------------------------

/// Evaluates the token range `[s, e)` as an arithmetic expression over
/// the abstract domain. Anything unmodeled (or trailing unconsumed
/// tokens) fails open to ⊤; facts recorded along the way remain valid.
pub fn eval_range(
    tokens: &[Token],
    s: usize,
    e: usize,
    env: &Env,
    table: &KnobTable,
    out: &mut Analysis,
) -> AbsVal {
    let e = e.min(tokens.len());
    if s >= e {
        return AbsVal::top();
    }
    let mut ev = Eval {
        tokens,
        end: e,
        pos: s,
        env,
        table,
        out,
    };
    let v = ev.expr();
    if ev.pos < e {
        return AbsVal::top();
    }
    v
}

struct Eval<'a> {
    tokens: &'a [Token],
    end: usize,
    pos: usize,
    env: &'a Env,
    table: &'a KnobTable,
    out: &'a mut Analysis,
}

impl Eval<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).filter(|_| self.pos < self.end)
    }

    fn peek_at(&self, off: usize) -> Option<&Token> {
        self.tokens
            .get(self.pos + off)
            .filter(|_| self.pos + off < self.end)
    }

    fn line(&self) -> u32 {
        self.peek().map(|t| t.line).unwrap_or(0)
    }

    /// expr := term (('+'|'-') term)*
    fn expr(&mut self) -> AbsVal {
        let mut v = self.term();
        loop {
            let line = self.line();
            match self.peek() {
                Some(t) if t.is_punct('+') => {
                    self.pos += 1;
                    let r = self.term();
                    v = add_vals(&v, &r, line, self.out);
                }
                Some(t) if t.is_punct('-') => {
                    self.pos += 1;
                    let r = self.term();
                    v = sub_vals(&v, &r, line, self.out);
                }
                _ => break,
            }
        }
        v
    }

    /// term := unary (('*'|'/') unary)*
    fn term(&mut self) -> AbsVal {
        let mut v = self.unary();
        loop {
            let line = self.line();
            match self.peek() {
                Some(t) if t.is_punct('*') => {
                    self.pos += 1;
                    let r = self.unary();
                    v = mul_vals(&v, &r, line, self.out);
                }
                Some(t) if t.is_punct('/') => {
                    self.pos += 1;
                    let r = self.unary();
                    v = div_vals(&v, &r);
                }
                _ => break,
            }
        }
        v
    }

    /// unary := ('-'|'&'|'*') unary | '!' unary (⊤) | postfix
    fn unary(&mut self) -> AbsVal {
        match self.peek() {
            Some(t) if t.is_punct('-') => {
                self.pos += 1;
                let v = self.unary();
                mul_vals(&v, &AbsVal::constant(-1.0), 0, self.out)
            }
            Some(t) if t.is_punct('&') || t.is_punct('*') => {
                // References and derefs are value-transparent here.
                self.pos += 1;
                self.unary()
            }
            Some(t) if t.is_punct('!') => {
                self.pos += 1;
                let _ = self.unary();
                AbsVal::top()
            }
            _ => self.postfix(),
        }
    }

    /// postfix := primary ('.' method-or-field | 'as' type | '?')*
    fn postfix(&mut self) -> AbsVal {
        let mut v = self.primary();
        loop {
            match self.peek() {
                Some(t) if t.is_punct('.') => {
                    let Some(next) = self.peek_at(1) else {
                        self.pos += 1;
                        return AbsVal::top();
                    };
                    if let Some(name) = next.ident() {
                        if self.peek_at(2).is_some_and(|n| n.is_punct('(')) {
                            // Method call: knob accessors resolve, all
                            // others fail open.
                            let name = name.to_string();
                            let open = self.pos + 2;
                            let close = matching(self.tokens, open, self.end, '(', ')');
                            let resolved = if READ_ACCESSORS.contains(&name.as_str()) {
                                self.knob_arg(open + 1, close)
                            } else {
                                None
                            };
                            self.pos = (close + 1).min(self.end);
                            v = match resolved {
                                Some(def) => AbsVal::knob(&def),
                                None => AbsVal::top(),
                            };
                            continue;
                        }
                        // Field access / tuple index: unknown projection.
                        self.pos += 2;
                        v = AbsVal::top();
                        continue;
                    }
                    // `.0` tuple index (Num token) or anything else.
                    self.pos += 2;
                    v = AbsVal::top();
                    continue;
                }
                Some(t) if t.is_ident("as") => {
                    // Numeric cast: identity on the abstract value; the
                    // type path is consumed.
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|t| t.ident().is_some() || t.is_punct(':'))
                    {
                        self.pos += 1;
                    }
                    continue;
                }
                Some(t) if t.is_punct('?') => {
                    self.pos += 1;
                    continue;
                }
                _ => break,
            }
        }
        v
    }

    /// primary := num | '(' expr ')' | str (⊤) | ident-path
    fn primary(&mut self) -> AbsVal {
        let Some(t) = self.peek().cloned() else {
            return AbsVal::top();
        };
        let t = &t;
        if let Some(text) = t.num_lit() {
            self.pos += 1;
            return match parse_num(text) {
                Some(v) => AbsVal::constant(v),
                None => AbsVal::top(),
            };
        }
        if t.str_lit().is_some() {
            self.pos += 1;
            return AbsVal::top();
        }
        if t.is_punct('(') {
            let close = matching(self.tokens, self.pos, self.end, '(', ')');
            self.pos += 1;
            let v = self.expr();
            if self.pos != close {
                // Unmodeled content inside the parens (tuples, comparisons).
                self.pos = (close + 1).min(self.end);
                return AbsVal::top();
            }
            self.pos = (close + 1).min(self.end);
            return v;
        }
        if let Some(id) = t.ident() {
            if id == "true" {
                self.pos += 1;
                return AbsVal::constant(1.0);
            }
            if id == "false" {
                self.pos += 1;
                return AbsVal::constant(0.0);
            }
            // Path segments `a::b::c` consume to the final atom.
            let mut j = self.pos;
            while self
                .tokens
                .get(j + 1)
                .filter(|_| j + 1 < self.end)
                .is_some_and(|n| n.is_punct(':'))
                && self
                    .tokens
                    .get(j + 2)
                    .filter(|_| j + 2 < self.end)
                    .is_some_and(|n| n.is_punct(':'))
                && self
                    .tokens
                    .get(j + 3)
                    .filter(|_| j + 3 < self.end)
                    .is_some_and(|n| n.ident().is_some())
            {
                j += 3;
            }
            if j != self.pos {
                // Qualified path: a call or associated const — unknown.
                self.pos = j + 1;
                if self.peek().is_some_and(|n| n.is_punct('(')) {
                    let close = matching(self.tokens, self.pos, self.end, '(', ')');
                    self.pos = (close + 1).min(self.end);
                }
                return AbsVal::top();
            }
            if self.peek_at(1).is_some_and(|n| n.is_punct('(')) {
                // Free call: consume arguments, unknown result.
                let close = matching(self.tokens, self.pos + 1, self.end, '(', ')');
                self.pos = (close + 1).min(self.end);
                return AbsVal::top();
            }
            self.pos += 1;
            if let Some(v) = self.env.get(id) {
                return v.clone();
            }
            return AbsVal::top();
        }
        // Unknown token: consume it, fail open.
        self.pos += 1;
        AbsVal::top()
    }

    /// Resolves the first argument of an accessor call (`"name"` or a
    /// registered const ident) against the knob table.
    fn knob_arg(&self, s: usize, e: usize) -> Option<KnobDef> {
        let first = self.tokens.get(s).filter(|_| s < e)?;
        if let Some(lit) = first.str_lit() {
            return self.table.knobs.get(lit).cloned();
        }
        // Const ident, possibly path-qualified: take the last ident
        // before the closing paren / comma.
        let mut last: Option<&str> = None;
        for j in s..e {
            if let Some(id) = self.tokens[j].ident() {
                last = Some(id);
            } else if self.tokens[j].is_punct(',') {
                break;
            }
        }
        let name = self.table.consts.get(last?)?;
        self.table.knobs.get(name).cloned()
    }
}

// ---------------------------------------------------------------------------
// Interval arithmetic
// ---------------------------------------------------------------------------

/// Clamps a computed interval to a sane form (NaN → unbounded).
fn sane(lo: f64, hi: f64) -> (f64, f64) {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        (f64::NEG_INFINITY, f64::INFINITY)
    } else {
        (lo, hi)
    }
}

/// Joins units for additive operations: equal units survive, a unitless
/// side inherits the other, conflicting units report K5 and drop.
fn unit_join(a: &AbsVal, b: &AbsVal, line: u32, out: &mut Analysis) -> Option<String> {
    match (a.unit.as_deref(), b.unit.as_deref()) {
        (Some(ua), Some(ub)) => {
            let (na, nb) = (normalize_unit(ua), normalize_unit(ub));
            if na == nb {
                a.unit.clone()
            } else {
                if na != "?" && nb != "?" {
                    out.findings.push((RuleId::KnobUnit, line));
                }
                None
            }
        }
        (Some(_), None) => a.unit.clone(),
        (None, Some(_)) => b.unit.clone(),
        (None, None) => None,
    }
}

/// Abstract addition.
pub fn add_vals(a: &AbsVal, b: &AbsVal, line: u32, out: &mut Analysis) -> AbsVal {
    let (lo, hi) = sane(a.lo + b.lo, a.hi + b.hi);
    let unit = unit_join(a, b, line, out);
    let sym = match (&a.sym, &b.sym) {
        (
            Sym::Knob {
                name,
                scale,
                offset,
            },
            _,
        ) if b.is_const() => Sym::Knob {
            name: name.clone(),
            scale: *scale,
            offset: offset + b.lo,
        },
        (
            _,
            Sym::Knob {
                name,
                scale,
                offset,
            },
        ) if a.is_const() => Sym::Knob {
            name: name.clone(),
            scale: *scale,
            offset: offset + a.lo,
        },
        _ => Sym::Top,
    };
    AbsVal { lo, hi, unit, sym }
}

/// Abstract subtraction.
pub fn sub_vals(a: &AbsVal, b: &AbsVal, line: u32, out: &mut Analysis) -> AbsVal {
    let (lo, hi) = sane(a.lo - b.hi, a.hi - b.lo);
    let unit = unit_join(a, b, line, out);
    let sym = match (&a.sym, &b.sym) {
        (
            Sym::Knob {
                name,
                scale,
                offset,
            },
            _,
        ) if b.is_const() => Sym::Knob {
            name: name.clone(),
            scale: *scale,
            offset: offset - b.lo,
        },
        (
            _,
            Sym::Knob {
                name,
                scale,
                offset,
            },
        ) if a.is_const() => Sym::Knob {
            name: name.clone(),
            scale: -scale,
            offset: a.lo - offset,
        },
        _ => Sym::Top,
    };
    AbsVal { lo, hi, unit, sym }
}

/// Abstract multiplication. A product of two distinct knobs records a
/// [`CrossKind::Product`] fact.
pub fn mul_vals(a: &AbsVal, b: &AbsVal, line: u32, out: &mut Analysis) -> AbsVal {
    let corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let (lo, hi) = if corners.iter().any(|c| c.is_nan()) {
        (f64::NEG_INFINITY, f64::INFINITY)
    } else {
        sane(
            corners.iter().copied().fold(f64::INFINITY, f64::min),
            corners.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        )
    };
    let sym = match (&a.sym, &b.sym) {
        (
            Sym::Knob {
                name,
                scale,
                offset,
            },
            _,
        ) if b.is_const() => Sym::Knob {
            name: name.clone(),
            scale: scale * b.lo,
            offset: offset * b.lo,
        },
        (
            _,
            Sym::Knob {
                name,
                scale,
                offset,
            },
        ) if a.is_const() => Sym::Knob {
            name: name.clone(),
            scale: scale * a.lo,
            offset: offset * a.lo,
        },
        (
            Sym::Knob {
                name: na,
                scale: sa,
                offset: oa,
            },
            Sym::Knob {
                name: nb,
                scale: sb,
                offset: ob,
            },
        ) if na != nb && *oa == 0.0 && *ob == 0.0 => {
            if !na.starts_with('$') && !nb.starts_with('$') {
                out.crosses.push(CrossFact {
                    a: na.clone().min(nb.clone()),
                    b: na.clone().max(nb.clone()),
                    kind: CrossKind::Product,
                    hard: false,
                    line,
                });
            }
            Sym::Product {
                a: na.clone(),
                b: nb.clone(),
                scale: sa * sb,
            }
        }
        _ => Sym::Top,
    };
    AbsVal {
        lo,
        hi,
        unit: None,
        sym,
    }
}

/// Abstract division. Division by a nonzero constant scales; a divisor
/// interval containing zero fails open.
pub fn div_vals(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if b.is_const() && b.lo != 0.0 {
        let inv = AbsVal::constant(1.0 / b.lo);
        let mut scratch = Analysis::default();
        let mut v = mul_vals(a, &inv, 0, &mut scratch);
        v.unit = None;
        return v;
    }
    if b.lo > 0.0 || b.hi < 0.0 {
        let corners = [a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi];
        if corners.iter().any(|c| c.is_nan()) {
            return AbsVal::top();
        }
        let (lo, hi) = sane(
            corners.iter().copied().fold(f64::INFINITY, f64::min),
            corners.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        );
        return AbsVal {
            lo,
            hi,
            unit: None,
            sym: Sym::Top,
        };
    }
    AbsVal::top()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CrateIndex;
    use crate::config::DEFAULT_PROTOCOL;
    use crate::knobs::extract_table;
    use crate::lexer::lex;
    use crate::rules::prepare;

    const PARAMS: &str = r#"
pub fn space() -> Vec<ParamSpec> {
    vec![
        ParamSpec::int("exec_mem_mb", 512, 16384, 2048, "executor memory").with_unit("MB"),
        ParamSpec::int("executors", 1, 64, 4, "executor count"),
        ParamSpec::float("fraction", 0.1, 0.9, 0.5, "share"),
        ParamSpec::int("wait_ms", 0, 10000, 3000, "locality wait").with_unit("ms"),
        ParamSpec::int("parallelism", 1, 128, 8, "task parallelism"),
    ]
}
"#;

    fn table() -> KnobTable {
        let lexed = lex(PARAMS);
        extract_table([("crates/sim/src/fixture/params.rs", lexed.tokens.as_slice())].into_iter())
    }

    fn analyze(src: &str) -> Analysis {
        analyze_with_index(src, &CrateIndex::default())
    }

    fn analyze_with_index(src: &str, index: &CrateIndex) -> Analysis {
        let p = prepare("crates/sim/src/fixture/engine.rs", src).expect("classified");
        analyze_file(&p, &table(), index)
    }

    #[test]
    fn accessor_reads_carry_domain_and_unit() {
        let t = table();
        let p = prepare(
            "crates/sim/src/fixture/engine.rs",
            r#"fn f(c: &C) { let m = c.f64("exec_mem_mb"); }"#,
        )
        .expect("ok");
        let mut out = Analysis::default();
        let mut env = Env::new();
        let (bs, be) = p.tree.items[0].body_span.expect("body");
        scan_block(
            &p.lexed.tokens,
            &p.mask,
            bs,
            be,
            &mut env,
            &t,
            &CrateIndex::default(),
            &mut out,
        );
        let v = &env["m"];
        assert_eq!((v.lo, v.hi), (512.0, 16384.0));
        assert_eq!(v.unit.as_deref(), Some("MB"));
        assert!(is_identity_knob(v));
    }

    #[test]
    fn arithmetic_tracks_scale_and_offset() {
        let t = table();
        let src = r#"fn f(c: &C) { let x = c.f64("exec_mem_mb") * 2.0 + 10.0; if x < 2000.0 { panic!("too small"); } }"#;
        let p = prepare("crates/sim/src/fixture/engine.rs", src).expect("ok");
        let a = analyze_file(&p, &t, &CrateIndex::default());
        // x < 2000 protective → feasible 2*k + 10 >= 2000 → k >= 995.
        assert_eq!(a.findings, vec![]);
        assert_eq!(a.narrows.len(), 1);
        let n = &a.narrows[0];
        assert_eq!(n.knob, "exec_mem_mb");
        assert_eq!(n.lo, 995.0);
        assert_eq!(n.hi, 16384.0);
        assert!(n.hard);
    }

    #[test]
    fn k4_fires_on_always_false_assert() {
        // Declared max 16384; assert requires > 100000 → always false.
        let a = analyze(r#"fn f(c: &C) { let m = c.f64("exec_mem_mb"); assert!(m > 100000.0); }"#);
        assert_eq!(a.findings, vec![(RuleId::KnobNarrow, 1)]);
    }

    #[test]
    fn k4_fires_on_always_true_protective_guard() {
        // m <= 16384 always → the panic always fires.
        let a = analyze(
            r#"fn f(c: &C) {
    let m = c.f64("exec_mem_mb");
    if m <= 16384.0 { panic!("bad"); }
}"#,
        );
        assert_eq!(a.findings, vec![(RuleId::KnobNarrow, 3)]);
    }

    #[test]
    fn live_guards_produce_facts_not_findings() {
        let a = analyze(
            r#"fn f(c: &C) {
    let m = c.f64("exec_mem_mb");
    assert!(m >= 1024.0);
    if m > 8192.0 { shrink(); }
}"#,
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.narrows.len(), 2);
        assert_eq!((a.narrows[0].lo, a.narrows[0].hi), (1024.0, 16384.0));
        assert!(a.narrows[0].hard);
        // Live branch condition: soft fact.
        assert!(!a.narrows[1].hard);
    }

    #[test]
    fn k5_fires_on_mixed_unit_comparison_and_suffix_conflict() {
        let a = analyze(
            r#"fn f(c: &C) {
    let m = c.f64("exec_mem_mb");
    let w = c.f64("wait_ms");
    if m > w { tune(); }
}"#,
        );
        assert_eq!(a.findings, vec![(RuleId::KnobUnit, 4)]);

        let b = analyze(r#"fn f(c: &C) { let wait_s = c.f64("wait_ms"); }"#);
        assert_eq!(b.findings, vec![(RuleId::KnobUnit, 1)]);

        let ok = analyze(r#"fn f(c: &C) { let wait_ms = c.f64("wait_ms"); }"#);
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn k6_product_and_bound_facts() {
        let a = analyze(
            r#"fn f(c: &C) {
    let total = c.f64("exec_mem_mb") * c.f64("executors");
    assert!(total <= 65536.0);
}"#,
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.crosses.len(), 2);
        assert_eq!(a.crosses[0].kind, CrossKind::Product);
        assert_eq!(a.crosses[1].kind, CrossKind::ProductLe(65536.0));
    }

    #[test]
    fn k6_fires_on_statically_constant_cross_comparison() {
        // fraction in [0.1, 0.9], exec_mem in [512, 16384]: disjoint.
        let a = analyze(
            r#"fn f(c: &C) {
    let fr = c.f64("fraction");
    let m = c.f64("exec_mem_mb");
    assert!(fr < m);
}"#,
        );
        assert_eq!(a.findings, vec![(RuleId::KnobCross, 4)]);
    }

    #[test]
    fn cross_le_factor_from_live_comparison() {
        // executors [1,64] and parallelism [1,128] overlap, so the
        // comparison is live: no K6, just a dependency fact.
        let a = analyze(
            r#"fn f(c: &C) {
    let e = c.f64("executors");
    let p = c.f64("parallelism");
    if e <= p { balance(); }
}"#,
        );
        assert_eq!(a.findings, vec![]);
        let cross: Vec<_> = a
            .crosses
            .iter()
            .filter(|c| matches!(c.kind, CrossKind::LeFactor(_)))
            .collect();
        assert_eq!(cross.len(), 1);
        assert_eq!(cross[0].a, "executors");
        assert_eq!(cross[0].b, "parallelism");
    }

    #[test]
    fn unsupported_ops_fail_open() {
        let a = analyze(
            r#"fn f(c: &C) {
    let m = helper(c.f64("exec_mem_mb"));
    assert!(m > 1e12);
    let n = c.f64("exec_mem_mb").sqrt();
    assert!(n > 1e12);
}"#,
        );
        // Both asserts are over ⊤ values: no findings, no facts.
        assert!(a.findings.is_empty());
        assert!(a.narrows.is_empty());
    }

    #[test]
    fn reassignment_kills_binding() {
        let a = analyze(
            r#"fn f(c: &C) {
    let mut m = c.f64("exec_mem_mb");
    m = recompute();
    assert!(m > 1e12);
}"#,
        );
        assert!(a.findings.is_empty());
    }

    #[test]
    fn branch_bindings_do_not_leak() {
        let a = analyze(
            r#"fn f(c: &C) {
    if cond() {
        let m = c.f64("exec_mem_mb");
        touch(m);
    }
    let m = other();
    assert!(m > 1e12);
}"#,
        );
        assert!(a.findings.is_empty());
    }

    #[test]
    fn interprocedural_guard_narrows_and_fires_k4() {
        // Build an index whose `check_mem` demands its arg >= 1024 (live)
        // and `check_big` demands >= 1e9 (dead vs the declared domain).
        let callee_src = r#"
fn check_mem(mb: f64) { assert!(mb >= 1024.0); }
fn check_big(mb: f64) { assert!(mb >= 1000000000.0); }
"#;
        let lexed = lex(callee_src);
        let tree = crate::parser::parse(&lexed.tokens);
        let mask = vec![false; lexed.tokens.len()];
        let mut index = CrateIndex::default();
        index.add_file(&tree, &lexed.tokens, &mask, &DEFAULT_PROTOCOL);
        assert!(index.guards.contains_key("check_mem"), "guards extracted");

        let a = analyze_with_index(
            r#"fn f(c: &C) { check_mem(c.f64("exec_mem_mb")); }"#,
            &index,
        );
        assert!(a.findings.is_empty());
        assert_eq!(a.narrows.len(), 1);
        assert_eq!((a.narrows[0].lo, a.narrows[0].hi), (1024.0, 16384.0));
        assert!(a.narrows[0].hard);

        let bad = analyze_with_index(
            r#"fn f(c: &C) { check_big(c.f64("exec_mem_mb")); }"#,
            &index,
        );
        assert_eq!(bad.findings, vec![(RuleId::KnobNarrow, 1)]);
    }

    #[test]
    fn integer_domains_tighten_strict_bounds() {
        let a = analyze(
            r#"fn f(c: &C) {
    let e = c.i64("executors") as f64;
    if e > 32.0 { cap(); }
}"#,
        );
        assert_eq!(a.narrows.len(), 1);
        // e > 32 over an Int domain → e >= 33.
        assert_eq!(a.narrows[0].lo, 33.0);
    }
}
