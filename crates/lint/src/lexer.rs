//! A small self-contained Rust lexer.
//!
//! The workspace vendors no parsing crates (no `syn`), so the analyzer works
//! on a token stream this module produces: identifiers and punctuation with
//! line numbers, with comments, string literals, char literals, and numeric
//! literals stripped so rule patterns can never match inside them. Line
//! comments are captured separately because suppression directives
//! (`lint:allow`) live there.
//!
//! The lexer is deliberately approximate where full fidelity is not needed
//! by the rules — numeric literals are consumed and dropped, and the
//! lifetime-vs-char-literal ambiguity after `'` is resolved with the usual
//! two-character lookahead heuristic — but it is exact about nesting and
//! line tracking, which the rule engine and suppression matching rely on.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `partial_cmp`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `#`, ...).
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Returns the identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            Tok::Punct(_) => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `//`-style comment with its text (everything after the `//`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line number the comment starts on.
    pub line: u32,
    /// Comment body, excluding the leading `//` but including any further
    /// leading `/` or `!` (doc comments).
    pub text: String,
}

/// Output of [`lex`]: the token stream plus captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier/punctuation stream in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes Rust source into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes chars[i..] while `f` holds, updating the line counter.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            i += 2;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(LineComment {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment (nesting per Rust semantics).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // String literal.
        if c == '"' {
            bump!();
            skip_string_body(&chars, &mut i, &mut line);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(_) => after == Some('\''),
                None => false,
            };
            if is_char_lit {
                bump!(); // opening quote
                if chars.get(i) == Some(&'\\') {
                    bump!(); // backslash
                    if i < chars.len() {
                        bump!(); // escaped char (u{..} handled by closing scan)
                    }
                }
                while i < chars.len() && chars[i] != '\'' {
                    bump!();
                }
                if i < chars.len() {
                    bump!(); // closing quote
                }
            } else {
                // Lifetime or loop label: skip the quote and the identifier.
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Numeric literal: consumed and dropped (no rule needs them).
        if c.is_ascii_digit() {
            skip_number(&chars, &mut i);
            continue;
        }
        // Identifier, possibly a raw-string / byte-string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            match text.as_str() {
                "r" | "br" if matches!(chars.get(i), Some(&'"') | Some(&'#')) => {
                    if chars.get(i) == Some(&'#')
                        && chars
                            .get(i + 1)
                            .is_some_and(|&n| is_ident_start(n) && text == "r")
                    {
                        // Raw identifier `r#name`.
                        i += 1;
                        let rstart = i;
                        while i < chars.len() && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                        let raw: String = chars[rstart..i].iter().collect();
                        out.tokens.push(Token {
                            tok: Tok::Ident(raw),
                            line,
                        });
                    } else {
                        skip_raw_string(&chars, &mut i, &mut line);
                    }
                }
                "b" if chars.get(i) == Some(&'"') => {
                    i += 1;
                    skip_string_body(&chars, &mut i, &mut line);
                }
                "b" if chars.get(i) == Some(&'\'') => {
                    // Byte char literal, e.g. b'x' or b'\n'.
                    i += 1; // opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 1;
                        if i < chars.len() {
                            i += 1;
                        }
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        bump!();
                    }
                    if i < chars.len() {
                        i += 1;
                    }
                }
                _ => out.tokens.push(Token {
                    tok: Tok::Ident(text),
                    line,
                }),
            }
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Skips a (non-raw) string body; `i` points just past the opening quote.
fn skip_string_body(chars: &[char], i: &mut usize, line: &mut u32) {
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            '"' => {
                *i += 1;
                return;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
        }
    }
}

/// Skips a raw string; `i` points at the first `#` or `"` after `r`/`br`.
fn skip_raw_string(chars: &[char], i: &mut usize, line: &mut u32) {
    let mut hashes = 0usize;
    while chars.get(*i) == Some(&'#') {
        hashes += 1;
        *i += 1;
    }
    if chars.get(*i) != Some(&'"') {
        return; // Not actually a raw string; be permissive.
    }
    *i += 1;
    while *i < chars.len() {
        if chars[*i] == '"' {
            let mut matched = 0usize;
            while matched < hashes && chars.get(*i + 1 + matched) == Some(&'#') {
                matched += 1;
            }
            if matched == hashes {
                *i += 1 + hashes;
                return;
            }
        }
        if chars[*i] == '\n' {
            *line += 1;
        }
        *i += 1;
    }
}

/// Skips a numeric literal starting at a digit.
fn skip_number(chars: &[char], i: &mut usize) {
    let mut prev = '0';
    while *i < chars.len() {
        let c = chars[*i];
        let continues = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && chars.get(*i + 1).is_some_and(|n| n.is_ascii_digit()))
            || ((c == '+' || c == '-')
                && (prev == 'e' || prev == 'E')
                && chars.get(*i + 1).is_some_and(|n| n.is_ascii_digit()));
        if !continues {
            break;
        }
        prev = c;
        *i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strips_strings_and_comments() {
        let src = r##"
// thread_rng in a comment
/* thread_rng in /* a nested */ block */
let s = "thread_rng in a string";
let r = r#"thread_rng in a raw string"#;
let c = 'x';
let ok = real_ident;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'q'; x }";
        let ids = idents(src);
        // The char literal body 'q' must not appear; the code after it must.
        assert!(!ids.contains(&"q".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"first\nsecond\";\nlet marker = 1;";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token present");
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1; // note one\n// note two\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].text.trim(), "note one");
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_and_ranges_lex_cleanly() {
        let src = "let x = 1.0e-3; for i in 0..10 { let y = 0xff_u64; }";
        let lexed = lex(src);
        // Two dots of the range survive as punctuation.
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("for")));
    }

    #[test]
    fn byte_and_raw_literals() {
        let src = "let a = b\"bytes thread_rng\"; let b = br#\"raw thread_rng\"#; let c = b'z'; let k = r#fn;";
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }
}
