//! A small self-contained Rust lexer.
//!
//! The workspace vendors no parsing crates (no `syn`), so the analyzer works
//! on a token stream this module produces: identifiers, punctuation, string
//! literals, and numeric literals with line numbers. Comments and char
//! literals are stripped so rule patterns can never match inside them; string
//! and numeric literals are *captured* (not dropped) because the knob-table
//! rules (K1–K3) must resolve knob-name strings and check numeric bounds,
//! and the item parser must read `#[target_feature(enable = "avx2")]`. Line
//! comments are captured separately because suppression directives
//! (`lint:allow`) and `SAFETY:` justifications live there.
//!
//! The lexer is deliberately approximate where full fidelity is not needed
//! by the rules — the lifetime-vs-char-literal ambiguity after `'` is
//! resolved with the usual two-character lookahead heuristic — but it is
//! exact about nesting, raw-string hash matching, and line tracking, which
//! the rule engine, the item parser, and suppression matching rely on.

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `HashMap`, `partial_cmp`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `#`, ...).
    Punct(char),
    /// A string literal's contents (plain, raw, or byte), without quotes
    /// and with escapes left unprocessed.
    Str(String),
    /// A numeric literal's source text (`100`, `0.95`, `1.0e-3`, `0xff_u64`).
    Num(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Returns the identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the literal contents, if this is a string literal.
    pub fn str_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the literal source text, if this is a numeric literal.
    pub fn num_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Num(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// True if this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A `//`-style comment with its text (everything after the `//`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line number the comment starts on.
    pub line: u32,
    /// Comment body, excluding the leading `//` but including any further
    /// leading `/` or `!` (doc comments).
    pub text: String,
}

/// Output of [`lex`]: the token stream plus captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Identifier/punctuation/literal stream in source order.
    pub tokens: Vec<Token>,
    /// All `//` comments in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes Rust source into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes chars[i..] one char, updating the line counter.
    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            i += 2;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(LineComment {
                line: start_line,
                text,
            });
            continue;
        }
        // Block comment (nesting per Rust semantics). The open/close
        // delimiters contain no newline, so only `bump!` counts lines.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1usize;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    bump!();
                }
            }
            continue;
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            bump!();
            let text = read_string_body(&chars, &mut i, &mut line);
            out.tokens.push(Token {
                tok: Tok::Str(text),
                line: start_line,
            });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(_) => after == Some('\''),
                None => false,
            };
            if is_char_lit {
                bump!(); // opening quote
                if chars.get(i) == Some(&'\\') {
                    bump!(); // backslash
                    if i < chars.len() {
                        bump!(); // escaped char (u{..} handled by closing scan)
                    }
                }
                while i < chars.len() && chars[i] != '\'' {
                    bump!();
                }
                if i < chars.len() {
                    bump!(); // closing quote
                }
            } else {
                // Lifetime or loop label: skip the quote and the identifier.
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Numeric literal: captured as source text.
        if c.is_ascii_digit() {
            let start = i;
            skip_number(&chars, &mut i);
            out.tokens.push(Token {
                tok: Tok::Num(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Identifier, possibly a raw-string / byte-string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            match text.as_str() {
                "r" | "br" if matches!(chars.get(i), Some(&'"') | Some(&'#')) => {
                    if chars.get(i) == Some(&'#')
                        && chars
                            .get(i + 1)
                            .is_some_and(|&n| is_ident_start(n) && text == "r")
                    {
                        // Raw identifier `r#name`.
                        i += 1;
                        let rstart = i;
                        while i < chars.len() && is_ident_continue(chars[i]) {
                            i += 1;
                        }
                        let raw: String = chars[rstart..i].iter().collect();
                        out.tokens.push(Token {
                            tok: Tok::Ident(raw),
                            line,
                        });
                    } else {
                        // `r"…"` / `r#"…"#` / `br#"…"#`. If the `#`s are not
                        // followed by a quote this is not a raw string after
                        // all: rewind and emit the prefix as a plain ident so
                        // the `#`s lex as punctuation (mis-consuming them
                        // could mask real code that follows).
                        let save = i;
                        let start_line = line;
                        match read_raw_string(&chars, &mut i, &mut line) {
                            Some(body) => out.tokens.push(Token {
                                tok: Tok::Str(body),
                                line: start_line,
                            }),
                            None => {
                                i = save;
                                out.tokens.push(Token {
                                    tok: Tok::Ident(text),
                                    line,
                                });
                            }
                        }
                    }
                }
                "b" if chars.get(i) == Some(&'"') => {
                    let start_line = line;
                    i += 1;
                    let body = read_string_body(&chars, &mut i, &mut line);
                    out.tokens.push(Token {
                        tok: Tok::Str(body),
                        line: start_line,
                    });
                }
                "b" if chars.get(i) == Some(&'\'') => {
                    // Byte char literal, e.g. b'x' or b'\n'.
                    i += 1; // opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 1;
                        if i < chars.len() {
                            i += 1;
                        }
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        bump!();
                    }
                    if i < chars.len() {
                        i += 1;
                    }
                }
                _ => out.tokens.push(Token {
                    tok: Tok::Ident(text),
                    line,
                }),
            }
            continue;
        }
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Reads a (non-raw) string body; `i` points just past the opening quote.
/// Returns the contents with escape sequences left as written.
fn read_string_body(chars: &[char], i: &mut usize, line: &mut u32) -> String {
    let mut body = String::new();
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                body.push(chars[*i]);
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        *line += 1;
                    }
                    body.push(chars[*i]);
                    *i += 1;
                }
            }
            '"' => {
                *i += 1;
                return body;
            }
            c => {
                if c == '\n' {
                    *line += 1;
                }
                body.push(c);
                *i += 1;
            }
        }
    }
    body
}

/// Reads a raw string; `i` points at the first `#` or `"` after `r`/`br`.
/// Returns `None` (with `i`/`line` possibly advanced — caller must rewind)
/// when the hashes are not followed by an opening quote, i.e. this was not
/// a raw string. An unterminated raw string consumes to EOF, matching how
/// rustc would treat the rest of the file.
fn read_raw_string(chars: &[char], i: &mut usize, line: &mut u32) -> Option<String> {
    let mut hashes = 0usize;
    while chars.get(*i) == Some(&'#') {
        hashes += 1;
        *i += 1;
    }
    if chars.get(*i) != Some(&'"') {
        return None; // Not actually a raw string.
    }
    *i += 1;
    let mut body = String::new();
    while *i < chars.len() {
        if chars[*i] == '"' {
            let mut matched = 0usize;
            while matched < hashes && chars.get(*i + 1 + matched) == Some(&'#') {
                matched += 1;
            }
            if matched == hashes {
                *i += 1 + hashes;
                return Some(body);
            }
        }
        if chars[*i] == '\n' {
            *line += 1;
        }
        body.push(chars[*i]);
        *i += 1;
    }
    Some(body)
}

/// Skips a numeric literal starting at a digit.
fn skip_number(chars: &[char], i: &mut usize) {
    let mut prev = '0';
    while *i < chars.len() {
        let c = chars[*i];
        let continues = c.is_ascii_alphanumeric()
            || c == '_'
            || (c == '.' && chars.get(*i + 1).is_some_and(|n| n.is_ascii_digit()))
            || ((c == '+' || c == '-')
                && (prev == 'e' || prev == 'E')
                && chars.get(*i + 1).is_some_and(|n| n.is_ascii_digit()));
        if !continues {
            break;
        }
        prev = c;
        *i += 1;
    }
}

/// Parses a captured numeric literal's text into an `f64`: underscores are
/// dropped, a trailing type suffix (`u64`, `f32`, `usize`, ...) is stripped,
/// and hex/octal/binary literals are decoded. Returns `None` for text no
/// rule needs to understand numerically.
pub fn parse_num(text: &str) -> Option<f64> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let body = [
        "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
        "f32", "f64",
    ]
    .iter()
    .find_map(|suf| clean.strip_suffix(suf))
    .unwrap_or(&clean);
    if body.is_empty() {
        return None;
    }
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok().map(|v| v as f64);
    }
    if let Some(oct) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        return i64::from_str_radix(oct, 8).ok().map(|v| v as f64);
    }
    if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        return i64::from_str_radix(bin, 2).ok().map(|v| v as f64);
    }
    body.parse::<f64>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.str_lit().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strips_strings_and_comments() {
        let src = r##"
// thread_rng in a comment
/* thread_rng in /* a nested */ block */
let s = "thread_rng in a string";
let r = r#"thread_rng in a raw string"#;
let c = 'x';
let ok = real_ident;
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn string_contents_are_captured_not_dropped() {
        let src = r##"let a = "shared_buffers_mb"; let b = r#"raw_knob"#; let c = b"bytes";"##;
        assert_eq!(strs(src), vec!["shared_buffers_mb", "raw_knob", "bytes"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'q'; x }";
        let ids = idents(src);
        // The char literal body 'q' must not appear; the code after it must.
        assert!(!ids.contains(&"q".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"first\nsecond\";\nlet marker = 1;";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token present");
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1; // note one\n// note two\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].text.trim(), "note one");
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn numbers_and_ranges_lex_cleanly() {
        let src = "let x = 1.0e-3; for i in 0..10 { let y = 0xff_u64; }";
        let lexed = lex(src);
        // Two dots of the range survive as punctuation.
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("for")));
        let nums: Vec<&str> = lexed.tokens.iter().filter_map(|t| t.num_lit()).collect();
        assert_eq!(nums, vec!["1.0e-3", "0", "10", "0xff_u64"]);
    }

    #[test]
    fn byte_and_raw_literals() {
        let src = "let a = b\"bytes thread_rng\"; let b = br#\"raw thread_rng\"#; let c = b'z'; let k = r#fn;";
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    // -- regression tests: raw strings and nested comments must not
    // mis-mask the code that follows them --

    #[test]
    fn zero_hash_raw_string_closes_at_first_quote() {
        // r"..\" — raw strings have no escapes, so the backslash does NOT
        // extend the literal; `after_raw` is live code.
        let src = r#"let s = r"a\"; let after_raw = 1;"#;
        let ids = idents(src);
        assert!(ids.contains(&"after_raw".to_string()));
        assert_eq!(strs(src), vec!["a\\"]);
    }

    #[test]
    fn raw_string_embedded_quote_hash_needs_full_match() {
        // The "# inside the body has fewer hashes than the opener, so the
        // literal runs to "## and `tail_code` is live.
        let src = r###"let s = r##"body "# still body"##; let tail_code = 1;"###;
        let ids = idents(src);
        assert!(ids.contains(&"tail_code".to_string()));
        assert_eq!(strs(src), vec![r##"body "# still body"##]);
    }

    #[test]
    fn false_raw_prefix_keeps_following_tokens() {
        // `r` then `#` with no quote is not a raw string; previously the
        // lexer silently swallowed the hash(es), here `r` stays an ident and
        // the attribute-ish tokens after it survive.
        let src = "let r = r ; #[cfg(test)] mod m {}";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("cfg")));
        assert!(lexed.tokens.iter().any(|t| t.is_punct('#')));
        // Degenerate `br#!` (not a raw ident, not a raw string): the prefix
        // must not eat the punctuation after it.
        let src2 = "br#!x";
        let lexed2 = lex(src2);
        assert!(lexed2.tokens.iter().any(|t| t.is_punct('#')));
        assert!(lexed2.tokens.iter().any(|t| t.is_punct('!')));
    }

    #[test]
    fn nested_block_comment_exposes_trailing_code() {
        let src = "/* a /* b */ c */ let live_after = 2; /*/ odd */ let more = 3;";
        let ids = idents(src);
        assert!(ids.contains(&"live_after".to_string()));
        assert!(ids.contains(&"more".to_string()));
    }

    #[test]
    fn multiline_raw_string_and_comment_track_lines() {
        let src = "let a = r#\"l1\nl2\nl3\"#;\n/* c1\nc2 */ let marker = 1;";
        let lexed = lex(src);
        let marker = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("marker"))
            .expect("marker token present");
        assert_eq!(marker.line, 5);
    }

    #[test]
    fn unterminated_constructs_consume_to_eof_without_panic() {
        for src in [
            "/* never closed",
            "let s = r#\"never closed",
            "let s = \"open",
        ] {
            let lexed = lex(src);
            // No panic, and nothing after the construct is fabricated.
            assert!(lexed.tokens.len() < 16, "src {src:?}");
        }
    }

    #[test]
    fn parse_num_handles_suffixes_and_radices() {
        assert_eq!(parse_num("100"), Some(100.0));
        assert_eq!(parse_num("1_000"), Some(1000.0));
        assert_eq!(parse_num("0.95"), Some(0.95));
        assert_eq!(parse_num("1.0e-3"), Some(0.001));
        assert_eq!(parse_num("0xff_u64"), Some(255.0));
        assert_eq!(parse_num("0b101"), Some(5.0));
        assert_eq!(parse_num("64i64"), Some(64.0));
        assert_eq!(parse_num("2048usize"), Some(2048.0));
        assert_eq!(parse_num("abc"), None);
    }
}
