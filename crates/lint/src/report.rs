//! Finding and report types, with human-readable and JSON rendering.

use serde::{Deserialize, Serialize};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable rule id (`D1`..`D5`, `A0`).
    pub rule: String,
    /// Human rule name (`unseeded-rng`, ..., `bare-allow`).
    pub name: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Why this is a finding and what to do instead.
    pub message: String,
}

/// Everything one analyzer run produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Findings sorted by (file, line, rule) for deterministic output.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Builds a report, sorting findings deterministically.
    pub fn new(mut findings: Vec<Finding>, files_scanned: usize) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        Report {
            findings,
            files_scanned,
        }
    }

    /// True when the scan is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{} {}] {}\n    {}\n",
                f.file, f.line, f.rule, f.name, f.message, f.snippet
            ));
        }
        out.push_str(&format!(
            "autotune-lint: {} finding(s) in {} file(s) scanned\n",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }

    /// JSON rendering (round-trips through `serde_json::from_str`).
    pub fn json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // Serialization of plain strings/ints cannot fail; keep the
            // binary total regardless.
            format!("{{\"error\": \"serialization failed: {e}\"}}")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            name: "unwrap".to_string(),
            file: file.to_string(),
            line,
            snippet: "x.unwrap()".to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn report_sorts_deterministically() {
        let r = Report::new(
            vec![
                finding("b.rs", 9, "D5"),
                finding("a.rs", 3, "D5"),
                finding("a.rs", 3, "D4"),
            ],
            2,
        );
        let keys: Vec<(String, u32, String)> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs".to_string(), 3, "D4".to_string()),
                ("a.rs".to_string(), 3, "D5".to_string()),
                ("b.rs".to_string(), 9, "D5".to_string()),
            ]
        );
    }

    #[test]
    fn json_round_trips() {
        let r = Report::new(vec![finding("a.rs", 1, "D1")], 1);
        let back: Report = serde_json::from_str(&r.json()).expect("valid JSON");
        assert_eq!(back, r);
    }

    #[test]
    fn human_rendering_has_location_and_summary() {
        let r = Report::new(vec![finding("crates/core/src/x.rs", 7, "D5")], 3);
        let text = r.human();
        assert!(text.contains("crates/core/src/x.rs:7: [D5 unwrap]"));
        assert!(text.contains("1 finding(s) in 3 file(s) scanned"));
    }
}
