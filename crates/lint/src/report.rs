//! Finding and report types, with human-readable, JSON, and SARIF
//! rendering.

use serde::{Deserialize, Serialize};

use crate::config::{Severity, ALL_RULES};

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Stable rule id (`D1`..`D5`, `U1`..`U3`, `K1`..`K3`, `A0`).
    pub rule: String,
    /// Human rule name (`unseeded-rng`, ..., `bare-allow`).
    pub name: String,
    /// Severity label (`error` or `warning`).
    pub severity: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Why this is a finding and what to do instead.
    pub message: String,
}

impl Finding {
    /// True for build-failing findings.
    pub fn is_error(&self) -> bool {
        self.severity != Severity::Warning.label()
    }
}

/// Everything one analyzer run produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Findings sorted by (file, line, rule) for deterministic output.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Builds a report, sorting findings deterministically.
    pub fn new(mut findings: Vec<Finding>, files_scanned: usize) -> Self {
        findings.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        Report {
            findings,
            files_scanned,
        }
    }

    /// True when the scan is clean (no findings of any severity).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True when at least one error-severity finding survived: this is what
    /// makes the binary's exit code nonzero (warnings alone do not).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(Finding::is_error)
    }

    /// Human-readable rendering, one finding per line plus a summary.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: {}[{} {}] {}\n    {}\n",
                f.file,
                f.line,
                if f.is_error() { "" } else { "warning " },
                f.rule,
                f.name,
                f.message,
                f.snippet
            ));
        }
        let errors = self.findings.iter().filter(|f| f.is_error()).count();
        let warnings = self.findings.len() - errors;
        out.push_str(&format!(
            "autotune-lint: {errors} error(s), {warnings} warning(s) in {} file(s) scanned\n",
            self.files_scanned
        ));
        out
    }

    /// JSON rendering (round-trips through `serde_json::from_str`).
    pub fn json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // Serialization of plain strings/ints cannot fail; keep the
            // binary total regardless.
            format!("{{\"error\": \"serialization failed: {e}\"}}")
        })
    }

    /// SARIF 2.1.0 rendering (the minimal shape GitHub code scanning
    /// ingests): one run, the full rule catalog in `tool.driver.rules`, one
    /// `result` per finding with its physical location. Key order is fixed
    /// (the vendored `serde::Value` map preserves insertion order), so the
    /// output is snapshot-stable.
    pub fn sarif(&self) -> String {
        use serde::Value;
        fn text(s: &str) -> Value {
            Value::Text(s.to_string())
        }
        fn map(entries: Vec<(&str, Value)>) -> Value {
            Value::Map(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        }
        let rules = Value::Seq(
            ALL_RULES
                .iter()
                .map(|r| {
                    map(vec![
                        ("id", text(r.id())),
                        ("name", text(r.name())),
                        ("shortDescription", map(vec![("text", text(r.message()))])),
                        (
                            "defaultConfiguration",
                            map(vec![("level", text(r.severity().label()))]),
                        ),
                    ])
                })
                .collect(),
        );
        let results = Value::Seq(
            self.findings
                .iter()
                .map(|f| {
                    map(vec![
                        ("ruleId", text(&f.rule)),
                        ("level", text(&f.severity)),
                        ("message", map(vec![("text", text(&f.message))])),
                        (
                            "locations",
                            Value::Seq(vec![map(vec![(
                                "physicalLocation",
                                map(vec![
                                    ("artifactLocation", map(vec![("uri", text(&f.file))])),
                                    (
                                        "region",
                                        map(vec![
                                            ("startLine", Value::Int(i64::from(f.line))),
                                            ("snippet", map(vec![("text", text(&f.snippet))])),
                                        ]),
                                    ),
                                ]),
                            )])]),
                        ),
                    ])
                })
                .collect(),
        );
        let doc = map(vec![
            (
                "$schema",
                text("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            ),
            ("version", text("2.1.0")),
            (
                "runs",
                Value::Seq(vec![map(vec![
                    (
                        "tool",
                        map(vec![(
                            "driver",
                            map(vec![("name", text("autotune-lint")), ("rules", rules)]),
                        )]),
                    ),
                    ("results", results),
                ])]),
            ),
        ]);
        /// Serializes a pre-built [`Value`] tree as-is.
        struct Raw(Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        serde_json::to_string_pretty(&Raw(doc))
            .unwrap_or_else(|e| format!("{{\"error\": \"serialization failed: {e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &str) -> Finding {
        Finding {
            rule: rule.to_string(),
            name: "unwrap".to_string(),
            severity: "error".to_string(),
            file: file.to_string(),
            line,
            snippet: "x.unwrap()".to_string(),
            message: "m".to_string(),
        }
    }

    #[test]
    fn report_sorts_deterministically() {
        let r = Report::new(
            vec![
                finding("b.rs", 9, "D5"),
                finding("a.rs", 3, "D5"),
                finding("a.rs", 3, "D4"),
            ],
            2,
        );
        let keys: Vec<(String, u32, String)> = r
            .findings
            .iter()
            .map(|f| (f.file.clone(), f.line, f.rule.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a.rs".to_string(), 3, "D4".to_string()),
                ("a.rs".to_string(), 3, "D5".to_string()),
                ("b.rs".to_string(), 9, "D5".to_string()),
            ]
        );
    }

    #[test]
    fn json_round_trips() {
        let r = Report::new(vec![finding("a.rs", 1, "D1")], 1);
        let back: Report = serde_json::from_str(&r.json()).expect("valid JSON");
        assert_eq!(back, r);
    }

    #[test]
    fn human_rendering_has_location_and_summary() {
        let r = Report::new(vec![finding("crates/core/src/x.rs", 7, "D5")], 3);
        let text = r.human();
        assert!(text.contains("crates/core/src/x.rs:7: [D5 unwrap]"));
        assert!(text.contains("1 error(s), 0 warning(s) in 3 file(s) scanned"));
    }

    #[test]
    fn warnings_do_not_make_the_report_erroring() {
        let mut warn = finding("a.rs", 2, "K3");
        warn.severity = "warning".to_string();
        let r = Report::new(vec![warn], 1);
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        assert!(r.human().contains("warning [K3"));
        assert!(r.human().contains("0 error(s), 1 warning(s)"));
    }

    #[test]
    fn sarif_has_schema_rules_and_result_locations() {
        let r = Report::new(vec![finding("crates/core/src/x.rs", 7, "D5")], 3);
        let sarif = r.sarif();
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"name\": \"autotune-lint\""));
        // The full rule catalog is present.
        for rule in ALL_RULES {
            assert!(
                sarif.contains(&format!("\"id\": \"{}\"", rule.id())),
                "missing rule {} in SARIF catalog",
                rule.id()
            );
        }
        assert!(sarif.contains("\"ruleId\": \"D5\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"uri\": \"crates/core/src/x.rs\""));
        assert!(sarif.contains("\"startLine\": 7"));
    }
}
