//! `autotune-lint`: a workspace determinism & numerical-robustness analyzer.
//!
//! The parallel `SessionExecutor` promises byte-identical reports at any
//! thread count, and every experiment table is only trustworthy if tuner
//! evaluations are pure and replayable. This crate enforces the invariants
//! that property rests on, as token-level rules over the workspace's own
//! sources (the workspace vendors no parser crates, so [`lexer`] is a small
//! purpose-built lexer):
//!
//! | id | name | scope | what it catches |
//! |----|------|-------|-----------------|
//! | D1 | `unseeded-rng` | everywhere | `thread_rng` / `from_entropy` / `from_os_rng` |
//! | D2 | `wall-clock` | `math`, `sim`, `tuners` src | `Instant::now`, `SystemTime::now` |
//! | D3 | `hash-iter` | `core`, `tuners`, `bench` src | `HashMap` / `HashSet` (order hazard) |
//! | D4 | `nan-ord` | everywhere | `partial_cmp(..).unwrap()` / `.expect(..)` |
//! | D5 | `unwrap` | `core`, `math`, `sim`, `tuners` src | `.unwrap()` / `.expect(..)` |
//!
//! `#[cfg(test)]` items and `tests/` directories are exempt. Findings can be
//! waived inline with a justified `lint:allow` comment (see [`suppress`]);
//! a reason-less allow is itself reported (`A0 bare-allow`).

#![forbid(unsafe_code)]

pub mod config;
pub mod fixtures;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod suppress;

pub use report::{Finding, Report};
pub use rules::scan_source;

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "bench_results"];

/// Recursively collects `.rs` files under `root`, workspace-relative and
/// sorted for deterministic reports.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans every workspace source under `root` and returns the report.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_sources(root)?;
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(path)?;
        findings.extend(rules::scan_source(&rel, &src));
        scanned += 1;
    }
    Ok(Report::new(findings, scanned))
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_skips_vendor_and_target() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        let files = collect_sources(&root).expect("workspace readable");
        assert!(files.iter().all(|p| {
            let rel = p.strip_prefix(&root).unwrap_or(p).to_string_lossy();
            !rel.starts_with("vendor/") && !rel.starts_with("target/")
        }));
        assert!(files
            .iter()
            .any(|p| p.to_string_lossy().contains("crates/lint/src/lib.rs")));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert!(root.join("crates").is_dir());
    }
}
