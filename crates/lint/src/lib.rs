//! `autotune-lint`: a workspace determinism & numerical-robustness analyzer.
//!
//! The parallel `SessionExecutor` promises byte-identical reports at any
//! thread count, and every experiment table is only trustworthy if tuner
//! evaluations are pure and replayable. This crate enforces the invariants
//! that property rests on, as token-level rules over the workspace's own
//! sources (the workspace vendors no parser crates, so [`lexer`] is a small
//! purpose-built lexer):
//!
//! | id | name | scope | what it catches |
//! |----|------|-------|-----------------|
//! | D1 | `unseeded-rng` | everywhere | `thread_rng` / `from_entropy` / `from_os_rng` |
//! | D2 | `wall-clock` | `math`, `sim`, `tuners` src | `Instant::now`, `SystemTime::now` |
//! | D3 | `hash-iter` | `core`, `tuners`, `bench` src | `HashMap` / `HashSet` (order hazard) |
//! | D4 | `nan-ord` | everywhere | `partial_cmp(..).unwrap()` / `.expect(..)` |
//! | D5 | `unwrap` | `core`, `math`, `sim`, `tuners` src | `.unwrap()` / `.expect(..)` |
//!
//! On top of the token stream, [`parser`] builds a scoped item tree
//! (fn/mod/impl/trait spans, `unsafe` blocks, attributes) that powers the
//! semantic rule families:
//!
//! | id | name | scope | what it catches |
//! |----|------|-------|-----------------|
//! | U1 | `safety-comment` | everywhere | `unsafe` without a `// SAFETY:` justification |
//! | U2 | `unsafe-scope` | everywhere | `unsafe` outside the audited allowlist |
//! | U3 | `simd-fallback` | everywhere | AVX2 kernel without guard + scalar fallback |
//! | K1 | `knob-unknown` | `sim`, `tuners`, `bench` src | knob name that does not resolve |
//! | K2 | `knob-domain` | `sim`, `tuners`, `bench` src | value/default outside the declared domain |
//! | K3 | `knob-unused` (warn) | `sim` src | knob defined but never referenced |
//!
//! The K rules consult a workspace [`knobs::KnobTable`] extracted from the
//! simulator params modules in a first pass over all files, which is why
//! the workspace scan is two-pass ([`scan_sources`]).
//!
//! [`parser::parse_body`] further parses each fn body into a statement /
//! expression tree, and [`callgraph`] summarizes every fn's direct lock
//! acquisitions and durability waits per crate. Together they power the
//! C-series concurrency & durability-protocol analyzers in
//! [`concurrency`] (protocol configuration lives in
//! [`config::DEFAULT_PROTOCOL`]):
//!
//! | id | name | scope | what it catches |
//! |----|------|-------|-----------------|
//! | C1 | `lock-order` | all `src` | cycle in the per-crate lock-acquisition graph |
//! | C2 | `blocking-while-locked` | all `src` | fsync / recv / sleep / wait under a live guard |
//! | C3 | `condvar-wait-not-in-loop` | all `src` | `wait` result not re-checked in a loop |
//! | C4 | `ack-before-durable` | `serve` src | 2xx ack path missing a durability wait |
//! | C5 | `unwaited-ticket` | `serve` src | ticket / driver guard dropped unwaited on a path |
//!
//! [`dataflow`] propagates knob intervals and units from their
//! `ParamSpec` def sites through accessor reads into consumer
//! arithmetic and guards (one call level interprocedural via the
//! [`callgraph`] guard summaries). It powers the knob-semantics rules
//! and the facts behind `--emit-constraints` (see [`constraints`]):
//!
//! | id | name | scope | what it catches |
//! |----|------|-------|-----------------|
//! | K4 | `knob-narrow` | `sim` src | guard statically dead against the declared domain |
//! | K5 | `knob-unit` | `sim` src | conflicting units combined or compared |
//! | K6 | `knob-cross` | `sim` src | cross-knob check statically constant |
//!
//! `#[cfg(test)]` items and `tests/` directories are exempt. Findings can be
//! waived inline with a justified `lint:allow` comment (see [`suppress`]);
//! a reason-less allow is itself reported (`A0 bare-allow`). Only
//! error-severity findings fail the build; `K3` is warn-level.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod concurrency;
pub mod config;
pub mod constraints;
pub mod dataflow;
pub mod fixtures;
pub mod items;
pub mod knobs;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod suppress;

pub use knobs::KnobTable;
pub use report::{Finding, Report};
pub use rules::{scan_source, scan_sources};

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "bench_results"];

/// Recursively collects `.rs` files under `root`, workspace-relative and
/// sorted for deterministic reports.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans every workspace source under `root` and returns the report.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let paths = collect_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, fs::read_to_string(path)?));
    }
    Ok(scan_sources(&files))
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_skips_vendor_and_target() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        let files = collect_sources(&root).expect("workspace readable");
        assert!(files.iter().all(|p| {
            let rel = p.strip_prefix(&root).unwrap_or(p).to_string_lossy();
            !rel.starts_with("vendor/") && !rel.starts_with("target/")
        }));
        assert!(files
            .iter()
            .any(|p| p.to_string_lossy().contains("crates/lint/src/lib.rs")));
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert!(root.join("crates").is_dir());
    }
}
