//! C-series analyzers: statement-level concurrency and
//! durability-protocol rules over the parsed statement tree
//! ([`crate::parser::parse_body`]) and the per-crate call graph
//! ([`crate::callgraph`]).
//!
//! - **C1 lock-order**: every lock acquisition made while another guard
//!   is live contributes an edge `held → acquired` to a per-crate
//!   lock-order graph (one call level of interprocedural propagation:
//!   calling a function whose summary acquires locks counts as acquiring
//!   them here). Any edge that lies on a cycle is reported at its
//!   acquisition site.
//! - **C2 blocking-while-locked**: a configured blocking call (fsync,
//!   channel `recv`, `sleep`, socket I/O, condvar/handle waits) reached
//!   while a tracked `MutexGuard` binding is live. Condvar waits exempt
//!   the guard they atomically release (passed as an argument).
//! - **C3 condvar-wait-not-in-loop**: a guard-taking `wait` /
//!   `wait_timeout` not lexically inside a `while` / `for` / `loop`
//!   body — a missed-wakeup / spurious-wakeup hazard. The `*_while`
//!   predicate variants are exempt by construction.
//! - **C4 ack-before-durable**: in a configured state-mutating handler,
//!   a path that reaches a 2xx response constructor before reaching a
//!   durability wait (directly or via a one-level callee summary).
//! - **C5 unwaited-ticket-drop**: a `let`-bound obligation value (commit
//!   ticket pair, RAII driver guard) with a path to scope end or an
//!   explicit `return` on which its discharge method was never called.
//!   Any other use of the value (moved, stored, closed over) counts as
//!   an escape and discharges the obligation — fail-open.
//!
//! Known false-negative limits (by design, documented in DESIGN.md §4b):
//! calls inside closures are deferred and not credited to the enclosing
//! path; guards passed by reference with a single-ident argument are
//! treated as moved (released); lock keys are canonicalized to their
//! last field segment, so distinct fields with the same name conflate;
//! interprocedural propagation is one call level with name-based
//! resolution; `?` early returns are not modeled as exits for C5; and
//! obligations constructed without a `let` binding are not tracked.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{lock_key, CrateIndex};
use crate::config::{rule_applies, Protocol, RuleId};
use crate::items::ItemKind;
use crate::lexer::Token;
use crate::parser::{parse_body, Block, Call, Stmt, StmtKind};
use crate::rules::Prepared;

/// One lock-order edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Canonical key of the held lock.
    pub from: String,
    /// Canonical key of the newly acquired lock.
    pub to: String,
    /// 1-based line of the nested acquisition (the witness site).
    pub line: u32,
}

/// Per-file C-series output: C2–C5 findings (to merge into the per-file
/// pass) plus raw C1 edges (cycle detection is per-crate; see
/// [`cycle_findings`]).
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// `(rule, line)` pairs, pre-suppression.
    pub findings: Vec<(RuleId, u32)>,
    /// Lock-order edges observed in this file.
    pub edges: Vec<Edge>,
}

/// Runs every in-scope C-series analyzer over a prepared file.
pub fn analyze_file(p: &Prepared, protocol: &Protocol, index: &CrateIndex) -> FileAnalysis {
    let mut out = FileAnalysis::default();
    let c1 = rule_applies(RuleId::LockOrder, &p.ctx);
    let c2 = rule_applies(RuleId::BlockingLock, &p.ctx);
    let c3 = rule_applies(RuleId::CondvarLoop, &p.ctx);
    let c4 = rule_applies(RuleId::AckDurable, &p.ctx);
    let c5 = rule_applies(RuleId::TicketDrop, &p.ctx);
    if !(c1 || c2 || c3 || c4 || c5) {
        return out;
    }
    let tokens = &p.lexed.tokens;
    p.tree.walk(&mut |item| {
        if item.kind != ItemKind::Fn || item.is_test_only() {
            return;
        }
        let Some((bs, be)) = item.body_span else {
            return;
        };
        if p.mask.get(item.span.0).copied().unwrap_or(false) {
            return;
        }
        if protocol.lock_fns.contains(&item.name.as_str()) {
            // The lock helper itself is the acquisition primitive.
            return;
        }
        let block = parse_body(tokens, bs, be);
        if c1 || c2 {
            let mut scopes: Vec<Vec<GuardSlot>> = Vec::new();
            walk_locks(&block, protocol, index, &mut scopes, c2, &mut out);
        }
        if c3 {
            walk_c3(&block, protocol, false, &mut out.findings);
        }
        if c4 && protocol.mutating_handlers.contains(&item.name.as_str()) {
            walk_c4(&block, protocol, index, false, &mut out.findings);
        }
        if c5 {
            let mut state: Vec<Oblig> = Vec::new();
            let mut leaks: BTreeSet<u32> = BTreeSet::new();
            walk_c5(tokens, &block, protocol, &mut state, &mut leaks);
            out.findings
                .extend(leaks.into_iter().map(|l| (RuleId::TicketDrop, l)));
        }
    });
    if !c1 {
        out.edges.clear();
    }
    out
}

/// Reports the witness line of every lock-order edge that lies on a
/// cycle of the crate-wide acquisition graph, as `(file, line)` pairs.
pub fn cycle_findings(edges: &[(String, Edge)]) -> Vec<(String, u32)> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, e) in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let mut out: Vec<(String, u32)> = edges
        .iter()
        .filter(|(_, e)| reaches(&adj, &e.to, &e.from))
        .map(|(file, e)| (file.clone(), e.line))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// True when `target` is reachable from `from` in the edge graph.
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, target: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == target {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

// ---------------------------------------------------------------------------
// C1 + C2: guard-scope walk
// ---------------------------------------------------------------------------

/// A live, tracked mutex guard.
struct GuardSlot {
    /// Binding name (`let g = lock(..)`); statement temporaries are not
    /// tracked past their statement and never produce a slot.
    name: String,
    /// Canonical lock key.
    key: String,
}

/// True for calls that block the current thread.
fn is_blocking(call: &Call, protocol: &Protocol) -> bool {
    protocol.blocking_calls.contains(&call.callee.as_str())
        || protocol.durability_waits.contains(&call.callee.as_str())
        || is_condvar_wait(call, protocol)
}

/// True for guard-releasing condvar-style waits (including the
/// predicate variants and zero-arg handle `wait()`s).
fn is_condvar_wait(call: &Call, protocol: &Protocol) -> bool {
    call.is_method
        && (protocol.condvar_waits.contains(&call.callee.as_str())
            || protocol.condvar_pred_waits.contains(&call.callee.as_str()))
}

/// Walks a block tracking live guard bindings per lexical scope,
/// emitting C1 edges at nested acquisitions and C2 findings at blocking
/// calls under a live guard.
fn walk_locks(
    block: &Block,
    protocol: &Protocol,
    index: &CrateIndex,
    scopes: &mut Vec<Vec<GuardSlot>>,
    c2: bool,
    out: &mut FileAnalysis,
) {
    scopes.push(Vec::new());
    for stmt in &block.stmts {
        let mut new_guard: Option<GuardSlot> = None;
        for call in &stmt.calls {
            if call.deferred {
                continue;
            }
            if let Some(key) = lock_key(call, protocol) {
                for g in scopes.iter().flatten() {
                    if g.key != key {
                        out.edges.push(Edge {
                            from: g.key.clone(),
                            to: key.clone(),
                            line: call.line,
                        });
                    }
                }
                // Only plain `let g = ..lock()..;` statements create a
                // tracked guard. A lock in an `if let` / `while` / `match`
                // head is a statement temporary (dropped at the end of the
                // condition expression in the common `.field.clone()`
                // shapes this codebase uses), and the head's pattern
                // bindings are not the guard. Likewise a projected lock
                // (`let n = lock(&q).pending.len();`) binds the
                // projection, not the guard, which dies with the
                // statement.
                if new_guard.is_none() && matches!(stmt.kind, StmtKind::Plain) && !call.projected {
                    if let Some(name) = stmt.bindings.iter().find(|b| b.as_str() != "_") {
                        new_guard = Some(GuardSlot {
                            name: name.clone(),
                            key,
                        });
                    }
                }
                continue;
            }
            // Interprocedural, one call level: a local callee's direct
            // acquisitions count as acquisitions at this call site.
            // `drop(x)` never resolves here: the free function shadows
            // any same-named `Drop::drop` impl summaries in the index.
            if call.callee != "drop" {
                if let Some(sum) = index.fns.get(call.callee.as_str()) {
                    for l in &sum.locks {
                        for g in scopes.iter().flatten() {
                            if g.key != *l {
                                out.edges.push(Edge {
                                    from: g.key.clone(),
                                    to: l.clone(),
                                    line: call.line,
                                });
                            }
                        }
                    }
                }
            }
            let condvar = is_condvar_wait(call, protocol);
            if c2 && is_blocking(call, protocol) {
                let hazard = scopes.iter().flatten().any(|g| {
                    !(condvar && call.args.iter().any(|a| a.len() == 1 && a[0] == g.name))
                });
                if hazard {
                    out.findings.push((RuleId::BlockingLock, call.line));
                }
            }
            if !condvar {
                // A guard passed as a bare single-ident argument (incl.
                // `drop(g)`) is treated as moved: released. Borrowed
                // passes (`f(&g)`) are indistinguishable at token level
                // and release too — a documented false-negative bias.
                for a in &call.args {
                    if a.len() == 1 {
                        kill(scopes, &a[0]);
                    }
                }
            }
        }
        if let Some(g) = new_guard {
            if let Some(top) = scopes.last_mut() {
                top.push(g);
            }
        }
        for blk in stmt.blocks() {
            walk_locks(blk, protocol, index, scopes, c2, out);
        }
    }
    scopes.pop();
}

/// Releases the innermost guard named `name`.
fn kill(scopes: &mut [Vec<GuardSlot>], name: &str) {
    for scope in scopes.iter_mut().rev() {
        if let Some(pos) = scope.iter().rposition(|g| g.name == name) {
            scope.remove(pos);
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// C3: condvar wait must sit in a loop
// ---------------------------------------------------------------------------

/// Flags guard-taking condvar waits not lexically inside a loop body.
fn walk_c3(block: &Block, protocol: &Protocol, in_loop: bool, out: &mut Vec<(RuleId, u32)>) {
    for stmt in &block.stmts {
        for call in &stmt.calls {
            if call.deferred {
                continue;
            }
            if call.is_method
                && protocol.condvar_waits.contains(&call.callee.as_str())
                && !call.args.is_empty()
                && !in_loop
            {
                out.push((RuleId::CondvarLoop, call.line));
            }
        }
        let loops = matches!(stmt.kind, StmtKind::While { .. } | StmtKind::Loop { .. });
        for blk in stmt.blocks() {
            walk_c3(blk, protocol, in_loop || loops, out);
        }
    }
}

// ---------------------------------------------------------------------------
// C4: no 2xx ack before a durability wait
// ---------------------------------------------------------------------------

/// True when the call marks the path durable: a configured wait, or a
/// one-level local callee whose summary waits.
fn is_wait_call(call: &Call, protocol: &Protocol, index: &CrateIndex) -> bool {
    protocol.durability_waits.contains(&call.callee.as_str())
        || index.fns.get(call.callee.as_str()).is_some_and(|s| s.waits)
}

/// True for 2xx ack constructors (`Response::json(200, ..)`).
fn is_ack_call(call: &Call, protocol: &Protocol) -> bool {
    protocol.ack_fns.contains(&call.callee.as_str())
        && call.recv.last().map(String::as_str) == Some(protocol.ack_recv)
        && call.arg0_num.is_some_and(|n| (200..=299).contains(&n))
}

/// Path-sensitively walks a handler body. Returns `(waited_after,
/// diverged)`: whether every path reaching the end of the block has
/// passed a durability wait, and whether every path through the block
/// returns early. Branch joins AND the waited flag over non-diverging
/// branches; `while` bodies may run zero times so they do not update the
/// flag; `loop` bodies run at least once and do.
fn walk_c4(
    block: &Block,
    protocol: &Protocol,
    index: &CrateIndex,
    entry_waited: bool,
    out: &mut Vec<(RuleId, u32)>,
) -> (bool, bool) {
    let mut waited = entry_waited;
    for stmt in &block.stmts {
        // Head calls and plain sub-blocks, in token order.
        enum Ev<'a> {
            Call(&'a Call),
            Sub(&'a Block),
        }
        let mut evs: Vec<(usize, Ev)> = stmt
            .calls
            .iter()
            .filter(|c| !c.deferred)
            .map(|c| (c.tok, Ev::Call(c)))
            .collect();
        if matches!(stmt.kind, StmtKind::Plain) {
            evs.extend(stmt.subs.iter().map(|b| (b.span.0, Ev::Sub(b))));
        }
        evs.sort_by_key(|(tok, _)| *tok);
        for (_, ev) in evs {
            match ev {
                Ev::Call(c) => {
                    if is_wait_call(c, protocol, index) {
                        waited = true;
                    } else if is_ack_call(c, protocol) && !waited {
                        out.push((RuleId::AckDurable, c.line));
                    }
                }
                Ev::Sub(b) => {
                    let (w, d) = walk_c4(b, protocol, index, waited, out);
                    waited = w;
                    if d {
                        return (waited, true);
                    }
                }
            }
        }
        match &stmt.kind {
            StmtKind::Plain => {}
            StmtKind::If { then_blk, else_blk } => {
                let (wt, dt) = walk_c4(then_blk, protocol, index, waited, out);
                let (we, de) = match else_blk {
                    Some(e) => walk_c4(e, protocol, index, waited, out),
                    None => (waited, false),
                };
                if dt && de {
                    return (waited, true);
                }
                waited = match (dt, de) {
                    (true, _) => we,
                    (_, true) => wt,
                    _ => wt && we,
                };
            }
            StmtKind::While { body } => {
                // May run zero times: findings inside still report, but
                // the exit flag keeps the entry value.
                let _ = walk_c4(body, protocol, index, waited, out);
            }
            StmtKind::Loop { body } => {
                let (wb, db) = walk_c4(body, protocol, index, waited, out);
                waited = wb;
                if db {
                    return (waited, true);
                }
            }
            StmtKind::Match { arms } => {
                let mut live: Vec<bool> = Vec::new();
                for arm in arms {
                    let (w, d) = walk_c4(arm, protocol, index, waited, out);
                    if !d {
                        live.push(w);
                    }
                }
                if !arms.is_empty() && live.is_empty() {
                    return (waited, true);
                }
                if !live.is_empty() {
                    waited = live.iter().all(|w| *w);
                }
            }
        }
        if stmt.is_return {
            return (waited, true);
        }
    }
    (waited, false)
}

// ---------------------------------------------------------------------------
// C5: obligations must be discharged on every path
// ---------------------------------------------------------------------------

/// One armed obligation: a `let`-bound producer result that must see its
/// discharge method before going out of scope.
#[derive(Debug, Clone)]
struct Oblig {
    /// Names bound by the producing `let` pattern.
    members: Vec<String>,
    /// 1-based line of the producing statement (the finding anchor).
    line: u32,
    /// Method that discharges the obligation.
    discharge: &'static str,
    /// True once discharged (or escaped — fail open).
    discharged: bool,
}

/// If `call` matches a configured producer, returns its discharge
/// method. `Type::method` producers match path-qualified calls; bare
/// names match any call with that callee.
fn producer_discharge(call: &Call, protocol: &Protocol) -> Option<&'static str> {
    for (producer, discharge) in protocol.obligations {
        match producer.split_once("::") {
            Some((ty, method)) => {
                if call.callee == method && call.recv.last().map(String::as_str) == Some(ty) {
                    return Some(discharge);
                }
            }
            None => {
                if call.callee == *producer {
                    return Some(discharge);
                }
            }
        }
    }
    None
}

/// Token ranges of a statement's flat head: the condition/scrutinee for
/// structured statements, the whole span minus sub-block interiors for
/// plain ones.
fn head_ranges(stmt: &Stmt) -> Vec<(usize, usize)> {
    if !matches!(stmt.kind, StmtKind::Plain) {
        return vec![(stmt.span.0, stmt.head_end.min(stmt.span.1))];
    }
    let mut out = Vec::new();
    let mut cur = stmt.span.0;
    for sub in &stmt.subs {
        out.push((cur, sub.span.0.max(cur)));
        cur = sub.span.1.max(cur);
    }
    out.push((cur, stmt.span.1.max(cur)));
    out
}

/// What one statement does to an armed obligation.
fn stmt_discharges(tokens: &[Token], stmt: &Stmt, ob: &Oblig) -> bool {
    // An explicit discharge call naming a member (receiver or argument).
    for call in &stmt.calls {
        if call.deferred {
            continue;
        }
        if call.callee == ob.discharge
            && (call.recv.iter().any(|r| ob.members.contains(r))
                || call
                    .args
                    .iter()
                    .any(|a| a.iter().any(|x| ob.members.contains(x))))
        {
            return true;
        }
    }
    // Any other mention of a member — beyond a bare `drop(member)`,
    // which keeps the obligation armed — escapes the value (moved,
    // stored, closed over): fail open, treat as discharged.
    let mut mentions = 0usize;
    for (s, e) in head_ranges(stmt) {
        for t in tokens.iter().take(e.min(tokens.len())).skip(s) {
            if t.ident()
                .is_some_and(|id| ob.members.iter().any(|m| m == id))
            {
                mentions += 1;
            }
        }
    }
    let dropped = stmt
        .calls
        .iter()
        .filter(|c| {
            !c.is_method
                && c.callee == "drop"
                && c.args.len() == 1
                && c.args[0].len() == 1
                && ob.members.contains(&c.args[0][0])
        })
        .count();
    mentions > dropped
}

/// Joins branch states back into `state`: an obligation stays
/// discharged only if every non-diverging branch discharged it
/// (diverging branches reported their own leaks at the `return`).
fn merge_states(state: &mut [Oblig], branches: &[(Vec<Oblig>, bool)]) {
    for (i, ob) in state.iter_mut().enumerate() {
        if ob.discharged {
            continue;
        }
        let live: Vec<&Vec<Oblig>> = branches
            .iter()
            .filter(|(_, diverged)| !diverged)
            .map(|(s, _)| s)
            .collect();
        if !live.is_empty() && live.iter().all(|s| s[i].discharged) {
            ob.discharged = true;
        }
    }
}

/// Path-sensitively tracks obligations through a block. Obligations
/// created inside the block are leak-checked at its end and removed;
/// returns true when every path through the block exits via `return`.
fn walk_c5(
    tokens: &[Token],
    block: &Block,
    protocol: &Protocol,
    state: &mut Vec<Oblig>,
    leaks: &mut BTreeSet<u32>,
) -> bool {
    let base = state.len();
    for stmt in &block.stmts {
        // Effects on existing obligations first (the creating statement
        // itself must not scan its own pattern/producer mention).
        for ob in state.iter_mut() {
            if !ob.discharged && stmt_discharges(tokens, stmt, ob) {
                ob.discharged = true;
            }
        }
        // New obligations from `let`-bound producer calls.
        if stmt.bindings.iter().any(|b| b != "_") {
            for call in &stmt.calls {
                if call.deferred {
                    continue;
                }
                if let Some(discharge) = producer_discharge(call, protocol) {
                    state.push(Oblig {
                        members: stmt.bindings.clone(),
                        line: stmt.line,
                        discharge,
                        discharged: false,
                    });
                }
            }
        }
        let diverged_here = match &stmt.kind {
            StmtKind::Plain => {
                let mut d = false;
                for sub in &stmt.subs {
                    if walk_c5(tokens, sub, protocol, state, leaks) {
                        d = true;
                    }
                }
                d
            }
            StmtKind::If { then_blk, else_blk } => {
                let mut s1 = state.clone();
                let d1 = walk_c5(tokens, then_blk, protocol, &mut s1, leaks);
                let (s2, d2) = match else_blk {
                    Some(e) => {
                        let mut s = state.clone();
                        let d = walk_c5(tokens, e, protocol, &mut s, leaks);
                        (s, d)
                    }
                    None => (state.clone(), false),
                };
                merge_states(state, &[(s1, d1), (s2, d2)]);
                d1 && d2
            }
            StmtKind::While { body } | StmtKind::Loop { body } => {
                // Fail open: a discharge anywhere in the body counts
                // (the body may or may not run; per-iteration leaks of
                // body-created obligations are caught by scoping).
                let mut s = state.clone();
                let _ = walk_c5(tokens, body, protocol, &mut s, leaks);
                for (i, ob) in state.iter_mut().enumerate() {
                    if s[i].discharged {
                        ob.discharged = true;
                    }
                }
                false
            }
            StmtKind::Match { arms } => {
                if arms.is_empty() {
                    false
                } else {
                    let mut branches = Vec::new();
                    let mut all_diverge = true;
                    for arm in arms {
                        let mut s = state.clone();
                        let d = walk_c5(tokens, arm, protocol, &mut s, leaks);
                        all_diverge &= d;
                        branches.push((s, d));
                    }
                    merge_states(state, &branches);
                    all_diverge
                }
            }
        };
        if diverged_here {
            state.truncate(base);
            return true;
        }
        if stmt.is_return {
            for ob in state.iter().filter(|o| !o.discharged) {
                leaks.insert(ob.line);
            }
            state.truncate(base);
            return true;
        }
    }
    // Scope end: obligations created in this block leak if still armed.
    for ob in state[base..].iter().filter(|o| !o.discharged) {
        leaks.insert(ob.line);
    }
    state.truncate(base);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DEFAULT_PROTOCOL;
    use crate::rules;

    /// Scans `src` as a serve lib file and returns `(rule, line)` pairs
    /// plus raw edges.
    fn analyze(src: &str) -> FileAnalysis {
        let p = rules::prepare("crates/serve/src/server.rs", src).expect("classifies");
        let mut index = CrateIndex::default();
        index.add_file(&p.tree, &p.lexed.tokens, &p.mask, &DEFAULT_PROTOCOL);
        analyze_file(&p, &DEFAULT_PROTOCOL, &index)
    }

    fn rules_of(src: &str) -> Vec<(&'static str, u32)> {
        analyze(src)
            .findings
            .into_iter()
            .map(|(r, l)| (r.id(), l))
            .collect()
    }

    #[test]
    fn c1_edges_and_cycles() {
        let src = "\
fn ab(m: &Shared) {
    let a = lock(&m.alpha);
    let b = lock(&m.beta);
    b.touch(); a.touch();
}
fn ba(m: &Shared) {
    let b = lock(&m.beta);
    let a = lock(&m.alpha);
    a.touch(); b.touch();
}
";
        let fa = analyze(src);
        assert_eq!(fa.edges.len(), 2);
        let tagged: Vec<(String, Edge)> = fa
            .edges
            .into_iter()
            .map(|e| ("f.rs".to_string(), e))
            .collect();
        let cycles = cycle_findings(&tagged);
        assert_eq!(
            cycles,
            vec![("f.rs".to_string(), 3), ("f.rs".to_string(), 8)]
        );
    }

    #[test]
    fn c1_consistent_order_is_clean() {
        let src = "\
fn ab(m: &Shared) { let a = lock(&m.alpha); let b = lock(&m.beta); b.t(); a.t(); }
fn ab2(m: &Shared) { let a = lock(&m.alpha); let b = lock(&m.beta); b.t(); a.t(); }
";
        let fa = analyze(src);
        let tagged: Vec<(String, Edge)> = fa
            .edges
            .into_iter()
            .map(|e| ("f.rs".to_string(), e))
            .collect();
        assert!(cycle_findings(&tagged).is_empty());
    }

    #[test]
    fn c1_sees_one_level_through_calls() {
        let src = "\
fn helper(m: &Shared) {
    let b = lock(&m.beta);
    b.touch();
}
fn outer(m: &Shared) {
    let a = lock(&m.alpha);
    helper(m);
    a.touch();
}
fn reversed(m: &Shared) {
    let b = lock(&m.beta);
    let a = lock(&m.alpha);
    a.touch(); b.touch();
}
";
        let fa = analyze(src);
        let tagged: Vec<(String, Edge)> = fa
            .edges
            .into_iter()
            .map(|e| ("f.rs".to_string(), e))
            .collect();
        // alpha→beta via the helper call (line 7), beta→alpha direct
        // (line 12): a cycle involving both witness lines.
        assert_eq!(
            cycle_findings(&tagged),
            vec![("f.rs".to_string(), 7), ("f.rs".to_string(), 12)]
        );
    }

    #[test]
    fn c2_blocking_under_guard_and_release() {
        let bad = "\
fn f(m: &Shared, file: &File) {
    let g = lock(&m.inner);
    file.sync_all();
    g.touch();
}
";
        assert_eq!(rules_of(bad), vec![("C2", 3)]);
        let good = "\
fn f(m: &Shared, file: &File) {
    let g = lock(&m.inner);
    drop(g);
    file.sync_all();
}
";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn c2_condvar_exempts_its_own_guard_only() {
        let own = "\
fn f(m: &Shared) {
    let mut g = lock(&m.inner);
    while !*g { g = m.cv.wait(g); }
}
";
        assert!(rules_of(own).is_empty());
        let other = "\
fn f(m: &Shared) {
    let outer = lock(&m.outer);
    let mut g = lock(&m.inner);
    while !*g { g = m.cv.wait(g); }
    outer.touch();
}
";
        assert_eq!(rules_of(other), vec![("C2", 4)]);
    }

    #[test]
    fn c2_guard_scopes_end_at_block_close() {
        let src = "\
fn f(m: &Shared, file: &File) {
    {
        let g = lock(&m.inner);
        g.touch();
    }
    file.sync_all();
}
";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn c3_wait_outside_loop_fires() {
        let bad = "\
fn f(m: &Shared) {
    let mut g = lock(&m.inner);
    g = m.cv.wait(g);
    g.touch();
}
";
        assert_eq!(rules_of(bad), vec![("C3", 3)]);
        let good = "\
fn f(m: &Shared) {
    let mut g = lock(&m.inner);
    while !g.ready { g = m.cv.wait(g); }
}
";
        assert!(rules_of(good).is_empty());
        // Predicate variants and zero-arg handle waits are exempt.
        let exempt = "\
fn f(m: &Shared, handle: &JobHandle) {
    let mut g = lock(&m.inner);
    g = m.cv.wait_while(g, |s| !s.ready);
    drop(g);
    handle.wait();
}
";
        assert!(rules_of(exempt).is_empty());
    }

    #[test]
    fn c4_ack_before_wait_fires_line_exact() {
        let bad = "\
fn cancel_session(state: &Shared, id: u64) -> Result<Response, Error> {
    let mut s = lock(&state.sessions);
    let ticket = s.cancel(id)?;
    drop(s);
    let out = Response::json(200, &body);
    state.sink.wait_durable(ticket)?;
    Ok(out)
}
";
        assert_eq!(rules_of(bad), vec![("C4", 5)]);
        let good = "\
fn cancel_session(state: &Shared, id: u64) -> Result<Response, Error> {
    let mut s = lock(&state.sessions);
    let ticket = s.cancel(id)?;
    drop(s);
    state.sink.wait_durable(ticket)?;
    Ok(Response::json(200, &body))
}
";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn c4_joins_branches_and_sees_helper_waits() {
        // One branch waits, the other does not: the ack after the join
        // must fire; error acks (4xx/5xx) never do.
        let src = "\
fn advance_session(state: &Shared, fast: bool) -> Result<Response, Error> {
    if fast {
        state.sink.wait_durable(t)?;
    }
    Ok(Response::json(200, &body))
}
";
        assert_eq!(rules_of(src), vec![("C4", 5)]);
        let helper = "\
fn await_commit(state: &Shared, t: u64) -> Result<(), Error> {
    state.sink.wait_durable(t)
}
fn create_session(state: &Shared) -> Result<Response, Error> {
    await_commit(state, t)?;
    Ok(Response::json(201, &body))
}
fn cancel_session(state: &Shared) -> Result<Response, Error> {
    Ok(Response::json(409, &body))
}
";
        assert!(rules_of(helper).is_empty());
    }

    #[test]
    fn c4_only_applies_to_configured_handlers_in_serve() {
        let src = "\
fn status_probe(state: &Shared) -> Result<Response, Error> {
    Ok(Response::json(200, &body))
}
";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn c5_unwaited_ticket_paths() {
        let bad = "\
fn f(session: &mut LiveSession, failed: bool) -> Result<(), Error> {
    let (sink, ticket) = session.durability_barrier();
    if failed {
        return Err(Error::backpressure());
    }
    sink.wait_durable(ticket)?;
    Ok(())
}
";
        assert_eq!(rules_of(bad), vec![("C5", 2)]);
        let good = "\
fn f(session: &mut LiveSession, failed: bool) -> Result<(), Error> {
    let (sink, ticket) = session.durability_barrier();
    if failed {
        sink.wait_durable(ticket)?;
        return Err(Error::backpressure());
    }
    sink.wait_durable(ticket)?;
    Ok(())
}
";
        assert!(rules_of(good).is_empty());
    }

    #[test]
    fn c5_tracks_driver_guards_and_escapes() {
        let bad = "\
fn f(entry: &SessionEntry) {
    let guard = DriverGuard::new(entry);
    run(unit);
}
";
        assert_eq!(rules_of(bad), vec![("C5", 2)]);
        let good = "\
fn f(entry: &SessionEntry) {
    let guard = DriverGuard::new(entry);
    run(unit);
    guard.disarm();
}
";
        assert!(rules_of(good).is_empty());
        // Moving the value somewhere else escapes the local obligation.
        let escaped = "\
fn f(entry: &SessionEntry, keep: &mut Vec<DriverGuard>) {
    let guard = DriverGuard::new(entry);
    keep.push(guard);
}
";
        assert!(rules_of(escaped).is_empty());
    }

    #[test]
    fn c_rules_skip_test_code_and_other_crates() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(m: &Shared, file: &File) {
        let g = lock(&m.inner);
        file.sync_all();
        g.touch();
    }
}
";
        assert!(rules_of(src).is_empty());
        // C4/C5 are protocol-crate-scoped: the same handler in core is
        // not checked.
        let p = rules::prepare(
            "crates/core/src/x.rs",
            "fn create_session(s: &S) -> Result<Response, Error> { Ok(Response::json(200, &b)) }\n",
        )
        .expect("classifies");
        let index = CrateIndex::default();
        let fa = analyze_file(&p, &DEFAULT_PROTOCOL, &index);
        assert!(fa.findings.is_empty());
    }
}
