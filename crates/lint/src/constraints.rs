//! Compiles static knob semantics into the committed
//! `bench_results/knob_constraints.json` artifact
//! (`autotune-lint --emit-constraints <path>`).
//!
//! Three knowledge sources merge into one [`KnobConstraints`] document
//! per target system:
//!
//! 1. **K4–K6 dataflow facts** ([`crate::dataflow`]): hard (assert /
//!    protective-branch) range guards shrink per-knob feasible bounds;
//!    hard cross-knob relations become dependency constraints. Soft
//!    facts are recorded as provenance only — a branch condition is a
//!    preference, not a feasibility constraint.
//! 2. **Best-practice rule books** (`tuners::rule::bestpractice`): each
//!    rule's action, evaluated against the system's canonical profiles,
//!    becomes a weight-1.0 point prior on its knob.
//! 3. **SPEX constraint inference** (`tuners::rule::spex`) contributes
//!    the resource-feasibility dependencies; ConfNav's one-at-a-time
//!    probe levels contribute weight-0.25 prior hints per knob.
//!
//! The compiler is deterministic: systems and knobs are BTreeMap-keyed,
//! sources are sorted and deduplicated, and dependencies follow a fixed
//! source order — so the CI drift job can compare artifacts byte for
//! byte.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use autotune_core::constraints::{
    Dependency, KnobConstraint, KnobConstraints, Prior, SystemConstraints,
};
use autotune_core::{ConfigSpace, Objective, ParamDomain, ParamValue, SystemProfile};
use autotune_sim::{DbmsSimulator, HadoopSimulator, SparkSimulator};
use autotune_tuners::rule::spex::Constraint as SpexConstraint;
use autotune_tuners::rule::{
    confnav, dbms_rulebook, hadoop_rulebook, spark_rulebook, ConstraintSet, RuleBook,
};

use crate::callgraph::CrateIndex;
use crate::config::{rule_applies, RuleId, DEFAULT_PROTOCOL};
use crate::dataflow::{self, CrossFact, CrossKind, NarrowFact};
use crate::knobs::{self, KnobTable};
use crate::rules::{prepare, Prepared};

/// One target system's static description: its tuner-facing space, the
/// canonical deployment profiles priors are computed against, and its
/// best-practice rule book.
struct SystemDef {
    name: &'static str,
    /// Def-site path fragment attributing knob table entries to this
    /// system (`crates/sim/src/<tag>/params.rs`).
    path_tag: &'static str,
    space: ConfigSpace,
    profiles: Vec<SystemProfile>,
    book: RuleBook,
}

fn system_defs() -> Vec<SystemDef> {
    vec![
        SystemDef {
            name: "dbms",
            path_tag: "/dbms/",
            space: autotune_sim::dbms::dbms_space(),
            profiles: vec![
                DbmsSimulator::oltp_default().profile(),
                DbmsSimulator::olap_default().profile(),
            ],
            book: dbms_rulebook(),
        },
        SystemDef {
            name: "hadoop",
            path_tag: "/hadoop/",
            space: autotune_sim::hadoop::hadoop_space(),
            profiles: vec![HadoopSimulator::terasort_default().profile()],
            book: hadoop_rulebook(),
        },
        SystemDef {
            name: "spark",
            path_tag: "/spark/",
            space: autotune_sim::spark::spark_space(),
            profiles: vec![SparkSimulator::aggregation_default().profile()],
            book: spark_rulebook(),
        },
    ]
}

/// The numeric `[lo, hi]` box a domain spans (booleans 0/1,
/// categoricals choice indices).
fn domain_bounds(domain: &ParamDomain) -> (f64, f64) {
    match domain {
        ParamDomain::Int { min, max, .. } => (*min as f64, *max as f64),
        ParamDomain::Float { min, max, .. } => (*min, *max),
        ParamDomain::Bool => (0.0, 1.0),
        ParamDomain::Categorical { choices } => (0.0, (choices.len().saturating_sub(1)) as f64),
    }
}

/// A value's numeric encoding under a domain (`None` when a string does
/// not name a choice).
fn numeric_value(domain: &ParamDomain, value: &ParamValue) -> Option<f64> {
    match (domain, value) {
        (ParamDomain::Categorical { choices }, ParamValue::Str(s)) => {
            choices.iter().position(|c| c == s).map(|i| i as f64)
        }
        (_, v) => v.as_f64(),
    }
}

/// Whether a domain is declared log-scaled.
fn domain_log(domain: &ParamDomain) -> bool {
    match domain {
        ParamDomain::Int { log, .. } | ParamDomain::Float { log, .. } => *log,
        _ => false,
    }
}

/// Per-file dataflow facts over the prepared workspace, tagged with the
/// file that produced them.
struct StaticFacts {
    narrows: Vec<(String, NarrowFact)>,
    crosses: Vec<(String, CrossFact)>,
}

/// Runs the K4–K6 dataflow pass over every file in scope (the same
/// scope the lint rules use) and collects the facts.
fn collect_facts(prepared: &[Prepared], table: &KnobTable) -> StaticFacts {
    let mut indexes: BTreeMap<String, CrateIndex> = BTreeMap::new();
    for p in prepared {
        if p.ctx.is_lib_source && !p.ctx.is_test_source {
            indexes
                .entry(p.ctx.crate_name.clone())
                .or_default()
                .add_file(&p.tree, &p.lexed.tokens, &p.mask, &DEFAULT_PROTOCOL);
        }
    }
    let empty = CrateIndex::default();
    let mut facts = StaticFacts {
        narrows: Vec::new(),
        crosses: Vec::new(),
    };
    for p in prepared {
        if p.ctx.is_test_source || !rule_applies(RuleId::KnobNarrow, &p.ctx) {
            continue;
        }
        let index = indexes.get(&p.ctx.crate_name).unwrap_or(&empty);
        let analysis = dataflow::analyze_file(p, table, index);
        facts
            .narrows
            .extend(analysis.narrows.into_iter().map(|n| (p.rel.clone(), n)));
        facts
            .crosses
            .extend(analysis.crosses.into_iter().map(|c| (p.rel.clone(), c)));
    }
    facts
}

/// Compiles the artifact from in-memory `(rel_path, source)` pairs plus
/// the rule-DSL knowledge for the three target systems.
pub fn compile_sources(files: &[(String, String)]) -> KnobConstraints {
    let prepared: Vec<Prepared> = files
        .iter()
        .filter_map(|(rel, src)| prepare(rel, src))
        .collect();
    let table = knobs::extract_table(
        prepared
            .iter()
            .map(|p| (p.rel.as_str(), p.lexed.tokens.as_slice())),
    );
    let facts = collect_facts(&prepared, &table);

    let mut systems = BTreeMap::new();
    for def in system_defs() {
        systems.insert(def.name.to_string(), compile_system(&def, &table, &facts));
    }
    KnobConstraints {
        version: KnobConstraints::VERSION,
        generator: "autotune-lint --emit-constraints".to_string(),
        systems,
    }
}

/// Whether the knob named `name` is defined in this system's params
/// module (per the statically-extracted knob table).
fn knob_in_system(table: &KnobTable, name: &str, path_tag: &str) -> bool {
    table
        .knobs
        .get(name)
        .is_some_and(|d| d.file.contains(path_tag))
}

fn compile_system(def: &SystemDef, table: &KnobTable, facts: &StaticFacts) -> SystemConstraints {
    let mut knobs_out = BTreeMap::new();
    for spec in def.space.params() {
        let (dlo, dhi) = domain_bounds(&spec.domain);
        let (mut rlo, mut rhi) = (dlo, dhi);
        let mut sources = BTreeSet::new();
        for (file, n) in &facts.narrows {
            if n.knob != spec.name || !knob_in_system(table, &n.knob, def.path_tag) {
                continue;
            }
            sources.insert(format!(
                "K4{}:{file}:{}",
                if n.hard { "" } else { "(soft)" },
                n.line
            ));
            if n.hard {
                rlo = rlo.max(n.lo);
                rhi = rhi.min(n.hi);
            }
        }
        // An empty intersection means the guards themselves disagree
        // with the domain (K4 reports it); fail open to the declared box.
        if rlo > rhi {
            (rlo, rhi) = (dlo, dhi);
        }
        (rlo, rhi) = (rlo.max(dlo), rhi.min(dhi));
        if matches!(spec.domain, ParamDomain::Int { .. }) {
            (rlo, rhi) = (rlo.ceil(), rhi.floor());
        }

        let mut priors = Vec::new();
        for rule in def.book.rules() {
            if rule.knob != spec.name {
                continue;
            }
            let Some(profile) = def.profiles.iter().find(|p| rule.applies(p)) else {
                continue;
            };
            let raw = rule.value.compute(profile);
            let Some(v) = numeric_value(&spec.domain, &raw) else {
                continue;
            };
            let prior = Prior {
                value: v.clamp(dlo, dhi),
                weight: 1.0,
                source: format!("bestpractice:{}", rule.name),
            };
            if !priors.contains(&prior) {
                priors.push(prior);
            }
        }
        for level in confnav::LEVELS {
            let Some(v) = numeric_value(&spec.domain, &spec.domain.decode(level)) else {
                continue;
            };
            priors.push(Prior {
                value: v,
                weight: 0.25,
                source: "confnav:oat-level".to_string(),
            });
        }

        knobs_out.insert(
            spec.name.clone(),
            KnobConstraint {
                declared_lo: dlo,
                declared_hi: dhi,
                reduced_lo: rlo,
                reduced_hi: rhi,
                log_scale: domain_log(&spec.domain),
                default: numeric_value(&spec.domain, &spec.default),
                unit: spec.unit.clone(),
                priors,
                sources: sources.into_iter().collect(),
            },
        );
    }

    let mut deps = Vec::new();
    let memory_mb = def
        .profiles
        .first()
        .map(|p| p.memory_per_node_mb)
        .unwrap_or(0.0);
    // Instantiate the resource books against each deployment profile the
    // system ships and keep, per constraint, the most permissive budget:
    // the artifact must not exclude a configuration that is feasible for
    // some workload the system claims to serve (workload-specific
    // narrowing is the priors' job, not the dependencies'). Profile-aware
    // inference emits the same constraint shapes in the same order for a
    // fixed space, so variants merge positionally.
    let per_profile: Vec<ConstraintSet> = if def.profiles.is_empty() {
        vec![ConstraintSet::infer_for(&def.space)]
    } else {
        def.profiles
            .iter()
            .map(|p| ConstraintSet::infer_for_profile(&def.space, p))
            .collect()
    };
    for i in 0..per_profile[0].all().len() {
        let variants: Vec<&SpexConstraint> = per_profile.iter().map(|s| &s.all()[i]).collect();
        deps.push(match variants[0] {
            SpexConstraint::MemorySum {
                terms,
                limit_fraction,
                ..
            } => {
                let mut merged = terms.clone();
                let mut limit = *limit_fraction;
                for v in &variants[1..] {
                    if let SpexConstraint::MemorySum {
                        terms: t,
                        limit_fraction: lf,
                        ..
                    } = v
                    {
                        for (m, o) in merged.iter_mut().zip(t) {
                            m.1 = m.1.min(o.1);
                        }
                        limit = limit.max(*lf);
                    }
                }
                Dependency::SumLe {
                    terms: merged,
                    limit: limit * memory_mb,
                    source: "spex:memory-sum".to_string(),
                }
            }
            SpexConstraint::AtMostFactorOf {
                knob, of, factor, ..
            } => {
                let mut f = *factor;
                for v in &variants[1..] {
                    if let SpexConstraint::AtMostFactorOf { factor: vf, .. } = v {
                        f = f.max(*vf);
                    }
                }
                Dependency::LeFactor {
                    a: knob.clone(),
                    b: of.clone(),
                    factor: f,
                    source: "spex:at-most-factor".to_string(),
                }
            }
            SpexConstraint::ProductUnderMemory {
                a,
                b,
                limit_fraction,
                ..
            } => {
                let mut limit = *limit_fraction;
                for v in &variants[1..] {
                    if let SpexConstraint::ProductUnderMemory {
                        limit_fraction: lf, ..
                    } = v
                    {
                        limit = limit.max(*lf);
                    }
                }
                Dependency::ProductLe {
                    terms: vec![(a.clone(), 1.0), (b.clone(), 1.0)],
                    limit: limit * memory_mb,
                    source: "spex:product-under-memory".to_string(),
                }
            }
        });
    }
    // Hard K6 facts whose knobs both belong to this system.
    let mut k6: Vec<Dependency> = Vec::new();
    for (file, c) in &facts.crosses {
        if !c.hard
            || def.space.spec(&c.a).is_none()
            || def.space.spec(&c.b).is_none()
            || !knob_in_system(table, &c.a, def.path_tag)
        {
            continue;
        }
        let source = format!("K6:{file}:{}", c.line);
        let dep = match &c.kind {
            CrossKind::Product => continue, // structure, not a bound
            CrossKind::LeFactor(f) => Dependency::LeFactor {
                a: c.a.clone(),
                b: c.b.clone(),
                factor: *f,
                source,
            },
            CrossKind::ProductLe(limit) => Dependency::ProductLe {
                terms: vec![(c.a.clone(), 1.0), (c.b.clone(), 1.0)],
                limit: *limit,
                source,
            },
        };
        if !k6.contains(&dep) {
            k6.push(dep);
        }
    }
    k6.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
    deps.extend(k6);

    SystemConstraints {
        knobs: knobs_out,
        deps,
    }
}

/// Compiles the artifact for the workspace rooted at `root`.
pub fn compile_workspace(root: &Path) -> std::io::Result<KnobConstraints> {
    let paths = crate::collect_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(path)?));
    }
    Ok(compile_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::find_workspace_root;

    fn compiled() -> KnobConstraints {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        compile_workspace(&root).expect("workspace readable")
    }

    #[test]
    fn covers_every_knob_of_all_three_systems() {
        let c = compiled();
        for def in system_defs() {
            let sys = c.system(def.name).expect("system present");
            for spec in def.space.params() {
                let k = sys
                    .knobs
                    .get(&spec.name)
                    .unwrap_or_else(|| panic!("{}:{} missing", def.name, spec.name));
                assert!(k.reduced_lo >= k.declared_lo);
                assert!(k.reduced_hi <= k.declared_hi);
                assert!(k.reduced_lo <= k.reduced_hi);
                assert!(!k.priors.is_empty(), "{} has confnav priors", spec.name);
            }
        }
    }

    #[test]
    fn rulebook_priors_and_spex_deps_are_compiled() {
        let c = compiled();
        let dbms = c.system("dbms").expect("dbms");
        let sb = &dbms.knobs["shared_buffers_mb"];
        assert!(sb
            .priors
            .iter()
            .any(|p| p.source == "bestpractice:shared-buffers-25pct" && p.weight == 1.0));
        assert!(dbms
            .deps
            .iter()
            .any(|d| matches!(d, Dependency::SumLe { source, .. } if source == "spex:memory-sum")));
        let hadoop = c.system("hadoop").expect("hadoop");
        assert!(hadoop.deps.iter().any(|d| matches!(
            d,
            Dependency::LeFactor { a, b, .. } if a == "io_sort_mb" && b == "map_heap_mb"
        )));
        let spark = c.system("spark").expect("spark");
        assert!(spark.deps.iter().any(|d| matches!(
            d,
            Dependency::ProductLe { terms, .. }
                if terms.iter().any(|(k, _)| k == "executor_instances")
        )));
    }

    #[test]
    fn hard_guard_in_sources_reduces_bounds() {
        // A protective panic in (synthetic) dbms engine code proves
        // work_mem_mb below 8 MB is infeasible; the artifact's reduced
        // bound must reflect it while the declared bound stays put.
        let params = r#"
pub fn space() -> Vec<ParamSpec> {
    vec![ParamSpec::int_log("work_mem_mb", 1, 4096, 4, "sort memory").with_unit("MB")]
}
"#;
        let engine = r#"
pub fn plan(c: &C) -> f64 {
    let w = c.f64("work_mem_mb");
    assert!(w >= 8.0, "work_mem floor");
    w * 2.0
}
"#;
        let files = vec![
            (
                "crates/sim/src/dbms/params.rs".to_string(),
                params.to_string(),
            ),
            (
                "crates/sim/src/dbms/engine.rs".to_string(),
                engine.to_string(),
            ),
        ];
        let c = compile_sources(&files);
        let k = &c.system("dbms").expect("dbms").knobs["work_mem_mb"];
        assert_eq!(k.declared_lo, 1.0);
        assert_eq!(k.reduced_lo, 8.0);
        assert_eq!(k.reduced_hi, 4096.0);
        assert!(
            k.sources
                .iter()
                .any(|s| s.starts_with("K4:crates/sim/src/dbms/engine.rs:")),
            "sources: {:?}",
            k.sources
        );
    }

    #[test]
    fn artifact_is_deterministic() {
        let a = compiled().to_json().expect("serializes");
        let b = compiled().to_json().expect("serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn defaults_sit_inside_declared_bounds() {
        let c = compiled();
        for sys in c.systems.values() {
            for (name, k) in &sys.knobs {
                let d = k.default.unwrap_or_else(|| panic!("{name} default"));
                assert!(d >= k.declared_lo && d <= k.declared_hi, "{name}");
            }
        }
    }
}
