//! DBMS workload descriptions: query mixes over a synthetic schema.

use serde::{Deserialize, Serialize};

/// The query archetypes the engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Primary-key point lookup.
    PointSelect,
    /// Single-row update (read + write + WAL flush).
    Update,
    /// Full table scan with predicate.
    Scan,
    /// Two-table hash join.
    Join,
    /// Sort + aggregation (GROUP BY / ORDER BY).
    SortAgg,
}

impl QueryKind {
    /// All archetypes.
    pub fn all() -> [QueryKind; 5] {
        [
            QueryKind::PointSelect,
            QueryKind::Update,
            QueryKind::Scan,
            QueryKind::Join,
            QueryKind::SortAgg,
        ]
    }
}

/// A weighted query mix plus data-set shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbmsWorkload {
    /// Human-readable name.
    pub name: String,
    /// (kind, count) pairs: how many queries of each kind one run executes.
    pub mix: Vec<(QueryKind, u64)>,
    /// Total size of the main table in MB.
    pub table_mb: f64,
    /// Hot working set touched by point operations, MB.
    pub working_set_mb: f64,
    /// Data volume touched by each analytical query (scan/join/sort), MB.
    /// OLTP reporting queries touch small slices; OLAP queries sweep the
    /// full table.
    pub analytic_mb: f64,
    /// Concurrent client sessions.
    pub concurrency: usize,
    /// Contention level in `[0, 1]`: fraction of updates hitting hot rows.
    pub contention: f64,
}

impl DbmsWorkload {
    /// TPC-C-flavoured OLTP: dominated by point reads/updates, high
    /// concurrency, meaningful contention.
    pub fn oltp() -> Self {
        DbmsWorkload {
            name: "oltp".to_string(),
            mix: vec![
                (QueryKind::PointSelect, 60_000),
                (QueryKind::Update, 30_000),
                (QueryKind::Join, 200),
                (QueryKind::SortAgg, 100),
            ],
            table_mb: 20_480.0,
            working_set_mb: 2_048.0,
            analytic_mb: 512.0,
            concurrency: 64,
            contention: 0.3,
        }
    }

    /// TPC-H-flavoured OLAP: scans, joins, sorts; few clients.
    pub fn olap() -> Self {
        DbmsWorkload {
            name: "olap".to_string(),
            mix: vec![
                (QueryKind::Scan, 30),
                (QueryKind::Join, 20),
                (QueryKind::SortAgg, 20),
                (QueryKind::PointSelect, 500),
            ],
            table_mb: 51_200.0,
            working_set_mb: 8_192.0,
            analytic_mb: 51_200.0,
            concurrency: 8,
            contention: 0.02,
        }
    }

    /// HTAP mix.
    pub fn mixed() -> Self {
        DbmsWorkload {
            name: "mixed".to_string(),
            mix: vec![
                (QueryKind::PointSelect, 30_000),
                (QueryKind::Update, 10_000),
                (QueryKind::Scan, 10),
                (QueryKind::Join, 10),
                (QueryKind::SortAgg, 10),
            ],
            table_mb: 30_720.0,
            working_set_mb: 4_096.0,
            analytic_mb: 8_192.0,
            concurrency: 32,
            contention: 0.15,
        }
    }

    /// Count of queries of a given kind.
    pub fn count(&self, kind: QueryKind) -> u64 {
        self.mix
            .iter()
            .filter(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Total queries in one run.
    pub fn total_queries(&self) -> u64 {
        self.mix.iter().map(|(_, c)| *c).sum()
    }

    /// Fraction of write queries — drives WAL/checkpoint/lock pressure.
    pub fn write_fraction(&self) -> f64 {
        let writes = self.count(QueryKind::Update) as f64;
        let total = self.total_queries() as f64;
        if total > 0.0 {
            writes / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_shapes() {
        let oltp = DbmsWorkload::oltp();
        let olap = DbmsWorkload::olap();
        assert!(oltp.write_fraction() > 0.2);
        assert!(olap.write_fraction() < 0.01);
        assert!(olap.count(QueryKind::Scan) > oltp.count(QueryKind::Scan));
        assert!(oltp.concurrency > olap.concurrency);
    }

    #[test]
    fn counting() {
        let w = DbmsWorkload::mixed();
        assert_eq!(w.total_queries(), 30_000 + 10_000 + 10 + 10 + 10);
        assert_eq!(w.count(QueryKind::Join), 10);
        assert_eq!(w.count(QueryKind::Update), 10_000);
    }

    #[test]
    fn all_kinds_enumerated() {
        assert_eq!(QueryKind::all().len(), 5);
    }
}
