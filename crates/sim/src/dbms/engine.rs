//! The analytical + stochastic DBMS simulator.
//!
//! This is the "real system" the DBMS tuners of Table 2 are evaluated
//! against. It is an *analytical* model — buffer-pool hit curves, external
//! sort/hash spill passes, WAL group commit, checkpoint bursts, lock
//! waits, parallel-scan Amdahl scaling, planner mis-costing — composed so
//! that the documented pathologies of real engines appear:
//!
//! * concave diminishing returns on `shared_buffers`;
//! * a *cliff* when configured memory overcommits physical RAM
//!   (swapping, then OOM-kill for severe overcommit — "improper settings
//!   … cause significant performance degradation and stability issues");
//! * interaction between `work_mem` and `shared_buffers` (they compete
//!   for the same RAM — challenge (i) of the tutorial);
//! * U-shaped responses for `deadlock_timeout` and `checkpoint_timeout`;
//! * hardware-dependent optima (`random_page_cost`,
//!   `effective_io_concurrency` depend on disk class).

use crate::cluster::NodeSpec;
use crate::dbms::params::{dbms_space, knobs::*};
use crate::dbms::workload::{DbmsWorkload, QueryKind};
use crate::noise::NoiseModel;
use crate::trace::{PhaseTrace, ResourceTrace};
use autotune_core::{
    ConfigSpace, Configuration, Metrics, Objective, Observation, SystemKind, SystemProfile,
    WorkloadClass,
};
use rand::rngs::StdRng;

/// Penalty multiplier applied to the deterministic runtime when a run
/// fails (OOM): models "job killed at timeout".
const FAILURE_PENALTY: f64 = 10.0;

/// Page size assumed by the random-I/O model (KB).
const PAGE_KB: f64 = 8.0;

/// Detailed, deterministic result of one simulated run.
#[derive(Debug, Clone)]
pub struct DbmsRun {
    /// Total runtime in seconds (before measurement noise).
    pub runtime_secs: f64,
    /// Whether the configuration OOM-killed the server.
    pub failed: bool,
    /// ~20 internal metrics.
    pub metrics: Metrics,
    /// Per-phase resource trace.
    pub trace: ResourceTrace,
}

/// The simulated DBMS: one node, one workload, one knob space.
#[derive(Debug, Clone)]
pub struct DbmsSimulator {
    space: ConfigSpace,
    /// Host hardware.
    pub node: NodeSpec,
    /// Workload being served.
    pub workload: DbmsWorkload,
    /// Measurement noise applied on `evaluate`.
    pub noise: NoiseModel,
}

impl DbmsSimulator {
    /// Creates a simulator for the given node and workload.
    pub fn new(node: NodeSpec, workload: DbmsWorkload) -> Self {
        DbmsSimulator {
            space: dbms_space(),
            node,
            workload,
            noise: NoiseModel::realistic(),
        }
    }

    /// Default OLTP instance on default hardware.
    pub fn oltp_default() -> Self {
        DbmsSimulator::new(NodeSpec::default(), DbmsWorkload::oltp())
    }

    /// Default OLAP instance on default hardware.
    pub fn olap_default() -> Self {
        DbmsSimulator::new(NodeSpec::default(), DbmsWorkload::olap())
    }

    /// Replaces the noise model (builder style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// The "true" random-page-cost of the host disk: SSD-class storage
    /// (high IOPS) wants a low planner `random_page_cost`, spinning disks
    /// a high one. The planner-quality penalty compares the knob to this.
    pub fn true_random_page_cost(&self) -> f64 {
        // 8 KB pages: sequential reads deliver disk_mbps, random reads
        // deliver iops pages; ratio of per-page costs.
        let seq_pages_per_sec = self.node.disk_mbps * 1024.0 / PAGE_KB;
        (seq_pages_per_sec / self.node.disk_iops).clamp(1.0, 10.0)
    }

    /// Buffer-pool hit ratio for point accesses: concave saturating curve
    /// in `shared_buffers / working_set`.
    fn hit_ratio(&self, shared_buffers_mb: f64) -> f64 {
        let ws = self.workload.working_set_mb.max(1.0);
        1.0 - 0.95 * (-2.2 * shared_buffers_mb / ws).exp()
    }

    /// Deterministic simulation of one run. This is the ground-truth cost
    /// model; [`Objective::evaluate`] adds measurement noise on top.
    pub fn simulate(&self, config: &Configuration) -> DbmsRun {
        let w = &self.workload;
        let node = &self.node;
        let mut metrics = Metrics::new();
        let mut trace = ResourceTrace::default();

        // ---- knob values -------------------------------------------------
        let shared_buffers = config.f64(SHARED_BUFFERS_MB);
        let work_mem = config.f64(WORK_MEM_MB);
        let maintenance_mem = config.f64(MAINTENANCE_WORK_MEM_MB);
        let wal_buffers = config.f64(WAL_BUFFERS_MB);
        let checkpoint_timeout = config.f64(CHECKPOINT_TIMEOUT_S);
        let parallel_workers = config.f64(MAX_PARALLEL_WORKERS);
        let eio = config.f64(EFFECTIVE_IO_CONCURRENCY);
        let rpc = config.f64(RANDOM_PAGE_COST);
        let bgwriter_delay = config.f64(BGWRITER_DELAY_MS);
        let deadlock_timeout = config.f64(DEADLOCK_TIMEOUT_MS);
        let temp_buffers = config.f64(TEMP_BUFFERS_MB);
        let stats_target = config.f64(STATS_TARGET);

        // ---- memory pressure (the cliff) ---------------------------------
        // Sorts/hashes are active on a fraction of sessions at once.
        let active_sorts = (w.concurrency as f64 * 0.5).max(1.0);
        let committed = shared_buffers
            + work_mem * active_sorts
            + maintenance_mem
            + wal_buffers
            + temp_buffers * (w.concurrency as f64 * 0.25).max(1.0)
            + 512.0; // fixed server overhead
        let overcommit = committed / node.memory_mb;
        metrics.insert("mem_committed_mb".into(), committed);
        metrics.insert("mem_overcommit".into(), overcommit);
        let failed = overcommit > 1.5;
        // Swap penalty ramps quadratically once past physical RAM.
        let swap_penalty = if overcommit > 1.0 {
            1.0 + 8.0 * (overcommit - 1.0).powi(2)
        } else {
            1.0
        };
        metrics.insert(
            "swap_activity".into(),
            if overcommit > 1.0 {
                overcommit - 1.0
            } else {
                0.0
            },
        );

        // ---- planner quality ---------------------------------------------
        let rpc_true = self.true_random_page_cost();
        let plan_penalty = 1.0 + 0.25 * (rpc / rpc_true).ln().abs();
        // Cardinality misestimates hurt joins when statistics are coarse.
        let stats_penalty = 1.0 + 0.35 * ((100.0 / stats_target).ln()).max(0.0);
        metrics.insert("plan_quality".into(), 1.0 / plan_penalty);

        let hit = self.hit_ratio(shared_buffers);
        metrics.insert("buffer_hit_ratio".into(), hit);

        // Effective IOPS: async I/O depth helps only up to what the device
        // can actually overlap (SSDs overlap a lot, HDDs barely).
        let device_depth = (node.disk_iops / 1000.0).clamp(1.0, 64.0);
        let io_depth = eio.min(device_depth).max(1.0);
        // Rated IOPS assume the device's full queue depth; delivered IOPS
        // grow with the square root of the granted depth.
        let eff_iops = (node.disk_iops * (io_depth / device_depth).sqrt()).max(1.0);
        metrics.insert("effective_iops".into(), eff_iops);

        // ---- per-kind costs ----------------------------------------------
        let mut cpu_secs = 0.0;
        let mut rand_ops = 0.0f64;
        let mut seq_mb = 0.0f64;
        let mut write_mb = 0.0f64;
        let mut sort_spills = 0u64;
        let mut hash_spills = 0u64;
        let mut temp_mb = 0.0f64;

        // Point selects: ~3 page touches each.
        let n_point = w.count(QueryKind::PointSelect) as f64;
        {
            let misses = 3.0 * (1.0 - hit);
            rand_ops += n_point * misses;
            cpu_secs += n_point * 20e-6;
        }

        // Updates: point read + dirty page + WAL append/flush.
        let n_upd = w.count(QueryKind::Update) as f64;
        let wal_mb_total;
        {
            let misses = 2.0 * (1.0 - hit);
            rand_ops += n_upd * misses;
            cpu_secs += n_upd * 35e-6;
            // WAL: each update writes ~1 KB; full-page writes inflate WAL
            // right after each checkpoint (more checkpoints → more FPWs).
            let fpw_factor = 1.0 + 1.5 * (300.0 / checkpoint_timeout).min(4.0) * 0.2;
            wal_mb_total = n_upd * 1.0 / 1024.0 * fpw_factor;
            write_mb += wal_mb_total;
            // Group commit: flushes = updates / batch where batch grows
            // with WAL buffer (bounded by concurrency).
            let batch = (wal_buffers * 4.0).min(w.concurrency as f64).max(1.0);
            let flushes = n_upd / batch;
            rand_ops += flushes;
            metrics.insert("wal_flushes".into(), flushes);
        }
        metrics.insert("wal_mb".into(), wal_mb_total);

        // Scans: sequential read of the table; parallel workers help via
        // Amdahl with per-worker coordination overhead.
        let n_scan = w.count(QueryKind::Scan) as f64;
        let analytic_mb = w.analytic_mb.max(1.0);
        let scan_secs_serial;
        {
            // Large inputs mostly bypass the buffer pool; caching only
            // helps when the pool rivals the data size.
            let cached_frac = (shared_buffers / analytic_mb).min(0.9) * 0.9;
            let io_mb = analytic_mb * (1.0 - cached_frac);
            let workers = parallel_workers.min((node.cores - 1) as f64).max(0.0) + 1.0;
            let serial_frac = 0.05;
            let amdahl = serial_frac + (1.0 - serial_frac) / workers;
            let coord = 1.0 + 0.01 * (workers - 1.0);
            let io_secs = io_mb / node.disk_mbps;
            let cpu = analytic_mb * 0.002 / node.core_speed; // 2 ms per MB
            scan_secs_serial = (io_secs.max(cpu)) * plan_penalty;
            let per_scan = scan_secs_serial * amdahl * coord;
            seq_mb += n_scan * io_mb;
            cpu_secs += n_scan * cpu * amdahl * coord;
            metrics.insert(
                "parallel_efficiency".into(),
                1.0 / (workers * amdahl * coord),
            );
            metrics.insert("scan_secs_each".into(), per_scan);
        }

        // Joins: hash join; build side spills when it exceeds work_mem.
        let n_join = w.count(QueryKind::Join) as f64;
        {
            let build_mb = analytic_mb * 0.25;
            let probe_mb = analytic_mb * 0.5;
            let read_mb = (build_mb + probe_mb) * (1.0 - (shared_buffers / analytic_mb).min(0.8));
            let mut io_mb = read_mb;
            if build_mb > work_mem {
                // Grace hash join: extra write+read of both sides per pass.
                let passes = ((build_mb / work_mem).ln() / 8.0f64.ln()).ceil().max(1.0);
                io_mb += 2.0 * (build_mb + probe_mb) * passes * 0.5;
                hash_spills += (n_join * passes) as u64;
                temp_mb += n_join * build_mb * passes * 0.5;
            }
            let cpu = (build_mb + probe_mb) * 0.004 / node.core_speed;
            let workers = (parallel_workers * 0.5)
                .min((node.cores - 1) as f64)
                .max(0.0)
                + 1.0;
            seq_mb += n_join * io_mb;
            cpu_secs += n_join * cpu / workers * plan_penalty * stats_penalty;
        }

        // Sort/aggregate: external merge sort when input exceeds work_mem.
        let n_sort = w.count(QueryKind::SortAgg) as f64;
        {
            let sort_mb = analytic_mb * 0.4;
            let mut io_mb = sort_mb * (1.0 - (shared_buffers / analytic_mb).min(0.8));
            if sort_mb > work_mem {
                let runs = (sort_mb / work_mem).max(2.0);
                let merge_width = work_mem.clamp(2.0, 256.0);
                let passes = (runs.ln() / merge_width.ln()).ceil().max(1.0);
                io_mb += 2.0 * sort_mb * passes;
                sort_spills += (n_sort * runs) as u64;
                temp_mb += n_sort * sort_mb;
            }
            let cpu = sort_mb * 0.005 / node.core_speed;
            seq_mb += n_sort * io_mb;
            cpu_secs += n_sort * cpu;
        }

        metrics.insert("sort_spills".into(), sort_spills as f64);
        metrics.insert("hash_spills".into(), hash_spills as f64);
        metrics.insert("temp_files_mb".into(), temp_mb);

        // ---- background activity ------------------------------------------
        // Checkpoints: dirty-page flush tax; short timeouts re-write hot
        // pages over and over, long timeouts accumulate a burst that stalls
        // foreground I/O. The background writer smooths the burst at a
        // small CPU cost.
        let dirty_rate_mb = n_upd * (PAGE_KB / 1024.0) / 600.0; // per sec over nominal 10-min run
        let rewrite_tax = 1.0 + (300.0 / checkpoint_timeout).min(8.0) * 0.15;
        let ckpt_write_mb = dirty_rate_mb * 600.0 * rewrite_tax;
        let burst_mb = (dirty_rate_mb * checkpoint_timeout).min(shared_buffers * 0.5);
        let bg_smoothing = bgwriter_delay / (bgwriter_delay + 100.0); // small delay → strong smoothing
        let burst_stall_secs = burst_mb * bg_smoothing / node.disk_mbps * 0.5;
        let bgwriter_cpu = 0.5 * (200.0 / bgwriter_delay);
        write_mb += ckpt_write_mb;
        cpu_secs += bgwriter_cpu;
        metrics.insert("checkpoint_write_mb".into(), ckpt_write_mb);
        metrics.insert("checkpoint_burst_secs".into(), burst_stall_secs);

        // Locking: false-positive deadlock checks vs. real deadlock stalls
        // produce a U-shaped response in deadlock_timeout.
        let contention_load = w.contention * w.write_fraction() * w.concurrency as f64;
        let expected_wait_ms = 50.0 * (1.0 + contention_load * 0.2);
        let check_rate = n_upd * w.contention; // waits that trigger the timer
        let false_checks = check_rate * (-deadlock_timeout / expected_wait_ms.max(1.0)).exp();
        let check_cost_secs = false_checks * 2e-4;
        let real_deadlocks = contention_load * 0.01 * n_upd * 1e-4;
        let stall_secs = real_deadlocks * (deadlock_timeout / 1000.0);
        let lock_wait_secs = check_cost_secs + stall_secs + contention_load * 0.02;
        metrics.insert("deadlocks".into(), real_deadlocks);
        metrics.insert("lock_wait_secs".into(), lock_wait_secs);

        // Maintenance (vacuum/analyze): cheaper with more memory, but
        // higher stats targets make analyze proportionally pricier.
        let vacuum_secs = (w.table_mb / node.disk_mbps)
            * 0.1
            * (1.0 + (256.0 / maintenance_mem.max(16.0)).min(4.0) * 0.25)
            + stats_target / 1000.0;
        cpu_secs += vacuum_secs * 0.3;
        seq_mb += w.table_mb * 0.05;
        metrics.insert("vacuum_secs".into(), vacuum_secs);

        // ---- assemble total time ------------------------------------------
        let rand_secs = rand_ops / eff_iops;
        let seq_secs = seq_mb / node.disk_mbps;
        let write_secs = write_mb / node.disk_mbps;
        let cpu_wall = cpu_secs / (node.cores as f64 * node.core_speed).max(1.0)
            * (1.0 + (w.concurrency as f64 / (node.cores as f64 * 4.0)).max(0.0) * 0.1);

        let base = cpu_wall
            + rand_secs
            + seq_secs
            + write_secs
            + burst_stall_secs
            + lock_wait_secs
            + vacuum_secs * 0.2;
        let runtime = base * swap_penalty * if failed { FAILURE_PENALTY } else { 1.0 };

        metrics.insert("cpu_secs".into(), cpu_secs);
        metrics.insert("io_rand_secs".into(), rand_secs);
        metrics.insert("io_seq_secs".into(), seq_secs + write_secs);
        metrics.insert("disk_read_mb".into(), seq_mb);
        metrics.insert("disk_write_mb".into(), write_mb);
        metrics.insert(
            "throughput_qps".into(),
            w.total_queries() as f64 / runtime.max(1e-9),
        );
        metrics.insert(
            "avg_latency_ms".into(),
            runtime * 1000.0 * w.concurrency as f64 / w.total_queries().max(1) as f64,
        );
        metrics.insert(
            "p99_latency_ms".into(),
            runtime * 1000.0 * w.concurrency as f64 / w.total_queries().max(1) as f64
                * (3.0 + burst_stall_secs / runtime.max(1e-9) * 20.0),
        );

        // ---- trace ---------------------------------------------------------
        trace.push(PhaseTrace {
            name: "oltp".into(),
            cpu_core_secs: cpu_secs * 0.4,
            seq_io_mb: 0.0,
            rand_io_ops: rand_ops,
            net_mb: 0.0,
            parallelism: w.concurrency.max(1),
        });
        trace.push(PhaseTrace {
            name: "analytic".into(),
            cpu_core_secs: cpu_secs * 0.6,
            seq_io_mb: seq_mb,
            rand_io_ops: 0.0,
            net_mb: 0.0,
            parallelism: (parallel_workers as usize + 1).max(1),
        });
        trace.push(PhaseTrace {
            name: "background".into(),
            cpu_core_secs: bgwriter_cpu,
            seq_io_mb: write_mb,
            rand_io_ops: 0.0,
            net_mb: 0.0,
            parallelism: 1,
        });

        let _ = scan_secs_serial;
        DbmsRun {
            runtime_secs: runtime,
            failed,
            metrics,
            trace,
        }
    }

    /// Simulates and returns the resource trace (used by the
    /// simulation-based tuners as "recorded monitoring data").
    pub fn record_trace(&self, config: &Configuration) -> ResourceTrace {
        self.simulate(config).trace
    }
}

impl Objective for DbmsSimulator {
    fn space(&self) -> &ConfigSpace {
        &self.space
    }

    fn profile(&self) -> SystemProfile {
        SystemProfile {
            system: SystemKind::Dbms,
            workload: match self.workload.write_fraction() {
                f if f > 0.15 => WorkloadClass::Oltp,
                f if f > 0.01 => WorkloadClass::Mixed,
                _ => WorkloadClass::Olap,
            },
            memory_per_node_mb: self.node.memory_mb,
            cores_per_node: self.node.cores,
            nodes: 1,
            disk_mbps: self.node.disk_mbps,
            network_mbps: self.node.network_mbps,
            input_mb: self.workload.table_mb,
        }
    }

    fn evaluate(&mut self, config: &Configuration, rng: &mut StdRng) -> Observation {
        let run = self.simulate(config);
        let runtime = self.noise.apply(run.runtime_secs, rng);
        Observation {
            config: config.clone(),
            runtime_secs: runtime,
            cost: runtime,
            metrics: run.metrics,
            failed: run.failed,
        }
    }

    fn name(&self) -> &str {
        "dbms-simulator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autotune_core::ParamValue;
    use rand::SeedableRng;

    fn sim() -> DbmsSimulator {
        DbmsSimulator::oltp_default().with_noise(NoiseModel::none())
    }

    fn with(cfg: &Configuration, name: &str, v: i64) -> Configuration {
        let mut c = cfg.clone();
        c.set(name, ParamValue::Int(v));
        c
    }

    #[test]
    fn bigger_buffer_pool_helps_oltp() {
        let s = sim();
        let d = s.space.default_config();
        let small = s.simulate(&d).runtime_secs;
        let big = s.simulate(&with(&d, SHARED_BUFFERS_MB, 4096)).runtime_secs;
        assert!(big < small * 0.8, "small={small} big={big}");
    }

    #[test]
    fn diminishing_returns_on_buffer_pool() {
        let s = sim();
        let d = s.space.default_config();
        let t1 = s.simulate(&with(&d, SHARED_BUFFERS_MB, 256)).runtime_secs;
        let t2 = s.simulate(&with(&d, SHARED_BUFFERS_MB, 1024)).runtime_secs;
        let t3 = s.simulate(&with(&d, SHARED_BUFFERS_MB, 4096)).runtime_secs;
        let gain1 = t1 - t2;
        let gain2 = t2 - t3;
        assert!(gain1 > gain2, "gains: {gain1} then {gain2}");
    }

    #[test]
    fn overcommit_is_a_cliff_and_extreme_fails() {
        let s = sim();
        let d = s.space.default_config();
        // 16 GB node, work_mem 400 MB * 32 active sorts ≈ 12.8 GB. With a
        // 2 GB buffer pool everything fits; with 8 GB it overcommits and
        // swaps. The buffer-pool hit ratio is saturated in both cases, so
        // the comparison isolates the swap penalty.
        let mut fits = with(&d, SHARED_BUFFERS_MB, 2048);
        fits.set(WORK_MEM_MB, ParamValue::Int(400));
        let mut swaps = with(&d, SHARED_BUFFERS_MB, 8192);
        swaps.set(WORK_MEM_MB, ParamValue::Int(400));
        let r_fits = s.simulate(&fits);
        let r_swap = s.simulate(&swaps);
        assert!(!r_fits.failed && !r_swap.failed);
        assert!(r_swap.metrics["mem_overcommit"] > 1.0);
        assert!(
            r_swap.runtime_secs > r_fits.runtime_secs * 1.05,
            "swap penalty should apply: fits={} swaps={}",
            r_fits.runtime_secs,
            r_swap.runtime_secs
        );

        let mut oom = with(&d, SHARED_BUFFERS_MB, 32768);
        oom.set(WORK_MEM_MB, ParamValue::Int(1024));
        let r_oom = s.simulate(&oom);
        assert!(r_oom.failed, "severe overcommit should fail");
        assert!(r_oom.runtime_secs > r_swap.runtime_secs * 2.0);
    }

    #[test]
    fn work_mem_fixes_spills_for_olap() {
        let s = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let d = s.space.default_config();
        let spilly = s.simulate(&d);
        assert!(spilly.metrics["sort_spills"] > 0.0);
        let roomy = s.simulate(&with(&d, WORK_MEM_MB, 4096));
        assert!(roomy.metrics["sort_spills"] < spilly.metrics["sort_spills"]);
        assert!(roomy.runtime_secs < spilly.runtime_secs);
    }

    #[test]
    fn parallel_workers_help_olap_scans() {
        let s = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let d = s.space.default_config();
        let serial = s.simulate(&with(&d, MAX_PARALLEL_WORKERS, 0)).runtime_secs;
        let par = s.simulate(&with(&d, MAX_PARALLEL_WORKERS, 7)).runtime_secs;
        assert!(par < serial, "serial={serial} par={par}");
    }

    #[test]
    fn deadlock_timeout_is_u_shaped() {
        let s = sim();
        let d = s.space.default_config();
        let lo = s.simulate(&with(&d, DEADLOCK_TIMEOUT_MS, 100)).runtime_secs;
        let mid = s
            .simulate(&with(&d, DEADLOCK_TIMEOUT_MS, 2000))
            .runtime_secs;
        let hi = s
            .simulate(&with(&d, DEADLOCK_TIMEOUT_MS, 10000))
            .runtime_secs;
        assert!(mid <= lo, "lo={lo} mid={mid}");
        assert!(mid <= hi, "mid={mid} hi={hi}");
    }

    #[test]
    fn planner_mis_costing_hurts() {
        let s = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let d = s.space.default_config();
        let rpc_true = s.true_random_page_cost();
        let mut good = d.clone();
        good.set(RANDOM_PAGE_COST, ParamValue::Float(rpc_true));
        let mut bad = d.clone();
        bad.set(
            RANDOM_PAGE_COST,
            ParamValue::Float(if rpc_true < 5.0 { 10.0 } else { 1.0 }),
        );
        assert!(s.simulate(&good).runtime_secs < s.simulate(&bad).runtime_secs);
    }

    #[test]
    fn metrics_are_rich() {
        let s = sim();
        let run = s.simulate(&s.space.default_config());
        assert!(
            run.metrics.len() >= 18,
            "only {} metrics",
            run.metrics.len()
        );
        assert!(run.metrics["buffer_hit_ratio"] > 0.0);
        assert!(run.metrics["buffer_hit_ratio"] <= 1.0);
    }

    #[test]
    fn trace_replay_close_to_runtime_shape() {
        let s = DbmsSimulator::olap_default().with_noise(NoiseModel::none());
        let d = s.space.default_config();
        let trace = s.record_trace(&d);
        assert_eq!(trace.phases.len(), 3);
        assert!(trace.total_seq_io() > 0.0);
    }

    #[test]
    fn evaluate_is_noisy_but_near_simulate() {
        let mut s = DbmsSimulator::oltp_default(); // realistic noise
        let d = s.space.default_config();
        let det = s.simulate(&d).runtime_secs;
        let mut rng = StdRng::seed_from_u64(1);
        let obs = s.evaluate(&d, &mut rng);
        assert!((obs.runtime_secs / det - 1.0).abs() < 0.6);
    }

    #[test]
    fn wal_buffers_batch_commit_flushes() {
        let s = sim();
        let d = s.space.default_config();
        let tiny = s.simulate(&with(&d, WAL_BUFFERS_MB, 1));
        let roomy = s.simulate(&with(&d, WAL_BUFFERS_MB, 64));
        assert!(roomy.metrics["wal_flushes"] < tiny.metrics["wal_flushes"]);
        assert!(roomy.runtime_secs <= tiny.runtime_secs);
    }

    #[test]
    fn checkpoint_timeout_tradeoff() {
        // Short timeouts re-write hot pages; long ones build bursts. Both
        // directions should be measurable in the metrics.
        let s = sim();
        let d = s.space.default_config();
        let short = s.simulate(&with(&d, CHECKPOINT_TIMEOUT_S, 30));
        let long = s.simulate(&with(&d, CHECKPOINT_TIMEOUT_S, 3600));
        assert!(
            short.metrics["checkpoint_write_mb"] > long.metrics["checkpoint_write_mb"],
            "short timeouts re-write more"
        );
        assert!(
            long.metrics["checkpoint_burst_secs"] >= short.metrics["checkpoint_burst_secs"],
            "long timeouts burst more"
        );
    }

    #[test]
    fn io_concurrency_helps_only_on_ssd() {
        let hdd = sim();
        let d = hdd.space.default_config();
        let hdd_gain = hdd
            .simulate(&with(&d, EFFECTIVE_IO_CONCURRENCY, 1))
            .runtime_secs
            - hdd
                .simulate(&with(&d, EFFECTIVE_IO_CONCURRENCY, 128))
                .runtime_secs;
        let ssd = DbmsSimulator::new(NodeSpec::large(), DbmsWorkload::oltp())
            .with_noise(NoiseModel::none());
        let d2 = ssd.space.default_config();
        let ssd_gain = ssd
            .simulate(&with(&d2, EFFECTIVE_IO_CONCURRENCY, 1))
            .runtime_secs
            - ssd
                .simulate(&with(&d2, EFFECTIVE_IO_CONCURRENCY, 128))
                .runtime_secs;
        assert!(
            hdd_gain.abs() < 1e-6,
            "HDD should be insensitive: {hdd_gain}"
        );
        assert!(ssd_gain > 0.0, "SSD should benefit: {ssd_gain}");
    }

    #[test]
    fn throughput_and_latency_metrics_consistent() {
        let s = sim();
        let run = s.simulate(&s.space.default_config());
        let qps = run.metrics["throughput_qps"];
        assert!((qps * run.runtime_secs - s.workload.total_queries() as f64).abs() < 1.0);
        assert!(run.metrics["p99_latency_ms"] > run.metrics["avg_latency_ms"]);
    }

    #[test]
    fn true_rpc_depends_on_disk() {
        let hdd = DbmsSimulator::new(NodeSpec::default(), DbmsWorkload::olap());
        let ssd = DbmsSimulator::new(NodeSpec::large(), DbmsWorkload::olap());
        assert!(hdd.true_random_page_cost() > ssd.true_random_page_cost());
    }
}
