//! The simulated DBMS target: knob space ([`params`]), workloads
//! ([`workload`]), and the analytical engine ([`engine`]).
//!
//! Reproduces the substrate the Table 2 tuners ran against (PostgreSQL /
//! DB2 / Oracle instances in the original papers).

pub mod engine;
pub mod params;
pub mod workload;

pub use engine::{DbmsRun, DbmsSimulator};
pub use params::{dbms_space, knobs};
pub use workload::{DbmsWorkload, QueryKind};
