//! The DBMS knob space: twelve PostgreSQL-flavoured configuration
//! parameters covering memory distribution, I/O, parallelism, background
//! writing, locking, and planner statistics — the knob classes Table 2's
//! DBMS tuners target (STMM: memory; ADDM: CPU/I-O/locks; SARD/iTuned/
//! OtterTune: several).

use autotune_core::{ConfigSpace, ParamSpec};

/// Knob name constants, so simulators and tuners never typo a name.
pub mod knobs {
    /// Buffer pool size (MB) — the single most impactful memory knob.
    pub const SHARED_BUFFERS_MB: &str = "shared_buffers_mb";
    /// Per-sort/hash working memory (MB).
    pub const WORK_MEM_MB: &str = "work_mem_mb";
    /// Memory for maintenance operations (MB).
    pub const MAINTENANCE_WORK_MEM_MB: &str = "maintenance_work_mem_mb";
    /// WAL buffer size (MB), controls group-commit batching.
    pub const WAL_BUFFERS_MB: &str = "wal_buffers_mb";
    /// Seconds between checkpoints.
    pub const CHECKPOINT_TIMEOUT_S: &str = "checkpoint_timeout_s";
    /// Maximum parallel workers per query.
    pub const MAX_PARALLEL_WORKERS: &str = "max_parallel_workers";
    /// Concurrent async I/O requests for bitmap scans.
    pub const EFFECTIVE_IO_CONCURRENCY: &str = "effective_io_concurrency";
    /// Planner's relative cost of a random page read.
    pub const RANDOM_PAGE_COST: &str = "random_page_cost";
    /// Background writer wakeup delay (ms).
    pub const BGWRITER_DELAY_MS: &str = "bgwriter_delay_ms";
    /// Time to wait before checking for deadlock (ms).
    pub const DEADLOCK_TIMEOUT_MS: &str = "deadlock_timeout_ms";
    /// Per-session temp-table buffer (MB).
    pub const TEMP_BUFFERS_MB: &str = "temp_buffers_mb";
    /// Planner statistics detail (histogram buckets per column).
    pub const STATS_TARGET: &str = "default_statistics_target";
}

/// Builds the 12-knob DBMS configuration space with PostgreSQL-like
/// (deliberately conservative) defaults.
pub fn dbms_space() -> ConfigSpace {
    use knobs::*;
    ConfigSpace::new(vec![
        ParamSpec::int_log(
            SHARED_BUFFERS_MB,
            64,
            65536,
            128,
            "buffer pool size; vendor default is famously tiny",
        )
        .with_unit("MB"),
        ParamSpec::int_log(
            WORK_MEM_MB,
            1,
            4096,
            4,
            "memory per sort/hash operation before spilling to disk",
        )
        .with_unit("MB"),
        ParamSpec::int_log(
            MAINTENANCE_WORK_MEM_MB,
            16,
            8192,
            64,
            "memory for vacuum/analyze/index build",
        )
        .with_unit("MB"),
        ParamSpec::int_log(
            WAL_BUFFERS_MB,
            1,
            1024,
            16,
            "write-ahead-log buffer; batches commit flushes",
        )
        .with_unit("MB"),
        ParamSpec::int(
            CHECKPOINT_TIMEOUT_S,
            30,
            3600,
            300,
            "seconds between checkpoints; short = steady write tax, long = recovery burst",
        )
        .with_unit("s"),
        ParamSpec::int(
            MAX_PARALLEL_WORKERS,
            0,
            32,
            2,
            "parallel workers available to one query",
        ),
        ParamSpec::int_log(
            EFFECTIVE_IO_CONCURRENCY,
            1,
            256,
            1,
            "async random-I/O depth; only helps on SSD-class storage",
        ),
        ParamSpec::float(
            RANDOM_PAGE_COST,
            1.0,
            10.0,
            4.0,
            "planner cost of random page fetch relative to sequential",
        ),
        ParamSpec::int(
            BGWRITER_DELAY_MS,
            10,
            1000,
            200,
            "background writer wakeup interval",
        )
        .with_unit("ms"),
        ParamSpec::int(
            DEADLOCK_TIMEOUT_MS,
            100,
            10000,
            1000,
            "wait before running deadlock detection",
        )
        .with_unit("ms"),
        ParamSpec::int_log(
            TEMP_BUFFERS_MB,
            1,
            1024,
            8,
            "per-session temporary table buffer",
        )
        .with_unit("MB"),
        ParamSpec::int(
            STATS_TARGET,
            10,
            1000,
            100,
            "statistics detail used by the query planner",
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_twelve_knobs() {
        let s = dbms_space();
        assert_eq!(s.dim(), 12);
        assert!(s.validate_config(&s.default_config()).is_ok());
    }

    #[test]
    fn defaults_are_conservative() {
        let s = dbms_space();
        let d = s.default_config();
        assert_eq!(d.i64(knobs::SHARED_BUFFERS_MB), 128);
        assert_eq!(d.i64(knobs::WORK_MEM_MB), 4);
        assert_eq!(d.i64(knobs::MAX_PARALLEL_WORKERS), 2);
    }

    #[test]
    fn memory_knobs_are_log_scaled() {
        let s = dbms_space();
        // Log scaling: the midpoint of shared_buffers should be near the
        // geometric mean sqrt(64 * 65536) = 2048, far below the arithmetic
        // midpoint ~32800.
        let spec = s.spec(knobs::SHARED_BUFFERS_MB).unwrap();
        let mid = spec.domain.decode(0.5);
        let v = mid.as_i64().unwrap();
        assert!((1500..3000).contains(&v), "midpoint {v}");
    }
}
